//! Seeded, std-only parser fuzzing: 1 000 mutated query strings go
//! through [`infpdb_logic::parse`] and every one must return — `Ok` or a
//! structured `Err` — without panicking. Runs under the CI `chaos` job
//! with three fixed seeds via `INFPDB_CHAOS_SEED`; the default seed keeps
//! local runs deterministic too.

use infpdb_core::schema::{Relation, Schema};
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_logic::parse;

const CASES: usize = 1_000;

/// Well-formed seeds for the mutator: realistic shapes exercise deep
/// parser paths that pure noise never reaches.
const CORPUS: &[&str] = &[
    "R(1)",
    "!R(1)",
    "R(1) /\\ S(1, 2)",
    "R(1) \\/ R(2)",
    "exists x. R(x)",
    "forall x. exists y. S(x, y)",
    "!(exists x. R(x) /\\ !S(x, x))",
    "R(1) /\\ (R(2) \\/ !R(3))",
    "forall x. R(x) \\/ exists y. S(y, x)",
    "exists x. exists y. R(x) /\\ R(y)",
];

/// Characters the mutator splices in: every token class the grammar
/// knows, plus junk it must reject gracefully (unicode connectives,
/// stray backslashes, control characters).
const ALPHABET: &[char] = &[
    '(', ')', '!', '/', '\\', '.', ',', ' ', 'x', 'y', 'z', 'R', 'S', 'e', 'f', 'o', 'r', 'a', 'l',
    's', 't', 'i', '0', '1', '2', '9', '-', '_', '∀', '∃', '∧', '∨', '¬', '\t', '\n', '\0',
];

fn seed() -> u64 {
    std::env::var("INFPDB_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF00D_5EED)
}

fn mutate(base: &str, rng: &mut SplitMix64) -> String {
    let mut chars: Vec<char> = base.chars().collect();
    let edits = 1 + (rng.next_u64() % 8) as usize;
    for _ in 0..edits {
        let pick = |rng: &mut SplitMix64| ALPHABET[(rng.next_u64() as usize) % ALPHABET.len()];
        match rng.next_u64() % 4 {
            0 if !chars.is_empty() => {
                // replace one character
                let i = (rng.next_u64() as usize) % chars.len();
                chars[i] = pick(rng);
            }
            1 => {
                // insert one character
                let i = (rng.next_u64() as usize) % (chars.len() + 1);
                let c = pick(rng);
                chars.insert(i, c);
            }
            2 if !chars.is_empty() => {
                // delete one character
                let i = (rng.next_u64() as usize) % chars.len();
                chars.remove(i);
            }
            _ if !chars.is_empty() => {
                // truncate at a random point
                let i = (rng.next_u64() as usize) % chars.len();
                chars.truncate(i);
            }
            _ => {}
        }
    }
    chars.into_iter().collect()
}

#[test]
fn mutated_queries_never_panic_the_parser() {
    let schema = Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap();
    let mut rng = SplitMix64::new(seed());
    let mut parsed_ok = 0usize;
    for case in 0..CASES {
        let base = CORPUS[(rng.next_u64() as usize) % CORPUS.len()];
        let input = mutate(base, &mut rng);
        // the contract under test: parse() must RETURN on arbitrary
        // input — a panic here fails the test with the offending string
        let result = std::panic::catch_unwind(|| parse(&input, &schema));
        match result {
            Ok(Ok(_)) => parsed_ok += 1,
            Ok(Err(_)) => {}
            Err(_) => panic!(
                "parser panicked on case {case}: {input:?} (seed {})",
                seed()
            ),
        }
    }
    // sanity: light mutation leaves some inputs well-formed, so the run
    // exercised the success path too, not just early rejections
    assert!(parsed_ok > 0, "every mutated input failed to parse");
}

#[test]
fn corpus_itself_parses_clean() {
    let schema = Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap();
    for q in CORPUS {
        parse(q, &schema).unwrap_or_else(|e| panic!("corpus entry {q:?} must parse: {e}"));
    }
}

//! Database instances: finite sets of facts.
//!
//! In the paper (Section 2.1), `D[τ, U]` is the set of all *finite* subsets
//! of `F[τ, U]`; every instance of a PDB is finite even when the probability
//! space is infinite. An [`Instance`] is a sorted, deduplicated vector of
//! [`FactId`]s — canonical form, so equality, hashing, subset tests and
//! merges are all linear scans over `u32`s.

use crate::fact::FactId;
use crate::interner::FactInterner;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A finite database instance, identified with its set of facts.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Instance {
    /// Sorted, deduplicated.
    facts: Vec<FactId>,
}

impl Instance {
    /// The empty instance.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds an instance from fact ids (sorted and deduplicated here).
    pub fn from_ids(ids: impl IntoIterator<Item = FactId>) -> Self {
        let mut facts: Vec<FactId> = ids.into_iter().collect();
        facts.sort_unstable();
        facts.dedup();
        Self { facts }
    }

    /// The number of facts `‖D‖` (Section 2.1).
    pub fn size(&self) -> usize {
        self.facts.len()
    }

    /// Whether the instance contains no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, id: FactId) -> bool {
        self.facts.binary_search(&id).is_ok()
    }

    /// The facts in sorted id order.
    pub fn ids(&self) -> &[FactId] {
        &self.facts
    }

    /// Iterator over fact ids.
    pub fn iter(&self) -> impl Iterator<Item = FactId> + '_ {
        self.facts.iter().copied()
    }

    /// Subset test `self ⊆ other` (merge scan).
    pub fn is_subset_of(&self, other: &Instance) -> bool {
        let mut it = other.facts.iter();
        'outer: for f in &self.facts {
            for g in it.by_ref() {
                match g.cmp(f) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether the two instances share no facts.
    pub fn is_disjoint_from(&self, other: &Instance) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.facts.len() && j < other.facts.len() {
            match self.facts[i].cmp(&other.facts[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Set union (merge).
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = Vec::with_capacity(self.facts.len() + other.facts.len());
        let (mut i, mut j) = (0, 0);
        while i < self.facts.len() && j < other.facts.len() {
            match self.facts[i].cmp(&other.facts[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.facts[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.facts[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.facts[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.facts[i..]);
        out.extend_from_slice(&other.facts[j..]);
        Instance { facts: out }
    }

    /// Set intersection (merge).
    pub fn intersection(&self, other: &Instance) -> Instance {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.facts.len() && j < other.facts.len() {
            match self.facts[i].cmp(&other.facts[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.facts[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Instance { facts: out }
    }

    /// Set difference `self − other` (merge).
    pub fn difference(&self, other: &Instance) -> Instance {
        let mut out = Vec::new();
        let mut j = 0;
        for &f in &self.facts {
            while j < other.facts.len() && other.facts[j] < f {
                j += 1;
            }
            if j >= other.facts.len() || other.facts[j] != f {
                out.push(f);
            }
        }
        Instance { facts: out }
    }

    /// Inserts one fact, keeping canonical order. Returns whether it was
    /// new.
    pub fn insert(&mut self, id: FactId) -> bool {
        match self.facts.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.facts.insert(pos, id);
                true
            }
        }
    }

    /// Removes one fact. Returns whether it was present.
    pub fn remove(&mut self, id: FactId) -> bool {
        match self.facts.binary_search(&id) {
            Ok(pos) => {
                self.facts.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The active domain `adom(D)`: every universe element occurring in some
    /// fact (Section 2.1). Sorted and deduplicated.
    pub fn active_domain(&self, interner: &FactInterner) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for &id in &self.facts {
            for v in interner.resolve(id).args() {
                dom.insert(v.clone());
            }
        }
        dom
    }

    /// Renders the instance as `{R(1), S(2, 3)}` given schema and interner.
    pub fn display<'a>(
        &'a self,
        schema: &'a crate::schema::Schema,
        interner: &'a FactInterner,
    ) -> InstanceDisplay<'a> {
        InstanceDisplay {
            instance: self,
            schema,
            interner,
        }
    }
}

impl FromIterator<FactId> for Instance {
    fn from_iter<I: IntoIterator<Item = FactId>>(iter: I) -> Self {
        Instance::from_ids(iter)
    }
}

/// `Display` helper for instances.
pub struct InstanceDisplay<'a> {
    instance: &'a Instance,
    schema: &'a crate::schema::Schema,
    interner: &'a FactInterner,
}

impl fmt::Display for InstanceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.instance.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.interner.resolve(id).display(self.schema))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::schema::{RelId, Relation, Schema};

    fn ids(v: &[u32]) -> Instance {
        Instance::from_ids(v.iter().map(|&i| FactId(i)))
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let d = ids(&[3, 1, 2, 1, 3]);
        assert_eq!(d.ids(), &[FactId(1), FactId(2), FactId(3)]);
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn empty_instance() {
        let e = Instance::empty();
        assert!(e.is_empty());
        assert_eq!(e.size(), 0);
        assert!(!e.contains(FactId(0)));
    }

    #[test]
    fn contains_binary_search() {
        let d = ids(&[1, 5, 9]);
        assert!(d.contains(FactId(5)));
        assert!(!d.contains(FactId(4)));
    }

    #[test]
    fn subset_tests() {
        assert!(ids(&[1, 3]).is_subset_of(&ids(&[1, 2, 3])));
        assert!(Instance::empty().is_subset_of(&ids(&[1])));
        assert!(!ids(&[1, 4]).is_subset_of(&ids(&[1, 2, 3])));
        assert!(!ids(&[0]).is_subset_of(&Instance::empty()));
        assert!(ids(&[2]).is_subset_of(&ids(&[2])));
    }

    #[test]
    fn disjointness() {
        assert!(ids(&[1, 3]).is_disjoint_from(&ids(&[2, 4])));
        assert!(!ids(&[1, 3]).is_disjoint_from(&ids(&[3])));
        assert!(Instance::empty().is_disjoint_from(&ids(&[1])));
    }

    #[test]
    fn union_intersection_difference() {
        let a = ids(&[1, 2, 5]);
        let b = ids(&[2, 3]);
        assert_eq!(a.union(&b), ids(&[1, 2, 3, 5]));
        assert_eq!(a.intersection(&b), ids(&[2]));
        assert_eq!(a.difference(&b), ids(&[1, 5]));
        assert_eq!(b.difference(&a), ids(&[3]));
        assert_eq!(a.union(&Instance::empty()), a);
        assert_eq!(a.intersection(&Instance::empty()), Instance::empty());
    }

    #[test]
    fn insert_remove_keep_canonical_order() {
        let mut d = ids(&[2, 8]);
        assert!(d.insert(FactId(5)));
        assert!(!d.insert(FactId(5)));
        assert_eq!(d.ids(), &[FactId(2), FactId(5), FactId(8)]);
        assert!(d.remove(FactId(2)));
        assert!(!d.remove(FactId(2)));
        assert_eq!(d.ids(), &[FactId(5), FactId(8)]);
    }

    #[test]
    fn active_domain_collects_all_arguments() {
        let mut it = FactInterner::new();
        let a = it.intern(Fact::new(RelId(0), [Value::int(1), Value::int(2)]));
        let b = it.intern(Fact::new(RelId(1), [Value::int(2), Value::str("x")]));
        let d = Instance::from_ids([a, b]);
        let dom = d.active_domain(&it);
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::int(1)));
        assert!(dom.contains(&Value::int(2)));
        assert!(dom.contains(&Value::str("x")));
    }

    #[test]
    fn display_renders_facts() {
        let schema =
            Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap();
        let mut it = FactInterner::new();
        let a = it.intern(Fact::new(RelId(0), [Value::int(1)]));
        let b = it.intern(Fact::new(RelId(1), [Value::int(2), Value::int(3)]));
        let d = Instance::from_ids([b, a]);
        assert_eq!(d.display(&schema, &it).to_string(), "{R(1), S(2, 3)}");
        assert_eq!(Instance::empty().display(&schema, &it).to_string(), "{}");
    }

    #[test]
    fn from_iterator_collect() {
        let d: Instance = [FactId(2), FactId(0)].into_iter().collect();
        assert_eq!(d.ids(), &[FactId(0), FactId(2)]);
    }

    #[test]
    fn instances_order_for_canonical_use_in_maps() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(ids(&[1]));
        s.insert(ids(&[1])); // dup
        s.insert(ids(&[0, 1]));
        assert_eq!(s.len(), 2);
    }
}

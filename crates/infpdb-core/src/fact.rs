//! Facts `R(a₁, …, a_k)`.
//!
//! Following the paper's convention (Section 2.1), database instances are
//! identified with finite sets of facts; `F[τ, U]` is the set of all facts
//! of schema `τ` over universe `U`.

use crate::error::CoreError;
use crate::schema::{RelId, Schema};
use crate::universe::Universe;
use crate::value::Value;
use std::fmt;

/// Dense identifier a [`crate::interner::FactInterner`] assigns to a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId(pub u32);

/// A ground fact: relation symbol applied to universe elements.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    rel: RelId,
    args: Vec<Value>,
}

impl Fact {
    /// Creates a fact without validation against a schema.
    pub fn new(rel: RelId, args: impl IntoIterator<Item = Value>) -> Self {
        Self {
            rel,
            args: args.into_iter().collect(),
        }
    }

    /// Creates a fact, checking the relation exists in `schema`, the arity
    /// matches, and every argument belongs to `universe`.
    pub fn checked<U: Universe>(
        schema: &Schema,
        universe: &U,
        rel: RelId,
        args: impl IntoIterator<Item = Value>,
    ) -> Result<Self, CoreError> {
        let args: Vec<Value> = args.into_iter().collect();
        let relation = schema.get(rel).ok_or(CoreError::UnknownRelation(rel))?;
        if relation.arity() != args.len() {
            return Err(CoreError::ArityMismatch {
                relation: relation.name().to_string(),
                expected: relation.arity(),
                got: args.len(),
            });
        }
        if let Some(v) = args.iter().find(|v| !universe.contains(v)) {
            return Err(CoreError::ValueNotInUniverse(v.clone()));
        }
        Ok(Self { rel, args })
    }

    /// Convenience: resolve the relation by name and build a checked fact.
    pub fn parse_checked<U: Universe>(
        schema: &Schema,
        universe: &U,
        rel_name: &str,
        args: impl IntoIterator<Item = Value>,
    ) -> Result<Self, CoreError> {
        let rel = schema
            .rel_id(rel_name)
            .ok_or_else(|| CoreError::UnknownRelationName(rel_name.to_string()))?;
        Self::checked(schema, universe, rel, args)
    }

    /// The relation symbol.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The argument tuple.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// Renders the fact using the relation's name from `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FactDisplay<'a> {
        FactDisplay { fact: self, schema }
    }
}

/// Helper implementing `Display` for a fact in the context of a schema.
pub struct FactDisplay<'a> {
    fact: &'a Fact,
    schema: &'a Schema,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self
            .schema
            .get(self.fact.rel)
            .map(|r| r.name())
            .unwrap_or("?");
        write!(f, "{name}(")?;
        for (i, a) in self.fact.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Naturals;

    fn schema() -> Schema {
        Schema::from_relations([
            crate::schema::Relation::new("R", 2),
            crate::schema::Relation::new("S", 1),
        ])
        .unwrap()
    }

    #[test]
    fn new_and_accessors() {
        let f = Fact::new(RelId(0), [Value::int(1), Value::int(2)]);
        assert_eq!(f.rel(), RelId(0));
        assert_eq!(f.args(), &[Value::int(1), Value::int(2)]);
    }

    #[test]
    fn checked_accepts_valid() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let f = Fact::checked(&s, &Naturals, r, [Value::int(1), Value::int(2)]).unwrap();
        assert_eq!(f.args().len(), 2);
    }

    #[test]
    fn checked_rejects_arity_mismatch() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let e = Fact::checked(&s, &Naturals, r, [Value::int(1)]).unwrap_err();
        assert!(matches!(
            e,
            CoreError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn checked_rejects_unknown_relation() {
        let s = schema();
        let e = Fact::checked(&s, &Naturals, RelId(9), [Value::int(1)]).unwrap_err();
        assert!(matches!(e, CoreError::UnknownRelation(RelId(9))));
    }

    #[test]
    fn checked_rejects_value_outside_universe() {
        let s = schema();
        let r = s.rel_id("S").unwrap();
        let e = Fact::checked(&s, &Naturals, r, [Value::int(0)]).unwrap_err();
        assert!(matches!(e, CoreError::ValueNotInUniverse(_)));
        let e2 = Fact::checked(&s, &Naturals, r, [Value::str("x")]).unwrap_err();
        assert!(matches!(e2, CoreError::ValueNotInUniverse(_)));
    }

    #[test]
    fn parse_checked_resolves_names() {
        let s = schema();
        let f = Fact::parse_checked(&s, &Naturals, "S", [Value::int(3)]).unwrap();
        assert_eq!(f.rel(), s.rel_id("S").unwrap());
        assert!(matches!(
            Fact::parse_checked(&s, &Naturals, "Q", [Value::int(3)]),
            Err(CoreError::UnknownRelationName(_))
        ));
    }

    #[test]
    fn display_renders_with_relation_name() {
        let s = schema();
        let f = Fact::new(s.rel_id("R").unwrap(), [Value::int(1), Value::str("a")]);
        assert_eq!(f.display(&s).to_string(), "R(1, \"a\")");
        let g = Fact::new(RelId(7), [Value::int(1)]);
        assert_eq!(g.display(&s).to_string(), "?(1)");
    }

    #[test]
    fn facts_order_and_hash() {
        use std::collections::HashSet;
        let a = Fact::new(RelId(0), [Value::int(1)]);
        let b = Fact::new(RelId(0), [Value::int(2)]);
        let c = Fact::new(RelId(1), [Value::int(0)]);
        assert!(a < b && b < c);
        let set: HashSet<_> = [a.clone(), b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}

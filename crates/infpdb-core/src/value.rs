//! Universe elements.
//!
//! The paper's running universes are ℕ, ℤ, strings `Σ*`, and (idealized)
//! reals. Our universes are countable (the regime of all technical results
//! in the paper, Sections 4–6), so [`Value`] covers integers, strings, and
//! fixed-point decimals — the countable stand-in for numeric measurement
//! domains like the temperatures of the paper's introduction (see DESIGN.md,
//! "Substitutions").

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A fixed-point decimal `mantissa · 10^(−exponent)`, normalized so that the
/// mantissa is not divisible by 10 unless it is 0 (canonical form, making
/// `Eq`/`Hash` agree with numeric equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed {
    mantissa: i64,
    exponent: u8,
}

impl Fixed {
    /// The largest accepted exponent: keeps cross-exponent comparison
    /// (`mantissa · 10^e` in `i128`) overflow-free.
    pub const MAX_EXPONENT: u8 = 18;

    /// Creates `mantissa · 10^(−exponent)` in canonical form.
    ///
    /// # Panics
    /// If `exponent > Fixed::MAX_EXPONENT` (18 decimal places — beyond any
    /// measurement precision this library models).
    pub fn new(mut mantissa: i64, mut exponent: u8) -> Self {
        assert!(
            exponent <= Self::MAX_EXPONENT,
            "fixed-point exponent {exponent} exceeds {} decimal places",
            Self::MAX_EXPONENT
        );
        if mantissa == 0 {
            return Self {
                mantissa: 0,
                exponent: 0,
            };
        }
        while exponent > 0 && mantissa % 10 == 0 {
            mantissa /= 10;
            exponent -= 1;
        }
        Self { mantissa, exponent }
    }

    /// The integer `n` as a fixed-point value.
    pub fn from_int(n: i64) -> Self {
        Self::new(n, 0)
    }

    /// Approximate conversion to `f64` (for display and distributions).
    pub fn to_f64(self) -> f64 {
        self.mantissa as f64 / 10f64.powi(self.exponent as i32)
    }

    /// The mantissa of the canonical form.
    pub fn mantissa(self) -> i64 {
        self.mantissa
    }

    /// The exponent of the canonical form.
    pub fn exponent(self) -> u8 {
        self.exponent
    }
}

impl PartialOrd for Fixed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fixed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a·10^-p vs b·10^-q by scaling to the common exponent in
        // i128 to avoid overflow: a·10^q vs b·10^p.
        let a = self.mantissa as i128 * 10i128.pow(other.exponent as u32);
        let b = other.mantissa as i128 * 10i128.pow(self.exponent as u32);
        a.cmp(&b)
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exponent == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let sign = if self.mantissa < 0 { "-" } else { "" };
        let abs = self.mantissa.unsigned_abs();
        let pow = 10u64.pow(self.exponent as u32);
        write!(
            f,
            "{sign}{}.{:0width$}",
            abs / pow,
            abs % pow,
            width = self.exponent as usize
        )
    }
}

/// An element of a universe.
///
/// Ordering is total across variants (Int < Fixed < Str) so instances can be
/// kept in canonical sorted order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer (the paper's ℕ or ℤ examples).
    Int(i64),
    /// A fixed-point decimal (countable stand-in for measured reals).
    Fixed(Fixed),
    /// A string over some alphabet (the paper's `Σ*`).
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for integers.
    pub fn int(n: i64) -> Self {
        Value::Int(n)
    }

    /// A fixed-point decimal `mantissa · 10^(−exponent)`.
    pub fn fixed(mantissa: i64, exponent: u8) -> Self {
        Value::Fixed(Fixed::new(mantissa, exponent))
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The fixed-point payload, if this is a `Fixed`.
    pub fn as_fixed(&self) -> Option<Fixed> {
        match self {
            Value::Fixed(x) => Some(*x),
            _ => None,
        }
    }

    fn variant_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Fixed(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Fixed(a), Value::Fixed(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Fixed(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "decimal places")]
    fn fixed_rejects_huge_exponents() {
        Fixed::new(1, 200);
    }

    #[test]
    fn fixed_comparison_is_exact_at_max_exponent() {
        // would overflow i64 scaling; i128 path must stay exact
        let a = Fixed::new(i64::MAX, 18);
        let b = Fixed::new(i64::MAX - 1, 18);
        assert!(b < a);
        assert!(Fixed::new(10, 0) > a); // 10 > ~9.223 (= i64::MAX·10⁻¹⁸)
        let c = Fixed::new(9, 0);
        assert!(c < Fixed::new(92, 1)); // 9 < 9.2
    }

    #[test]
    fn fixed_canonical_form() {
        assert_eq!(Fixed::new(2500, 2), Fixed::new(25, 0));
        assert_eq!(Fixed::new(0, 5), Fixed::new(0, 0));
        assert_eq!(Fixed::new(205, 1).mantissa(), 205);
        assert_eq!(Fixed::new(205, 1).exponent(), 1);
    }

    #[test]
    fn fixed_ordering_is_numeric() {
        // 20.2 < 20.25 < 20.5
        let a = Fixed::new(202, 1);
        let b = Fixed::new(2025, 2);
        let c = Fixed::new(205, 1);
        assert!(a < b && b < c);
        assert!(Fixed::new(-5, 0) < Fixed::new(1, 2)); // −5 < 0.01
        assert_eq!(a.partial_cmp(&c), Some(Ordering::Less));
    }

    #[test]
    fn fixed_display() {
        assert_eq!(Fixed::new(202, 1).to_string(), "20.2");
        assert_eq!(Fixed::new(-2025, 2).to_string(), "-20.25");
        assert_eq!(Fixed::new(7, 0).to_string(), "7");
        assert_eq!(Fixed::new(5, 3).to_string(), "0.005");
    }

    #[test]
    fn fixed_to_f64() {
        assert!((Fixed::new(202, 1).to_f64() - 20.2).abs() < 1e-12);
        assert_eq!(Fixed::from_int(-3).to_f64(), -3.0);
    }

    #[test]
    fn value_constructors_and_accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::fixed(15, 1).as_fixed(), Some(Fixed::new(15, 1)));
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::str("x").as_int(), None);
        assert_eq!(Value::int(1).as_fixed(), None);
    }

    #[test]
    fn value_equality_canonicalizes_fixed() {
        assert_eq!(Value::fixed(2500, 2), Value::fixed(25, 0));
    }

    #[test]
    fn value_total_order() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(5),
            Value::fixed(25, 1),
            Value::str("a"),
            Value::int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::int(-1),
                Value::int(5),
                Value::fixed(25, 1),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(3i64), Value::int(3));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(String::from("yo")), Value::str("yo"));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::int(-4).to_string(), "-4");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::fixed(202, 1).to_string(), "20.2");
    }
}

//! Database schemas.
//!
//! A schema `τ = {R₁, …, R_m}` is a finite set of relation symbols, each
//! with an arity (Section 2.1). Relation symbols are interned into dense
//! [`RelId`]s at construction.

use crate::error::CoreError;
use std::collections::HashMap;

/// Identifier of a relation symbol within its [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// A relation symbol: name, arity, and optional attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    arity: usize,
    attributes: Option<Vec<String>>,
}

impl Relation {
    /// A relation with `name` and `arity` and unnamed attributes.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Self {
            name: name.into(),
            arity,
            attributes: None,
        }
    }

    /// A relation with named attributes (arity = number of names).
    pub fn with_attributes(
        name: impl Into<String>,
        attributes: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        Self {
            name: name.into(),
            arity: attributes.len(),
            attributes: Some(attributes),
        }
    }

    /// The relation symbol's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The arity `ar(R)`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Attribute names, if declared.
    pub fn attributes(&self) -> Option<&[String]> {
        self.attributes.as_deref()
    }
}

/// A database schema: an ordered collection of relation symbols with unique
/// names.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    relations: Vec<Relation>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from relations, rejecting duplicate names and arities
    /// of zero-length names.
    pub fn from_relations(
        relations: impl IntoIterator<Item = Relation>,
    ) -> Result<Self, CoreError> {
        let mut s = Self::new();
        for r in relations {
            s.add(r)?;
        }
        Ok(s)
    }

    /// Adds a relation, returning its id. Errors on duplicate or empty
    /// names.
    pub fn add(&mut self, relation: Relation) -> Result<RelId, CoreError> {
        if relation.name.is_empty() {
            return Err(CoreError::BadRelationName(relation.name));
        }
        if self.by_name.contains_key(&relation.name) {
            return Err(CoreError::DuplicateRelation(relation.name));
        }
        let id = RelId(self.relations.len() as u32);
        self.by_name.insert(relation.name.clone(), id);
        self.relations.push(relation);
        Ok(id)
    }

    /// Shorthand for `add(Relation::new(name, arity))`.
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        arity: usize,
    ) -> Result<RelId, CoreError> {
        self.add(Relation::new(name, arity))
    }

    /// Resolves a relation name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// The relation for an id.
    ///
    /// # Panics
    /// On ids from a different schema.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.0 as usize]
    }

    /// Checked lookup.
    pub fn get(&self, id: RelId) -> Option<&Relation> {
        self.relations.get(id.0 as usize)
    }

    /// All relations with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The maximum arity over all relations (0 for the empty schema); the
    /// constant `k` in the proof of Proposition 4.9.
    pub fn max_arity(&self) -> usize {
        self.relations
            .iter()
            .map(Relation::arity)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = Schema::new();
        let r = s.add_relation("R", 2).unwrap();
        let t = s.add_relation("T", 1).unwrap();
        assert_eq!(s.rel_id("R"), Some(r));
        assert_eq!(s.rel_id("T"), Some(t));
        assert_eq!(s.rel_id("missing"), None);
        assert_eq!(s.relation(r).arity(), 2);
        assert_eq!(s.relation(t).name(), "T");
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.max_arity(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut s = Schema::new();
        s.add_relation("R", 2).unwrap();
        assert!(matches!(
            s.add_relation("R", 3),
            Err(CoreError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn empty_name_rejected() {
        let mut s = Schema::new();
        assert!(matches!(
            s.add_relation("", 1),
            Err(CoreError::BadRelationName(_))
        ));
    }

    #[test]
    fn from_relations_builder() {
        let s = Schema::from_relations([Relation::new("A", 1), Relation::new("B", 3)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_arity(), 3);
        assert!(Schema::from_relations([Relation::new("A", 1), Relation::new("A", 1)]).is_err());
    }

    #[test]
    fn named_attributes() {
        let r = Relation::with_attributes("Person", ["first", "last", "height"]);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.attributes().unwrap()[2], "height");
        assert_eq!(Relation::new("R", 2).attributes(), None);
    }

    #[test]
    fn iter_and_get() {
        let s = Schema::from_relations([Relation::new("A", 1), Relation::new("B", 2)]).unwrap();
        let names: Vec<&str> = s.iter().map(|(_, r)| r.name()).collect();
        assert_eq!(names, vec!["A", "B"]);
        assert!(s.get(RelId(5)).is_none());
        assert!(s.get(RelId(1)).is_some());
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new();
        assert!(s.is_empty());
        assert_eq!(s.max_arity(), 0);
    }
}

//! Stable content fingerprints.
//!
//! The serving layer (`infpdb-serve`) caches query results keyed by the
//! *content* of a probabilistic database, so it needs a hash that is
//! stable across processes and insertion orders — `std::hash::Hash` with
//! `RandomState` guarantees neither. This module provides a small FNV-1a
//! hasher with a fixed seed plus helpers for the domain types:
//!
//! * [`Fingerprinter`] — incremental 64-bit FNV-1a over byte chunks, with
//!   length-prefixed framing so concatenation ambiguities cannot collide
//!   (`("ab","c")` vs `("a","bc")`).
//! * [`fact_fingerprint`] — hash of one weighted fact, going through the
//!   *relation name* (not the schema-local [`RelId`](crate::schema::RelId)
//!   index) so two tables declaring the same relations in different order
//!   agree.
//! * [`combine_unordered`] — an order-insensitive combination of per-item
//!   hashes (sum + XOR mix), used to fingerprint fact *sets*.

use crate::fact::Fact;
use crate::schema::Schema;
use crate::value::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Incremental FNV-1a hasher with length-prefixed framing.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// A fresh hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }

    fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a byte chunk, framed by its length.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_raw(&(bytes.len() as u64).to_le_bytes());
        self.write_raw(bytes);
        self
    }

    /// Absorbs a `u64`.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_raw(&v.to_le_bytes());
        self
    }

    /// Absorbs an `f64` by its exact bit pattern (so `0.30` and
    /// `0.30000001` differ, and every probability change is visible).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Absorbs a [`Value`] with a discriminant tag.
    pub fn write_value(&mut self, v: &Value) -> &mut Self {
        match v {
            Value::Int(n) => self.write_u64(1).write_u64(*n as u64),
            Value::Fixed(x) => self
                .write_u64(2)
                .write_u64(x.mantissa() as u64)
                .write_u64(u64::from(x.exponent())),
            Value::Str(s) => self.write_u64(3).write_bytes(s.as_bytes()),
        }
    }

    /// The 64-bit digest.
    pub fn finish(&self) -> u64 {
        // final avalanche (splitmix64 finalizer) so close inputs spread
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Fingerprint of one fact together with its marginal probability.
///
/// Relations are identified by *name*, so the digest does not depend on
/// the order relations were declared in the schema. Returns the digest of
/// `(relation name, args, probability bits)`.
pub fn fact_fingerprint(schema: &Schema, fact: &Fact, prob: f64) -> u64 {
    let mut fp = Fingerprinter::new();
    let name = schema.get(fact.rel()).map(|r| r.name()).unwrap_or("?");
    fp.write_bytes(name.as_bytes());
    fp.write_u64(fact.args().len() as u64);
    for arg in fact.args() {
        fp.write_value(arg);
    }
    fp.write_f64(prob);
    fp.finish()
}

/// Combines per-item digests independent of iteration order.
///
/// Uses `wrapping_add` + XOR of a mixed copy: commutative and
/// associative, so any permutation of the same multiset of digests
/// produces the same result, while single-bit changes in any item change
/// the output with overwhelming probability.
pub fn combine_unordered(digests: impl IntoIterator<Item = u64>) -> u64 {
    let mut c = UnorderedCombiner::new();
    for d in digests {
        c.add(d);
    }
    c.finish()
}

/// Incremental, order-insensitive digest combiner.
///
/// The running form of [`combine_unordered`]: feeding the same multiset
/// of digests through [`add`](Self::add) one at a time and calling
/// [`finish`](Self::finish) yields bit-for-bit the same value as one
/// batch `combine_unordered` call. This is what lets the fact catalog
/// and the durable store maintain an O(1)-per-append set fingerprint
/// instead of rehashing all n items at every snapshot skip-check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnorderedCombiner {
    sum: u64,
    xor: u64,
    count: u64,
}

impl UnorderedCombiner {
    /// An empty combiner (equal to `combine_unordered([])` on finish).
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one item digest. Commutative with every other `add`.
    pub fn add(&mut self, digest: u64) {
        self.sum = self.sum.wrapping_add(digest);
        self.xor ^= digest.rotate_left(17);
        self.count += 1;
    }

    /// How many digests have been absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The combined digest of everything absorbed so far. Does not
    /// consume the combiner; more items may be added afterwards.
    pub fn finish(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u64(self.sum)
            .write_u64(self.xor)
            .write_u64(self.count);
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelId, Relation, Schema};

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap()
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = Fingerprinter::new();
        a.write_bytes(b"ab").write_bytes(b"c");
        let mut b = Fingerprinter::new();
        b.write_bytes(b"a").write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fact_fingerprint_is_stable_and_discriminating() {
        let s = schema();
        let f = Fact::new(RelId(0), [Value::int(1)]);
        let base = fact_fingerprint(&s, &f, 0.5);
        // deterministic across calls (fixed seed, no RandomState)
        assert_eq!(base, fact_fingerprint(&s, &f, 0.5));
        // sensitive to the probability
        assert_ne!(base, fact_fingerprint(&s, &f, 0.5000001));
        // sensitive to arguments and relation
        assert_ne!(
            base,
            fact_fingerprint(&s, &Fact::new(RelId(0), [Value::int(2)]), 0.5)
        );
        assert_ne!(
            base,
            fact_fingerprint(
                &s,
                &Fact::new(RelId(1), [Value::int(1), Value::int(1)]),
                0.5
            )
        );
        // value-kind tags discriminate Int(1) from Str("1")
        assert_ne!(
            base,
            fact_fingerprint(&s, &Fact::new(RelId(0), [Value::str("1")]), 0.5)
        );
    }

    #[test]
    fn relation_identity_is_by_name_not_schema_position() {
        let forward = schema();
        let backward =
            Schema::from_relations([Relation::new("S", 2), Relation::new("R", 1)]).unwrap();
        let ff = Fact::new(forward.rel_id("R").unwrap(), [Value::int(7)]);
        let bf = Fact::new(backward.rel_id("R").unwrap(), [Value::int(7)]);
        assert_eq!(
            fact_fingerprint(&forward, &ff, 0.25),
            fact_fingerprint(&backward, &bf, 0.25)
        );
    }

    #[test]
    fn combine_unordered_is_permutation_invariant() {
        let items = [3u64, 99, 12345, u64::MAX, 7];
        let a = combine_unordered(items);
        let b = combine_unordered([7u64, u64::MAX, 99, 3, 12345]);
        assert_eq!(a, b);
        // but not multiplicity-blind or content-blind
        assert_ne!(a, combine_unordered([3u64, 99, 12345, u64::MAX]));
        assert_ne!(a, combine_unordered([4u64, 99, 12345, u64::MAX, 7]));
    }

    #[test]
    fn incremental_combiner_matches_batch_combine_at_every_prefix() {
        let items = [3u64, 99, 12345, u64::MAX, 7, 0, 42];
        let mut c = UnorderedCombiner::new();
        assert_eq!(c.finish(), combine_unordered([]));
        for (i, &d) in items.iter().enumerate() {
            c.add(d);
            assert_eq!(c.count(), (i + 1) as u64);
            assert_eq!(
                c.finish(),
                combine_unordered(items[..=i].iter().copied()),
                "prefix {i}"
            );
        }
        // finish() is a snapshot, not a consumer: adding after it still agrees
        c.add(5);
        assert_eq!(
            c.finish(),
            combine_unordered(items.iter().copied().chain([5]))
        );
    }
}

//! Discrete probability spaces.
//!
//! Section 2.3 of the paper: in a discrete probability space, defining
//! `P({ω})` for every outcome determines the whole measure by σ-additivity.
//! [`DiscreteSpace`] is that object with an explicit (finite) support — the
//! representation used for finite PDBs, for finite restrictions `Ω_n` of
//! infinite PDBs (Proposition 6.1), and for pushforward measures under views
//! (Section 3.1, equations (3)/(4)).
//!
//! Infinite supports are handled by the dedicated constructions in
//! `infpdb-ti`, which never materialize the space; a `DiscreteSpace` is the
//! *materialized* finite core with mass `1` (or the `Ω_n` slice of an
//! infinite space, renormalized via [`DiscreteSpace::condition`]).

use crate::error::CoreError;
use std::collections::HashMap;
use std::hash::Hash;

/// Tolerance for "probabilities sum to 1" checks; generous enough for sums
/// of ~10⁶ f64 terms, tight enough to catch modeling errors.
pub const MASS_TOLERANCE: f64 = 1e-6;

/// A finitely-supported probability space over outcomes `T`.
#[derive(Debug, Clone)]
pub struct DiscreteSpace<T> {
    outcomes: Vec<(T, f64)>,
    index: HashMap<T, usize>,
}

impl<T: Clone + Eq + Hash> DiscreteSpace<T> {
    /// Builds a space from `(outcome, probability)` pairs.
    ///
    /// Duplicate outcomes have their mass merged. Every probability must be
    /// in `[0, 1]` and the total mass must be 1 within [`MASS_TOLERANCE`].
    pub fn new(outcomes: impl IntoIterator<Item = (T, f64)>) -> Result<Self, CoreError> {
        let space = Self::new_unnormalized(outcomes)?;
        let mass = space.total_mass();
        if (mass - 1.0).abs() > MASS_TOLERANCE {
            return Err(CoreError::MassNotOne(mass));
        }
        Ok(space)
    }

    /// Builds a sub-probability space (mass may be < 1); used internally for
    /// restrictions before renormalization.
    pub fn new_unnormalized(
        outcomes: impl IntoIterator<Item = (T, f64)>,
    ) -> Result<Self, CoreError> {
        let mut index: HashMap<T, usize> = HashMap::new();
        let mut merged: Vec<(T, f64)> = Vec::new();
        for (t, p) in outcomes {
            infpdb_math::check_probability(p).map_err(CoreError::Math)?;
            match index.get(&t) {
                Some(&i) => merged[i].1 += p,
                None => {
                    index.insert(t.clone(), merged.len());
                    merged.push((t, p));
                }
            }
        }
        if merged.is_empty() {
            return Err(CoreError::EmptySpace);
        }
        Ok(Self {
            outcomes: merged,
            index,
        })
    }

    /// A space putting all mass on one outcome (a Dirac measure).
    pub fn dirac(outcome: T) -> Self {
        let mut index = HashMap::new();
        index.insert(outcome.clone(), 0);
        Self {
            outcomes: vec![(outcome, 1.0)],
            index,
        }
    }

    /// Total mass (1 for proper spaces, less for restrictions).
    pub fn total_mass(&self) -> f64 {
        infpdb_math::KahanSum::sum_iter(self.outcomes.iter().map(|(_, p)| *p))
    }

    /// `P({outcome})`.
    pub fn prob_outcome(&self, outcome: &T) -> f64 {
        self.index
            .get(outcome)
            .map(|&i| self.outcomes[i].1)
            .unwrap_or(0.0)
    }

    /// `P({ω : pred(ω)})`.
    pub fn prob_where<F: FnMut(&T) -> bool>(&self, mut pred: F) -> f64 {
        infpdb_math::KahanSum::sum_iter(
            self.outcomes
                .iter()
                .filter(|(t, _)| pred(t))
                .map(|(_, p)| *p),
        )
    }

    /// Expectation of a real-valued random variable.
    pub fn expectation<F: FnMut(&T) -> f64>(&self, mut f: F) -> f64 {
        infpdb_math::KahanSum::sum_iter(self.outcomes.iter().map(|(t, p)| p * f(t)))
    }

    /// The support with probabilities, in insertion order.
    pub fn outcomes(&self) -> &[(T, f64)] {
        &self.outcomes
    }

    /// Number of support points.
    pub fn support_size(&self) -> usize {
        self.outcomes.len()
    }

    /// Conditional space `P(· | pred)` (Bayes), renormalized.
    ///
    /// Errors with [`CoreError::ConditionOnNull`] if the event has
    /// probability 0.
    pub fn condition<F: FnMut(&T) -> bool>(&self, mut pred: F) -> Result<Self, CoreError> {
        let mass = self.prob_where(&mut pred);
        if mass <= 0.0 {
            return Err(CoreError::ConditionOnNull);
        }
        let outcomes = self
            .outcomes
            .iter()
            .filter(|(t, _)| pred(t))
            .map(|(t, p)| (t.clone(), (p / mass).min(1.0)));
        Self::new_unnormalized(outcomes)
    }

    /// Pushforward measure under `f`: the view semantics of Section 3.1,
    /// `P′({ω′}) = P(f⁻¹(ω′))` — outcomes mapping to the same image have
    /// their mass merged.
    pub fn pushforward<U: Clone + Eq + Hash, F: FnMut(&T) -> U>(
        &self,
        mut f: F,
    ) -> DiscreteSpace<U> {
        DiscreteSpace::new_unnormalized(self.outcomes.iter().map(|(t, p)| (f(t), *p)))
            .expect("pushforward of a nonempty space is nonempty")
    }

    /// Product measure `P × Q` over pairs — the independent coupling used by
    /// the completion construction (proof of Theorem 5.5).
    pub fn product<U: Clone + Eq + Hash>(&self, other: &DiscreteSpace<U>) -> DiscreteSpace<(T, U)> {
        let mut pairs = Vec::with_capacity(self.outcomes.len() * other.outcomes.len());
        for (t, p) in &self.outcomes {
            for (u, q) in &other.outcomes {
                pairs.push(((t.clone(), u.clone()), p * q));
            }
        }
        DiscreteSpace::new_unnormalized(pairs).expect("product of nonempty spaces is nonempty")
    }

    /// Draws one outcome using linear-time inverse-CDF sampling. For
    /// repeated sampling build a [`Sampler`] once.
    pub fn sample<R: rand_core::RngCore>(&self, rng: &mut R) -> &T {
        let u = (rng.next_u64() as f64 / u64::MAX as f64) * self.total_mass();
        let mut acc = 0.0;
        for (t, p) in &self.outcomes {
            acc += p;
            if u <= acc {
                return t;
            }
        }
        &self.outcomes.last().expect("space is nonempty").0
    }

    /// Precomputes a CDF for `O(log n)` repeated sampling.
    pub fn sampler(&self) -> Sampler<'_, T> {
        let mut cdf = Vec::with_capacity(self.outcomes.len());
        let mut acc = infpdb_math::KahanSum::new();
        for (_, p) in &self.outcomes {
            acc.add(*p);
            cdf.push(acc.value());
        }
        Sampler { space: self, cdf }
    }
}

/// Precomputed-CDF sampler borrowed from a space.
#[derive(Debug)]
pub struct Sampler<'a, T> {
    space: &'a DiscreteSpace<T>,
    cdf: Vec<f64>,
}

impl<T: Clone + Eq + Hash> Sampler<'_, T> {
    /// Draws one outcome in `O(log n)`.
    pub fn sample<R: rand_core::RngCore>(&self, rng: &mut R) -> &T {
        let total = *self.cdf.last().expect("space is nonempty");
        let u = (rng.next_u64() as f64 / u64::MAX as f64) * total;
        let idx = self.cdf.partition_point(|&c| c < u);
        let idx = idx.min(self.space.outcomes.len() - 1);
        &self.space.outcomes[idx].0
    }
}

/// Minimal RNG abstraction so `infpdb-core` does not depend on a specific
/// `rand` version; `rand::RngCore` implementors satisfy it via the blanket
/// impl in consumer crates.
pub mod rand_core {
    /// Source of random 64-bit words.
    pub trait RngCore {
        /// The next random word.
        fn next_u64(&mut self) -> u64;
    }

    /// A tiny splitmix64 generator for tests and default sampling.
    #[derive(Debug, Clone)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for SplitMix64 {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SplitMix64;
    use super::*;

    fn coin(p: f64) -> DiscreteSpace<bool> {
        DiscreteSpace::new([(true, p), (false, 1.0 - p)]).unwrap()
    }

    #[test]
    fn new_validates_mass() {
        assert!(matches!(
            DiscreteSpace::new([(1, 0.5), (2, 0.3)]),
            Err(CoreError::MassNotOne(_))
        ));
        assert!(DiscreteSpace::new([(1, 0.5), (2, 0.5)]).is_ok());
    }

    #[test]
    fn new_rejects_bad_probabilities_and_empty() {
        assert!(matches!(
            DiscreteSpace::new([(1, 1.5)]),
            Err(CoreError::Math(_))
        ));
        assert!(matches!(
            DiscreteSpace::<i32>::new(std::iter::empty()),
            Err(CoreError::EmptySpace)
        ));
    }

    #[test]
    fn duplicate_outcomes_merge_mass() {
        let s = DiscreteSpace::new([(1, 0.3), (1, 0.2), (2, 0.5)]).unwrap();
        assert_eq!(s.support_size(), 2);
        assert!((s.prob_outcome(&1) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn dirac_space() {
        let s = DiscreteSpace::dirac("x");
        assert_eq!(s.prob_outcome(&"x"), 1.0);
        assert_eq!(s.prob_outcome(&"y"), 0.0);
        assert_eq!(s.support_size(), 1);
    }

    #[test]
    fn prob_where_and_expectation() {
        let s = DiscreteSpace::new([(1, 0.2), (2, 0.3), (3, 0.5)]).unwrap();
        assert!((s.prob_where(|&x| x >= 2) - 0.8).abs() < 1e-15);
        assert!((s.expectation(|&x| x as f64) - 2.3).abs() < 1e-15);
    }

    #[test]
    fn condition_renormalizes() {
        let s = DiscreteSpace::new([(1, 0.2), (2, 0.3), (3, 0.5)]).unwrap();
        let c = s.condition(|&x| x >= 2).unwrap();
        assert!((c.prob_outcome(&2) - 0.375).abs() < 1e-12);
        assert!((c.prob_outcome(&3) - 0.625).abs() < 1e-12);
        assert_eq!(c.prob_outcome(&1), 0.0);
        assert!((c.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_on_null_event_errors() {
        let s = coin(0.5);
        assert!(matches!(
            s.condition(|_| false),
            Err(CoreError::ConditionOnNull)
        ));
    }

    #[test]
    fn pushforward_merges_preimages() {
        // view semantics: P'(ω') = P(V⁻¹(ω'))
        let s = DiscreteSpace::new([(1, 0.2), (2, 0.3), (3, 0.5)]).unwrap();
        let v = s.pushforward(|&x| x % 2);
        assert!((v.prob_outcome(&0) - 0.3).abs() < 1e-15);
        assert!((v.prob_outcome(&1) - 0.7).abs() < 1e-15);
    }

    #[test]
    fn product_measure_is_independent_coupling() {
        let a = coin(0.3);
        let b = coin(0.6);
        let p = a.product(&b);
        assert!((p.prob_outcome(&(true, true)) - 0.18).abs() < 1e-15);
        assert!((p.prob_outcome(&(false, false)) - 0.28).abs() < 1e-15);
        assert!((p.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(p.support_size(), 4);
    }

    #[test]
    fn sampling_matches_distribution() {
        let s = DiscreteSpace::new([(0, 0.25), (1, 0.75)]).unwrap();
        let mut rng = SplitMix64::new(42);
        let sampler = s.sampler();
        let n = 40_000;
        let mut ones = 0;
        for _ in 0..n {
            if *sampler.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn linear_sampling_also_works() {
        let s = coin(0.5);
        let mut rng = SplitMix64::new(7);
        let mut heads = 0;
        for _ in 0..10_000 {
            if *s.sample(&mut rng) {
                heads += 1;
            }
        }
        assert!((heads as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    fn unnormalized_space_for_restrictions() {
        let s = DiscreteSpace::new_unnormalized([(1, 0.2), (2, 0.3)]).unwrap();
        assert!((s.total_mass() - 0.5).abs() < 1e-15);
    }
}

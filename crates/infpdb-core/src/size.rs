//! The size distribution `S_D` of a probabilistic database (Section 3.2).
//!
//! For a countable PDB, the expected instance size is
//! `E(S_D) = ∑_f P(E_f)` (equation (5) of the paper), and
//! `lim_{n→∞} P(S_D ≥ n) = 0` (equation (6)) because every instance is
//! finite. This module computes the size distribution, its moments, and the
//! fact marginals of a materialized [`DiscreteSpace`] over instances —
//! including the countable set `F_ω` of facts with positive marginal
//! probability, whose countability is Proposition 3.4.

use crate::fact::FactId;
use crate::instance::Instance;
use crate::space::DiscreteSpace;
use std::collections::{BTreeMap, HashMap};

/// The distribution of `S_D` as a map `size ↦ probability`.
pub fn size_distribution(space: &DiscreteSpace<Instance>) -> BTreeMap<usize, f64> {
    let mut dist: BTreeMap<usize, f64> = BTreeMap::new();
    for (d, p) in space.outcomes() {
        *dist.entry(d.size()).or_insert(0.0) += p;
    }
    dist
}

/// `E(S_D)`.
pub fn expected_size(space: &DiscreteSpace<Instance>) -> f64 {
    space.expectation(|d| d.size() as f64)
}

/// The `k`-th raw moment `E(S_D^k)` (Remark 4.10 uses higher moments to
/// strengthen the non-definability counterexample).
pub fn size_moment(space: &DiscreteSpace<Instance>, k: u32) -> f64 {
    space.expectation(|d| (d.size() as f64).powi(k as i32))
}

/// `P(S_D ≥ n)` (equation (6)).
pub fn prob_size_at_least(space: &DiscreteSpace<Instance>, n: usize) -> f64 {
    space.prob_where(|d| d.size() >= n)
}

/// The marginal probabilities `p_f = P(E_f)` of every fact occurring in the
/// support — the family whose positive part `F_ω` is countable by
/// Proposition 3.4 (here trivially finite, since the space is materialized).
///
/// By equation (5), the values sum to `E(S_D)`.
pub fn fact_marginals(space: &DiscreteSpace<Instance>) -> HashMap<FactId, f64> {
    let mut marginals: HashMap<FactId, f64> = HashMap::new();
    for (d, p) in space.outcomes() {
        for id in d.iter() {
            *marginals.entry(id).or_insert(0.0) += p;
        }
    }
    marginals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(v: &[u32]) -> Instance {
        Instance::from_ids(v.iter().map(|&i| FactId(i)))
    }

    fn space() -> DiscreteSpace<Instance> {
        DiscreteSpace::new([
            (Instance::empty(), 0.1),
            (inst(&[0]), 0.2),
            (inst(&[0, 1]), 0.3),
            (inst(&[1, 2, 3]), 0.4),
        ])
        .unwrap()
    }

    #[test]
    fn size_distribution_partitions_mass() {
        let dist = size_distribution(&space());
        assert!((dist[&0] - 0.1).abs() < 1e-15);
        assert!((dist[&1] - 0.2).abs() < 1e-15);
        assert!((dist[&2] - 0.3).abs() < 1e-15);
        assert!((dist[&3] - 0.4).abs() < 1e-15);
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_size_matches_sum_of_marginals() {
        // Equation (5): E(S_D) = Σ_f P(E_f).
        let s = space();
        let e = expected_size(&s);
        let sum_marginals: f64 = fact_marginals(&s).values().sum();
        assert!((e - sum_marginals).abs() < 1e-12);
        assert!((e - 2.0).abs() < 1e-12); // 0·.1 + 1·.2 + 2·.3 + 3·.4
    }

    #[test]
    fn moments() {
        let s = space();
        assert_eq!(size_moment(&s, 1), expected_size(&s));
        // E(S²) = 0 + .2 + 4·.3 + 9·.4 = 5.0
        assert!((size_moment(&s, 2) - 5.0).abs() < 1e-12);
        assert_eq!(size_moment(&s, 0), 1.0);
    }

    #[test]
    fn tail_probabilities_decrease_to_zero() {
        // Equation (6): P(S_D ≥ n) → 0; trivially reaches 0 past support.
        let s = space();
        assert!((prob_size_at_least(&s, 0) - 1.0).abs() < 1e-12);
        assert!((prob_size_at_least(&s, 1) - 0.9).abs() < 1e-12);
        assert!((prob_size_at_least(&s, 3) - 0.4).abs() < 1e-12);
        assert_eq!(prob_size_at_least(&s, 4), 0.0);
        // monotone nonincreasing
        for n in 0..5 {
            assert!(prob_size_at_least(&s, n) >= prob_size_at_least(&s, n + 1));
        }
    }

    #[test]
    fn marginals_are_per_fact_occurrence_mass() {
        let m = fact_marginals(&space());
        assert!((m[&FactId(0)] - 0.5).abs() < 1e-15); // in instances 2,3
        assert!((m[&FactId(1)] - 0.7).abs() < 1e-15);
        assert!((m[&FactId(2)] - 0.4).abs() < 1e-15);
        assert!((m[&FactId(3)] - 0.4).abs() < 1e-15);
        assert_eq!(m.len(), 4); // F_ω is finite here (Prop 3.4)
    }
}

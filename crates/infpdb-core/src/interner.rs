//! Fact interning.
//!
//! A PDB's support touches the same facts over and over (every instance
//! probability multiplies over all of `F_ω`, Section 4.1). Interning maps
//! each distinct [`Fact`] to a dense [`FactId`] once, so instances and
//! lineage formulas manipulate `u32`s instead of hashing tuples.
//!
//! The id order is *enumeration order*: the `i`-th interned fact gets id
//! `i`. Infinite-PDB constructions rely on this — interning facts in the
//! order of a fact enumeration makes `FactId(i)` line up with the series
//! index `i` of the fact-probability series.

use crate::fact::{Fact, FactId};
use std::collections::HashMap;

/// Bidirectional `Fact ↔ FactId` map.
#[derive(Debug, Clone, Default)]
pub struct FactInterner {
    facts: Vec<Fact>,
    ids: HashMap<Fact, FactId>,
}

impl FactInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a fact, returning its id (existing id if already present).
    pub fn intern(&mut self, fact: Fact) -> FactId {
        if let Some(&id) = self.ids.get(&fact) {
            return id;
        }
        let id = FactId(self.facts.len() as u32);
        self.ids.insert(fact.clone(), id);
        self.facts.push(fact);
        id
    }

    /// The id of a fact, if interned.
    pub fn get(&self, fact: &Fact) -> Option<FactId> {
        self.ids.get(fact).copied()
    }

    /// The fact for an id.
    ///
    /// # Panics
    /// On ids not produced by this interner.
    pub fn resolve(&self, id: FactId) -> &Fact {
        &self.facts[id.0 as usize]
    }

    /// Checked lookup.
    pub fn try_resolve(&self, id: FactId) -> Option<&Fact> {
        self.facts.get(id.0 as usize)
    }

    /// Number of interned facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// All `(id, fact)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts
            .iter()
            .enumerate()
            .map(|(i, f)| (FactId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;
    use crate::value::Value;

    fn f(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    #[test]
    fn intern_assigns_dense_sequential_ids() {
        let mut it = FactInterner::new();
        assert_eq!(it.intern(f(10)), FactId(0));
        assert_eq!(it.intern(f(20)), FactId(1));
        assert_eq!(it.intern(f(30)), FactId(2));
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut it = FactInterner::new();
        let a = it.intern(f(1));
        let b = it.intern(f(1));
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn get_and_resolve_round_trip() {
        let mut it = FactInterner::new();
        let id = it.intern(f(7));
        assert_eq!(it.get(&f(7)), Some(id));
        assert_eq!(it.get(&f(8)), None);
        assert_eq!(it.resolve(id), &f(7));
        assert_eq!(it.try_resolve(FactId(9)), None);
        assert_eq!(it.try_resolve(id), Some(&f(7)));
    }

    #[test]
    fn iter_in_id_order() {
        let mut it = FactInterner::new();
        it.intern(f(3));
        it.intern(f(1));
        it.intern(f(2));
        let order: Vec<i64> = it
            .iter()
            .map(|(_, fact)| fact.args()[0].as_int().unwrap())
            .collect();
        assert_eq!(order, vec![3, 1, 2]); // insertion order, not value order
    }

    #[test]
    fn empty_interner() {
        let it = FactInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}

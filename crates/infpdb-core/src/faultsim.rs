//! Seeded, deterministic fault-site machinery.
//!
//! The serving layer's chaos suite (PR 2) established the pattern: faults
//! are configured at *named sites*, each site draws from its own
//! `SplitMix64` stream seeded by `seed ^ fnv1a(site)` (so adding a site
//! never perturbs the streams of existing ones), and budgeted triggers
//! fire an exact number of times so tests can assert failure metrics
//! match injected counts *exactly*. This module extracts that machinery
//! from `infpdb-serve::faults` so other layers — notably the durable
//! store's fault-injecting `StoreIo` implementation — can inject their
//! own fault kinds through the same deterministic triggers.
//!
//! [`SiteInjector`] is generic over the fault payload `K`: the serving
//! layer instantiates it with panic/error/latency kinds, the store with
//! short-write/bit-flip/error kinds. [`check`](SiteInjector::check)
//! returns `Some(kind)` when the site's fault fires and leaves *what to
//! do about it* to the caller.
//!
//! Everything is `std`-only and designed to be free when idle: an
//! unarmed injector's `check` is a single relaxed atomic load.

use crate::space::rand_core::{RngCore, SplitMix64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// When a configured fault fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on the first `k` calls to the site, then never again.
    /// The deterministic workhorse: after enough traffic, exactly `k`
    /// faults have been injected.
    Times(u64),
    /// Fire on every call.
    Always,
    /// Fire on every `n`-th call (the 1st, `n+1`-th, …); `n = 1` is
    /// [`Trigger::Always`].
    EveryNth(u64),
    /// Fire with probability `p` per call, drawn from the site's seeded
    /// stream — deterministic for a fixed seed and call sequence.
    Probability(f64),
}

struct Site<K> {
    kind: K,
    trigger: Trigger,
    rng: SplitMix64,
    calls: u64,
    fired: u64,
}

impl<K> Site<K> {
    fn should_fire(&mut self) -> bool {
        let call = self.calls;
        self.calls += 1;
        match self.trigger {
            Trigger::Times(k) => self.fired < k,
            Trigger::Always => true,
            Trigger::EveryNth(n) => n > 0 && call.is_multiple_of(n),
            Trigger::Probability(p) => (self.rng.next_u64() as f64 / u64::MAX as f64) < p,
        }
    }
}

impl<K: std::fmt::Debug> std::fmt::Debug for Site<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Site")
            .field("kind", &self.kind)
            .field("trigger", &self.trigger)
            .field("calls", &self.calls)
            .field("fired", &self.fired)
            .finish()
    }
}

/// A registry of injectable faults with payload `K`, keyed by site name.
#[derive(Debug)]
pub struct SiteInjector<K> {
    seed: u64,
    armed: AtomicBool,
    sites: Mutex<HashMap<String, Site<K>>>,
}

impl<K: Copy> SiteInjector<K> {
    /// An injector with no faults configured; `seed` feeds the per-site
    /// probability streams.
    pub fn new(seed: u64) -> Self {
        SiteInjector {
            seed,
            armed: AtomicBool::new(false),
            sites: Mutex::new(HashMap::new()),
        }
    }

    /// The injector's seed (shared by every per-site stream).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Configures (or replaces) the fault at `site`. The site's RNG is
    /// seeded from the injector seed and a hash of the site name, so
    /// adding sites never perturbs the streams of existing ones.
    pub fn inject(&self, site: &str, kind: K, trigger: Trigger) {
        let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.insert(
            site.to_string(),
            Site {
                kind,
                trigger,
                rng: SplitMix64::new(self.seed ^ fnv1a(site.as_bytes())),
                calls: 0,
                fired: 0,
            },
        );
        self.armed.store(true, Ordering::Release);
    }

    /// Removes the fault at `site` (its fired count is forgotten).
    pub fn clear(&self, site: &str) {
        let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.remove(site);
        if sites.is_empty() {
            self.armed.store(false, Ordering::Release);
        }
    }

    /// How many faults have fired at `site` so far.
    pub fn fired(&self, site: &str) -> u64 {
        let sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.get(site).map(|s| s.fired).unwrap_or(0)
    }

    /// How many times `site` has been reached (fired or not).
    pub fn calls(&self, site: &str) -> u64 {
        let sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.get(site).map(|s| s.calls).unwrap_or(0)
    }

    /// Total faults fired across every configured site.
    pub fn fired_total(&self) -> u64 {
        let sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        sites.values().map(|s| s.fired).sum()
    }

    /// The checkpoint placed at each named site: `Some(kind)` when the
    /// site's fault fires, `None` otherwise. What the fired kind *means*
    /// is the caller's business.
    pub fn check(&self, site: &str) -> Option<K> {
        if !self.armed.load(Ordering::Acquire) {
            return None;
        }
        let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        let s = sites.get_mut(site)?;
        if !s.should_fire() {
            return None;
        }
        s.fired += 1;
        Some(s.kind)
    }

    /// A fresh draw from the site's seeded stream, for faults whose
    /// *payload* needs deterministic randomness (e.g. which bit to flip).
    /// Draws advance the same stream probability triggers use, keeping
    /// everything a pure function of (seed, site, call sequence).
    pub fn draw(&self, site: &str) -> u64 {
        let mut sites = self.sites.lock().unwrap_or_else(|e| e.into_inner());
        match sites.get_mut(site) {
            Some(s) => s.rng.next_u64(),
            None => SplitMix64::new(self.seed ^ fnv1a(site.as_bytes())).next_u64(),
        }
    }
}

/// FNV-1a, the site-name hash feeding per-site stream seeds.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_injector_is_a_no_op() {
        let f: SiteInjector<u8> = SiteInjector::new(1);
        assert_eq!(f.check("engine"), None);
        assert_eq!(f.fired("engine"), 0);
        assert_eq!(f.calls("engine"), 0);
    }

    #[test]
    fn times_budget_fires_exactly_k() {
        let f = SiteInjector::new(1);
        f.inject("engine", 7u8, Trigger::Times(3));
        let fired = (0..10).filter(|_| f.check("engine").is_some()).count();
        assert_eq!(fired, 3);
        assert_eq!(f.fired("engine"), 3);
        assert_eq!(f.calls("engine"), 10);
        assert_eq!(f.fired_total(), 3);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let f = SiteInjector::new(1);
        f.inject("a", (), Trigger::EveryNth(3));
        let pattern: Vec<bool> = (0..7).map(|_| f.check("a").is_some()).collect();
        assert_eq!(pattern, [true, false, false, true, false, false, true]);
    }

    #[test]
    fn probability_stream_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let f = SiteInjector::new(seed);
            f.inject("engine", (), Trigger::Probability(0.5));
            (0..32).map(|_| f.check("engine").is_some()).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn clear_disarms_when_last_site_removed() {
        let f = SiteInjector::new(1);
        f.inject("a", (), Trigger::Always);
        f.inject("b", (), Trigger::Always);
        f.clear("a");
        assert_eq!(f.check("a"), None);
        assert!(f.check("b").is_some());
        f.clear("b");
        assert_eq!(f.check("b"), None);
    }

    #[test]
    fn draws_are_deterministic_per_seed_and_site() {
        let f = SiteInjector::new(9);
        f.inject("x", (), Trigger::Always);
        let g = SiteInjector::new(9);
        g.inject("x", (), Trigger::Always);
        assert_eq!(f.draw("x"), g.draw("x"));
        // a different site gets an independent stream
        let h = SiteInjector::new(9);
        h.inject("y", (), Trigger::Always);
        assert_ne!(f.draw("x"), h.draw("y"));
    }
}

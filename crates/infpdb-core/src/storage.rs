//! Column-indexed materialization of a single instance.
//!
//! Query evaluation (in `infpdb-logic`) repeatedly asks "which tuples of
//! relation `R` have value `v` in column `c`?". [`InstanceStore`] answers
//! that in expected `O(1)` by materializing each relation's tuples once and
//! building per-column hash indexes.

use crate::fact::FactId;
use crate::instance::Instance;
use crate::interner::FactInterner;
use crate::schema::{RelId, Schema};
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};

/// Tuples of one relation plus per-column indexes.
#[derive(Debug, Clone, Default)]
struct RelationStore {
    /// Row-major tuples.
    rows: Vec<Vec<Value>>,
    /// `indexes[c][v]` = row numbers with value `v` in column `c`.
    indexes: Vec<HashMap<Value, Vec<usize>>>,
}

/// An instance materialized for query evaluation.
#[derive(Debug, Clone)]
pub struct InstanceStore {
    relations: Vec<RelationStore>,
    active_domain: BTreeSet<Value>,
    size: usize,
}

impl InstanceStore {
    /// Materializes `instance` (resolving ids through `interner`) against
    /// `schema`.
    pub fn build(instance: &Instance, interner: &FactInterner, schema: &Schema) -> Self {
        let mut relations: Vec<RelationStore> = (0..schema.len())
            .map(|i| {
                let arity = schema.relation(RelId(i as u32)).arity();
                RelationStore {
                    rows: Vec::new(),
                    indexes: vec![HashMap::new(); arity],
                }
            })
            .collect();
        let mut active_domain = BTreeSet::new();
        for id in instance.iter() {
            let fact = interner.resolve(id);
            let rel = &mut relations[fact.rel().0 as usize];
            let row_no = rel.rows.len();
            for (c, v) in fact.args().iter().enumerate() {
                rel.indexes[c].entry(v.clone()).or_default().push(row_no);
                active_domain.insert(v.clone());
            }
            rel.rows.push(fact.args().to_vec());
        }
        Self {
            relations,
            active_domain,
            size: instance.size(),
        }
    }

    /// Builds directly from ground facts (no interner needed).
    pub fn from_facts<'a>(
        facts: impl IntoIterator<Item = &'a crate::fact::Fact>,
        schema: &Schema,
    ) -> Self {
        let mut interner = FactInterner::new();
        let ids: Vec<FactId> = facts
            .into_iter()
            .map(|f| interner.intern(f.clone()))
            .collect();
        let instance = Instance::from_ids(ids);
        Self::build(&instance, &interner, schema)
    }

    /// All tuples of a relation.
    pub fn rows(&self, rel: RelId) -> &[Vec<Value>] {
        &self.relations[rel.0 as usize].rows
    }

    /// Row numbers of `rel` whose column `col` equals `v` (empty slice if
    /// none).
    pub fn rows_with(&self, rel: RelId, col: usize, v: &Value) -> &[usize] {
        self.relations[rel.0 as usize].indexes[col]
            .get(v)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether `rel` contains exactly the tuple `args`.
    pub fn contains_tuple(&self, rel: RelId, args: &[Value]) -> bool {
        let store = &self.relations[rel.0 as usize];
        if args.is_empty() {
            return !store.rows.is_empty();
        }
        // probe the most selective available column
        let candidates = store.indexes[0].get(&args[0]);
        match candidates {
            None => false,
            Some(rows) => rows.iter().any(|&r| store.rows[r] == args),
        }
    }

    /// The active domain of the instance.
    pub fn active_domain(&self) -> &BTreeSet<Value> {
        &self.active_domain
    }

    /// Number of facts in the instance.
    pub fn size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Fact;
    use crate::schema::Relation;

    fn setup() -> (Schema, FactInterner, Instance) {
        let schema =
            Schema::from_relations([Relation::new("R", 2), Relation::new("S", 1)]).unwrap();
        let r = schema.rel_id("R").unwrap();
        let s = schema.rel_id("S").unwrap();
        let mut interner = FactInterner::new();
        let ids = vec![
            interner.intern(Fact::new(r, [Value::int(1), Value::int(2)])),
            interner.intern(Fact::new(r, [Value::int(1), Value::int(3)])),
            interner.intern(Fact::new(r, [Value::int(2), Value::int(3)])),
            interner.intern(Fact::new(s, [Value::int(3)])),
        ];
        (schema, interner, Instance::from_ids(ids))
    }

    #[test]
    fn rows_materialized_per_relation() {
        let (schema, interner, inst) = setup();
        let store = InstanceStore::build(&inst, &interner, &schema);
        assert_eq!(store.rows(schema.rel_id("R").unwrap()).len(), 3);
        assert_eq!(store.rows(schema.rel_id("S").unwrap()).len(), 1);
        assert_eq!(store.size(), 4);
    }

    #[test]
    fn column_index_lookup() {
        let (schema, interner, inst) = setup();
        let store = InstanceStore::build(&inst, &interner, &schema);
        let r = schema.rel_id("R").unwrap();
        assert_eq!(store.rows_with(r, 0, &Value::int(1)).len(), 2);
        assert_eq!(store.rows_with(r, 1, &Value::int(3)).len(), 2);
        assert_eq!(store.rows_with(r, 0, &Value::int(9)).len(), 0);
    }

    #[test]
    fn contains_tuple_checks_exact_match() {
        let (schema, interner, inst) = setup();
        let store = InstanceStore::build(&inst, &interner, &schema);
        let r = schema.rel_id("R").unwrap();
        assert!(store.contains_tuple(r, &[Value::int(1), Value::int(2)]));
        assert!(!store.contains_tuple(r, &[Value::int(2), Value::int(1)]));
        let s = schema.rel_id("S").unwrap();
        assert!(store.contains_tuple(s, &[Value::int(3)]));
        assert!(!store.contains_tuple(s, &[Value::int(1)]));
    }

    #[test]
    fn active_domain_is_all_arguments() {
        let (schema, interner, inst) = setup();
        let store = InstanceStore::build(&inst, &interner, &schema);
        let dom: Vec<i64> = store
            .active_domain()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(dom, vec![1, 2, 3]);
    }

    #[test]
    fn from_facts_shortcut() {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        let r = schema.rel_id("R").unwrap();
        let facts = [Fact::new(r, [Value::int(1)]), Fact::new(r, [Value::int(2)])];
        let store = InstanceStore::from_facts(facts.iter(), &schema);
        assert_eq!(store.rows(r).len(), 2);
    }

    #[test]
    fn empty_instance_store() {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        let interner = FactInterner::new();
        let store = InstanceStore::build(&Instance::empty(), &interner, &schema);
        assert_eq!(store.rows(schema.rel_id("R").unwrap()).len(), 0);
        assert!(store.active_domain().is_empty());
        assert!(!store.contains_tuple(schema.rel_id("R").unwrap(), &[Value::int(1)]));
    }

    #[test]
    fn zero_arity_relation() {
        let schema = Schema::from_relations([Relation::new("P", 0)]).unwrap();
        let p = schema.rel_id("P").unwrap();
        let facts = [Fact::new(p, [])];
        let store = InstanceStore::from_facts(facts.iter(), &schema);
        assert!(store.contains_tuple(p, &[]));
        let empty = InstanceStore::from_facts(std::iter::empty(), &schema);
        assert!(!empty.contains_tuple(p, &[]));
    }
}

//! Minimal, dependency-free JSON encoding and decoding.
//!
//! The workspace is offline (no serde), but three subsystems need to
//! speak JSON: the HTTP body format of `infpdb-net`, the
//! `BENCH_*.json` artifacts of `infpdb-bench`, and the `infpdb shell`
//! REPL. This module is the one shared implementation: a [`Json`] value
//! tree, an escape-correct compact/pretty encoder, and a recursive
//! descent parser for the full JSON grammar (RFC 8259), including
//! `\uXXXX` escapes with surrogate pairs.
//!
//! Two properties matter to the callers:
//!
//! * **f64 round-trip fidelity.** Floats are rendered with Rust's
//!   shortest-round-trip `Display` and parsed with `str::parse::<f64>`,
//!   so `Json::Float(x).encode()` decodes back to a value bit-identical
//!   to `x`. The network layer's end-to-end "byte-identical probability
//!   estimates" check rests on this.
//! * **Object key order is preserved.** Objects are association vectors,
//!   not hash maps, so encoded artifacts are deterministic and diffable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent that fits `i64`.
    Int(i64),
    /// Any other number. Non-finite values encode as `null` (JSON has no
    /// NaN/Infinity).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Problem description.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` both read as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer view (`Int` only; floats are never silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (ordered `(key, value)` pairs).
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact encoding (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding with two-space indentation, for diffable
    /// checked-in artifacts.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                write!(out, "{n}").ok();
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // shortest representation that round-trips; integral
                    // floats keep a ".0" so they re-parse as Float
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(out, "{x:.1}").ok();
                    } else {
                        write!(out, "{x}").ok();
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(
                out,
                indent,
                depth,
                '[',
                ']',
                items.len(),
                |out, i, depth| {
                    items[i].write(out, indent, depth);
                },
            ),
            Json::Object(pairs) => write_seq(
                out,
                indent,
                depth,
                '{',
                '}',
                pairs.len(),
                |out, i, depth| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth);
                },
            ),
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).ok();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // high surrogate: a \uXXXX low surrogate
                                // must follow
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digits")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structure_and_key_order() {
        let doc = Json::obj([
            ("b", Json::Int(1)),
            (
                "a",
                Json::Array(vec![Json::Null, Json::Bool(true), Json::str("x")]),
            ),
            ("nested", Json::obj([("k", Json::Float(0.5))])),
        ]);
        let compact = doc.encode();
        assert_eq!(compact, r#"{"b":1,"a":[null,true,"x"],"nested":{"k":0.5}}"#);
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        let pretty = doc.encode_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
        assert!(pretty.contains("\n  \"b\": 1,"));
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for x in [
            0.1,
            1.0 / 3.0,
            0.7112119049570766,
            f64::MIN_POSITIVE,
            1e300,
            -2.5e-10,
            1.0,
            0.0,
        ] {
            let enc = Json::Float(x).encode();
            let back = Json::parse(&enc).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {enc}");
        }
        // non-finite encodes as null (JSON has no NaN)
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
        assert_eq!(Json::Float(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn integral_floats_stay_floats() {
        let enc = Json::Float(3.0).encode();
        assert_eq!(enc, "3.0");
        assert_eq!(Json::parse(&enc).unwrap(), Json::Float(3.0));
        // while integer-syntax numbers parse as Int
        assert_eq!(Json::parse("3").unwrap(), Json::Int(3));
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::Int(i64::MIN)
        );
        // integers beyond i64 fall back to Float
        assert!(matches!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote\" backslash\\ newline\n tab\t nul\u{0} unicode\u{1F600}émoji";
        let enc = Json::str(nasty).encode();
        assert_eq!(Json::parse(&enc).unwrap().as_str().unwrap(), nasty);
        // \u escapes including surrogate pairs parse
        let parsed = Json::parse(r#""\u0041\ud83d\ude00\u00e9""#).unwrap();
        assert_eq!(parsed.as_str().unwrap(), "A\u{1F600}é");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "1e",
            "\"unterminated",
            "\"\\u12",
            "\"\\ud800\"",
            "01",
            "{} trailing",
            "\"raw\u{01}control\"",
        ] {
            let r = Json::parse(bad);
            assert!(r.is_err(), "{bad:?} must fail, got {r:?}");
        }
        // a lone zero is still a fine number
        assert!(Json::parse("0").is_ok());
        assert!(Json::parse("0.25").is_ok());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"n": 2, "x": 2.5, "s": "hi", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_i64(), Some(2));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("x").unwrap().as_f64(), Some(2.5));
        assert_eq!(doc.get("x").unwrap().as_i64(), None);
        assert_eq!(doc.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(doc.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.as_object().unwrap().len(), 5);
    }
}

//! Countable universes with explicit enumerations.
//!
//! The paper fixes "an arbitrary (possibly uncountable) set U to be the
//! universe". All of its technical results (Sections 4–6) concern countable
//! PDBs, and Section 6 additionally assumes the universe is *computable* "so
//! that an algorithm can generate all facts". A [`Universe`] here is exactly
//! that: a countable set of [`Value`]s with a total enumeration
//! `0, 1, 2, … → U` and decidable membership.

use crate::value::Value;

/// A countable, computable universe of values.
///
/// Implementations must guarantee that [`enumerate`](Universe::enumerate) is
/// injective on its defined range, that it covers exactly the members, and
/// that [`contains`](Universe::contains) agrees with it.
pub trait Universe {
    /// Membership test.
    fn contains(&self, v: &Value) -> bool;

    /// The `i`-th element of the universe, or `None` if the universe is
    /// finite with fewer than `i + 1` elements.
    fn enumerate(&self, i: usize) -> Option<Value>;

    /// `Some(n)` if the universe is finite with exactly `n` elements.
    fn cardinality(&self) -> Option<usize> {
        None
    }

    /// Iterator over the whole universe in enumeration order. Infinite for
    /// infinite universes — combine with `take`.
    fn iter(&self) -> UniverseIter<'_, Self>
    where
        Self: Sized,
    {
        UniverseIter {
            universe: self,
            next: 0,
        }
    }
}

/// Iterator adapter over a universe's enumeration.
#[derive(Debug)]
pub struct UniverseIter<'a, U: Universe> {
    universe: &'a U,
    next: usize,
}

impl<U: Universe> Iterator for UniverseIter<'_, U> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        let v = self.universe.enumerate(self.next)?;
        self.next += 1;
        Some(v)
    }
}

/// The positive integers `ℕ = {1, 2, 3, …}` (the paper's convention).
#[derive(Debug, Clone, Copy, Default)]
pub struct Naturals;

impl Universe for Naturals {
    fn contains(&self, v: &Value) -> bool {
        matches!(v, Value::Int(n) if *n >= 1)
    }

    fn enumerate(&self, i: usize) -> Option<Value> {
        Some(Value::Int(i as i64 + 1))
    }
}

/// All integers `ℤ`, enumerated `0, 1, −1, 2, −2, …`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Integers;

impl Universe for Integers {
    fn contains(&self, v: &Value) -> bool {
        matches!(v, Value::Int(_))
    }

    fn enumerate(&self, i: usize) -> Option<Value> {
        let n = (i as i64 + 1) / 2;
        Some(Value::Int(if i % 2 == 1 { n } else { -n }))
    }
}

/// Binary strings `{0,1}*`, enumerated by length then lexicographically
/// (`ε, "0", "1", "00", …`) — the universe of Proposition 6.2.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryStrings;

impl Universe for BinaryStrings {
    fn contains(&self, v: &Value) -> bool {
        matches!(v, Value::Str(s) if s.chars().all(|c| c == '0' || c == '1'))
    }

    fn enumerate(&self, i: usize) -> Option<Value> {
        // index i ↦ the string whose ℕ-code (pairing module convention) is
        // i+1: binary representation of i+1 without the leading 1.
        Some(Value::str(infpdb_math::pairing::nat_to_string(
            i as u64 + 1,
        )))
    }
}

/// An explicit finite universe.
#[derive(Debug, Clone)]
pub struct FiniteUniverse {
    values: Vec<Value>,
}

impl FiniteUniverse {
    /// Builds a finite universe from distinct values (duplicates are
    /// removed, order of first occurrence kept).
    pub fn new(values: impl IntoIterator<Item = Value>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let values = values
            .into_iter()
            .filter(|v| seen.insert(v.clone()))
            .collect();
        Self { values }
    }

    /// The values in enumeration order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl Universe for FiniteUniverse {
    fn contains(&self, v: &Value) -> bool {
        self.values.contains(v)
    }

    fn enumerate(&self, i: usize) -> Option<Value> {
        self.values.get(i).cloned()
    }

    fn cardinality(&self) -> Option<usize> {
        Some(self.values.len())
    }
}

/// Disjoint union of two universes, enumerated by strict alternation (with
/// the convention of Example 2.4's `Σ* ∪ ℝ`: heterogeneous domains in one
/// universe). If one side is finite the enumeration continues through the
/// other alone.
#[derive(Debug, Clone)]
pub struct UnionUniverse<A, B> {
    left: A,
    right: B,
}

impl<A: Universe, B: Universe> UnionUniverse<A, B> {
    /// Creates the union. Callers are responsible for the two sides being
    /// disjoint (e.g. integers ∪ strings); membership is the disjunction.
    pub fn new(left: A, right: B) -> Self {
        Self { left, right }
    }
}

impl<A: Universe, B: Universe> Universe for UnionUniverse<A, B> {
    fn contains(&self, v: &Value) -> bool {
        self.left.contains(v) || self.right.contains(v)
    }

    fn enumerate(&self, i: usize) -> Option<Value> {
        let (la, lb) = (self.left.cardinality(), self.right.cardinality());
        match (la, lb) {
            (None, None) => {
                // strict alternation
                if i.is_multiple_of(2) {
                    self.left.enumerate(i / 2)
                } else {
                    self.right.enumerate(i / 2)
                }
            }
            (Some(n), _) => {
                // alternate while the finite side lasts, then continue right
                if i < 2 * n {
                    if i.is_multiple_of(2) {
                        self.left.enumerate(i / 2)
                    } else {
                        self.right.enumerate(i / 2)
                    }
                } else {
                    self.right.enumerate(i - n)
                }
            }
            (None, Some(m)) => {
                if i < 2 * m {
                    if i.is_multiple_of(2) {
                        self.left.enumerate(i / 2)
                    } else {
                        self.right.enumerate(i / 2)
                    }
                } else {
                    self.left.enumerate(i - m)
                }
            }
        }
    }

    fn cardinality(&self) -> Option<usize> {
        Some(self.left.cardinality()? + self.right.cardinality()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naturals_enumeration_and_membership() {
        let u = Naturals;
        assert_eq!(u.enumerate(0), Some(Value::int(1)));
        assert_eq!(u.enumerate(41), Some(Value::int(42)));
        assert!(u.contains(&Value::int(1)));
        assert!(!u.contains(&Value::int(0)));
        assert!(!u.contains(&Value::str("x")));
        assert_eq!(u.cardinality(), None);
    }

    #[test]
    fn integers_zigzag() {
        let u = Integers;
        let first: Vec<i64> = u.iter().take(5).map(|v| v.as_int().unwrap()).collect();
        assert_eq!(first, vec![0, 1, -1, 2, -2]);
        assert!(u.contains(&Value::int(-100)));
    }

    #[test]
    fn integers_enumeration_is_injective() {
        let u = Integers;
        let vals: Vec<Value> = u.iter().take(1000).collect();
        let set: std::collections::HashSet<_> = vals.iter().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn binary_strings_shortlex() {
        let u = BinaryStrings;
        let first: Vec<String> = u
            .iter()
            .take(7)
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        assert_eq!(first, vec!["", "0", "1", "00", "01", "10", "11"]);
        assert!(u.contains(&Value::str("0101")));
        assert!(!u.contains(&Value::str("012")));
        assert!(!u.contains(&Value::int(3)));
    }

    #[test]
    fn finite_universe_dedups_and_bounds() {
        let u = FiniteUniverse::new([Value::int(1), Value::int(2), Value::int(1)]);
        assert_eq!(u.cardinality(), Some(2));
        assert_eq!(u.enumerate(1), Some(Value::int(2)));
        assert_eq!(u.enumerate(2), None);
        assert!(u.contains(&Value::int(2)));
        assert!(!u.contains(&Value::int(3)));
        assert_eq!(u.values().len(), 2);
    }

    #[test]
    fn union_of_two_infinite_alternates() {
        let u = UnionUniverse::new(Naturals, BinaryStrings);
        let first: Vec<Value> = u.iter().take(4).collect();
        assert_eq!(
            first,
            vec![
                Value::int(1),
                Value::str(""),
                Value::int(2),
                Value::str("0")
            ]
        );
        assert!(u.contains(&Value::int(5)));
        assert!(u.contains(&Value::str("01")));
        assert!(!u.contains(&Value::int(0)));
        assert_eq!(u.cardinality(), None);
    }

    #[test]
    fn union_finite_left_falls_through_to_right() {
        let fin = FiniteUniverse::new([Value::str("A"), Value::str("B")]);
        let u = UnionUniverse::new(fin, Naturals);
        let first: Vec<Value> = u.iter().take(6).collect();
        assert_eq!(
            first,
            vec![
                Value::str("A"),
                Value::int(1),
                Value::str("B"),
                Value::int(2),
                Value::int(3),
                Value::int(4),
            ]
        );
    }

    #[test]
    fn union_finite_right_falls_through_to_left() {
        let fin = FiniteUniverse::new([Value::str("A")]);
        let u = UnionUniverse::new(Naturals, fin);
        let first: Vec<Value> = u.iter().take(4).collect();
        assert_eq!(
            first,
            vec![Value::int(1), Value::str("A"), Value::int(2), Value::int(3),]
        );
    }

    #[test]
    fn union_finite_both() {
        let a = FiniteUniverse::new([Value::int(1)]);
        let b = FiniteUniverse::new([Value::str("x"), Value::str("y")]);
        let u = UnionUniverse::new(a, b);
        assert_eq!(u.cardinality(), Some(3));
        let all: Vec<Value> = u.iter().collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn enumeration_agrees_with_membership() {
        // Every enumerated element is a member, for all universes.
        fn check<U: Universe>(u: &U, n: usize) {
            for v in u.iter().take(n) {
                assert!(u.contains(&v), "{v} enumerated but not a member");
            }
        }
        check(&Naturals, 100);
        check(&Integers, 100);
        check(&BinaryStrings, 100);
        check(&FiniteUniverse::new([Value::int(1), Value::str("a")]), 10);
        check(&UnionUniverse::new(Naturals, BinaryStrings), 100);
    }
}

//! Error types of the relational substrate.

use crate::schema::RelId;
use crate::value::Value;
use std::fmt;

/// Errors from schema, fact, and probability-space construction.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Relation name already in use in the schema.
    DuplicateRelation(String),
    /// Relation name is syntactically unacceptable (e.g. empty).
    BadRelationName(String),
    /// A `RelId` does not belong to the schema.
    UnknownRelation(RelId),
    /// A relation name could not be resolved.
    UnknownRelationName(String),
    /// A fact's argument count does not match its relation's arity.
    ArityMismatch {
        /// The relation's name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// A fact argument is not a member of the universe.
    ValueNotInUniverse(Value),
    /// A numeric probability error from the math layer.
    Math(infpdb_math::MathError),
    /// The probabilities of a discrete space do not sum to 1 (within
    /// tolerance).
    MassNotOne(f64),
    /// A discrete space needs at least one outcome.
    EmptySpace,
    /// Conditioning on an event of probability zero.
    ConditionOnNull,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateRelation(n) => write!(f, "duplicate relation name {n:?}"),
            CoreError::BadRelationName(n) => write!(f, "bad relation name {n:?}"),
            CoreError::UnknownRelation(id) => write!(f, "unknown relation id {id:?}"),
            CoreError::UnknownRelationName(n) => write!(f, "unknown relation {n:?}"),
            CoreError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation} has arity {expected} but got {got} arguments"
            ),
            CoreError::ValueNotInUniverse(v) => {
                write!(f, "value {v} is not an element of the universe")
            }
            CoreError::Math(e) => write!(f, "{e}"),
            CoreError::MassNotOne(m) => {
                write!(f, "probabilities sum to {m}, not 1")
            }
            CoreError::EmptySpace => write!(f, "a probability space needs a nonempty sample space"),
            CoreError::ConditionOnNull => {
                write!(f, "cannot condition on an event of probability 0")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<infpdb_math::MathError> for CoreError {
    fn from(e: infpdb_math::MathError) -> Self {
        CoreError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::DuplicateRelation("R".into())
            .to_string()
            .contains("duplicate"));
        assert!(CoreError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("arity 2"));
        assert!(CoreError::MassNotOne(0.7).to_string().contains("0.7"));
        assert!(CoreError::ConditionOnNull.to_string().contains("condition"));
        assert!(CoreError::EmptySpace.to_string().contains("nonempty"));
        assert!(CoreError::UnknownRelationName("Q".into())
            .to_string()
            .contains("Q"));
        assert!(CoreError::BadRelationName(String::new())
            .to_string()
            .contains("bad"));
        assert!(CoreError::UnknownRelation(RelId(3))
            .to_string()
            .contains("3"));
        assert!(CoreError::ValueNotInUniverse(Value::int(0))
            .to_string()
            .contains("universe"));
    }

    #[test]
    fn math_error_conversion_and_source() {
        use std::error::Error;
        let e: CoreError = infpdb_math::MathError::NotAProbability(2.0).into();
        assert!(matches!(e, CoreError::Math(_)));
        assert!(e.source().is_some());
        assert!(CoreError::EmptySpace.source().is_none());
    }
}

#![warn(missing_docs)]
//! Relational substrate for `infpdb`.
//!
//! Implements Sections 2.1 and 3 of Grohe & Lindner (PODS 2019): database
//! schemas, facts over a (possibly infinite) universe, finite instances,
//! and discrete probability spaces over instances — the sample spaces of
//! probabilistic databases.
//!
//! Design decisions (see DESIGN.md §3):
//!
//! * The universe `U` is a [`universe::Universe`] — a countable set of
//!   [`value::Value`]s with an explicit enumeration, mirroring the paper's
//!   convention that `U` "implicitly comes with a σ-algebra" which for
//!   countable `U` is the full power set.
//! * Facts `R(a₁,…,a_k)` are interned per-PDB into dense [`fact::FactId`]s;
//!   instances are sorted id-sets ([`instance::Instance`]) with set algebra,
//!   so the hot paths of inference never hash full tuples.
//! * [`space::DiscreteSpace`] is the generic countable probability space of
//!   Section 2.3, with pushforward measures implementing the view semantics
//!   `P′ = P ∘ V⁻¹` of Section 3.1 (equations (3)/(4)).
//! * [`event::Event`]s are the measurable sets the paper quantifies over:
//!   `E_f`, `E_F`, Boolean combinations, and size events `S_D ≥ n`.

pub mod error;
pub mod event;
pub mod fact;
pub mod faultsim;
pub mod fingerprint;
pub mod instance;
pub mod interner;
pub mod json;
pub mod schema;
pub mod size;
pub mod space;
pub mod storage;
pub mod universe;
pub mod value;

pub use error::CoreError;
pub use event::Event;
pub use fact::{Fact, FactId};
pub use instance::Instance;
pub use interner::FactInterner;
pub use json::{Json, JsonError};
pub use schema::{RelId, Relation, Schema};
pub use space::DiscreteSpace;
pub use storage::InstanceStore;
pub use universe::Universe;
pub use value::Value;

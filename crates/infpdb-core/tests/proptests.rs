//! Property-based tests for the relational substrate.

use infpdb_core::event::Event;
use infpdb_core::fact::FactId;
use infpdb_core::instance::Instance;
use infpdb_core::space::DiscreteSpace;
use infpdb_core::universe::{BinaryStrings, Integers, Naturals, Universe};
use infpdb_core::value::{Fixed, Value};
use proptest::prelude::*;

fn prob() -> impl Strategy<Value = f64> {
    (0u32..=1000).prop_map(|i| i as f64 / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fixed_ordering_agrees_with_f64_on_safe_range(
        m1 in -1_000_000i64..1_000_000, e1 in 0u8..4,
        m2 in -1_000_000i64..1_000_000, e2 in 0u8..4,
    ) {
        let a = Fixed::new(m1, e1);
        let b = Fixed::new(m2, e2);
        // within this range to_f64 is exact enough to compare
        let fa = a.to_f64();
        let fb = b.to_f64();
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        } else {
            prop_assert_eq!(a == b, true_eq(m1, e1, m2, e2));
        }
    }

    #[test]
    fn universe_enumerations_are_injective_and_members(
        which in 0usize..3,
        n in 1usize..300,
    ) {
        let check = |u: &dyn UniverseDyn, n: usize| {
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                let v = u.enumerate_dyn(i).expect("infinite universe");
                assert!(u.contains_dyn(&v), "{v} not a member");
                assert!(seen.insert(v), "duplicate at {i}");
            }
        };
        match which {
            0 => check(&Naturals, n),
            1 => check(&Integers, n),
            _ => check(&BinaryStrings, n),
        }
    }

    #[test]
    fn conditioning_renormalizes_any_space(
        ps in prop::collection::vec(prob(), 1..12),
        threshold in 0usize..12,
    ) {
        let total: f64 = ps.iter().sum();
        prop_assume!(total > 1e-6);
        let outcomes: Vec<(usize, f64)> = ps.iter().enumerate()
            .map(|(i, &p)| (i, p / total)).collect();
        let space = DiscreteSpace::new(outcomes).unwrap();
        let kept: f64 = space.prob_where(|&i| i >= threshold);
        if kept > 0.0 {
            let cond = space.condition(|&i| i >= threshold).unwrap();
            prop_assert!((cond.total_mass() - 1.0).abs() < 1e-9);
            for (i, _) in space.outcomes() {
                let expected = if *i >= threshold {
                    space.prob_outcome(i) / kept
                } else {
                    0.0
                };
                prop_assert!((cond.prob_outcome(i) - expected).abs() < 1e-9);
            }
        } else {
            prop_assert!(space.condition(|&i| i >= threshold).is_err());
        }
    }

    #[test]
    fn pushforward_and_product_preserve_mass(
        ps in prop::collection::vec(prob(), 1..10),
        qs in prop::collection::vec(prob(), 1..10),
    ) {
        let (tp, tq): (f64, f64) = (ps.iter().sum(), qs.iter().sum());
        prop_assume!(tp > 1e-6 && tq > 1e-6);
        let a = DiscreteSpace::new(
            ps.iter().enumerate().map(|(i, &p)| (i, p / tp)),
        ).unwrap();
        let b = DiscreteSpace::new(
            qs.iter().enumerate().map(|(i, &p)| (i, p / tq)),
        ).unwrap();
        let push = a.pushforward(|&i| i % 3);
        prop_assert!((push.total_mass() - 1.0).abs() < 1e-9);
        let prod = a.product(&b);
        prop_assert!((prod.total_mass() - 1.0).abs() < 1e-9);
        // product marginals recover the factors
        for (i, p) in a.outcomes() {
            let marginal = prod.prob_where(|(x, _)| x == i);
            prop_assert!((marginal - p).abs() < 1e-9);
        }
    }

    #[test]
    fn event_boolean_algebra_is_pointwise(
        xs in prop::collection::vec(0u32..30, 0..15),
        a in prop::collection::vec(0u32..30, 1..5),
        b in prop::collection::vec(0u32..30, 1..5),
    ) {
        let d = Instance::from_ids(xs.iter().map(|&i| FactId(i)));
        let ea = Event::any_of(a.iter().map(|&i| FactId(i)));
        let eb = Event::any_of(b.iter().map(|&i| FactId(i)));
        let va = ea.contains(&d);
        let vb = eb.contains(&d);
        prop_assert_eq!(ea.clone().and(eb.clone()).contains(&d), va && vb);
        prop_assert_eq!(ea.clone().or(eb.clone()).contains(&d), va || vb);
        prop_assert_eq!(ea.clone().not().contains(&d), !va);
        // support is exactly the mentioned ids
        let mut expected: Vec<FactId> = a.iter().chain(b.iter()).map(|&i| FactId(i)).collect();
        expected.sort();
        expected.dedup();
        prop_assert_eq!(ea.and(eb).support().unwrap(), expected);
    }

    #[test]
    fn instance_canonical_form_is_stable(xs in prop::collection::vec(0u32..100, 0..40)) {
        let a = Instance::from_ids(xs.iter().map(|&i| FactId(i)));
        // rebuilding from its own ids is the identity
        let b = Instance::from_ids(a.iter());
        prop_assert_eq!(&a, &b);
        // union with itself is the identity
        prop_assert_eq!(a.union(&a), b);
        // difference with itself is empty
        prop_assert!(a.difference(&a).is_empty());
    }
}

fn true_eq(m1: i64, e1: u8, m2: i64, e2: u8) -> bool {
    // exact rational comparison m1/10^e1 == m2/10^e2
    let lhs = m1 as i128 * 10i128.pow(e2 as u32);
    let rhs = m2 as i128 * 10i128.pow(e1 as u32);
    lhs == rhs
}

/// Object-safe shim over `Universe` for the enumeration test.
trait UniverseDyn {
    fn enumerate_dyn(&self, i: usize) -> Option<Value>;
    fn contains_dyn(&self, v: &Value) -> bool;
}

impl<U: Universe> UniverseDyn for U {
    fn enumerate_dyn(&self, i: usize) -> Option<Value> {
        self.enumerate(i)
    }
    fn contains_dyn(&self, v: &Value) -> bool {
        self.contains(v)
    }
}

//! E1 — Figure 1 / Proposition 6.1: the additive-ε guarantee of truncated
//! query evaluation.
//!
//! Prints the experiment rows (per series family and tolerance: estimate,
//! high-precision ground truth, observed error, certified ε, truncation
//! length n(ε)) and times the end-to-end evaluation.
//!
//! Paper-predicted shape: observed error ≤ ε everywhere; n(ε) grows
//! logarithmically for the geometric family and polynomially for ζ(2).

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_bench::{geometric_pdb, truth_exists_r, zeta_pdb};
use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_query::approx::approx_prob_boolean;

fn print_rows() {
    println!("\nE1: additive guarantee of Prop 6.1 (query: exists x. R(x))");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "series", "eps", "estimate", "truth", "|error|", "n(eps)"
    );
    for (name, pdb, truth_terms) in [
        ("geometric", geometric_pdb(), 2_000usize),
        ("zeta", zeta_pdb(), 3_000_000),
    ] {
        let truth = truth_exists_r(&pdb, truth_terms);
        let q = parse("exists x. R(x)", pdb.schema()).expect("query");
        for eps in [0.1, 0.03, 0.01, 0.003] {
            let a = approx_prob_boolean(&pdb, &q, eps, Engine::Auto).expect("approx");
            let err = (a.estimate - truth).abs();
            assert!(err <= eps, "guarantee violated: {err} > {eps}");
            println!(
                "{name:<10} {eps:>8} {:>10.6} {truth:>10.6} {err:>10.2e} {:>8}",
                a.estimate, a.n
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e1_truncation");
    group.sample_size(20);
    let gq = geometric_pdb();
    let q = parse("exists x. R(x)", gq.schema()).expect("query");
    group.bench_function("geometric_eps_0.01", |b| {
        b.iter(|| approx_prob_boolean(&gq, &q, 0.01, Engine::Auto).expect("approx"))
    });
    let zq = zeta_pdb();
    let q2 = parse("exists x. R(x)", zq.schema()).expect("query");
    group.bench_function("zeta_eps_0.1", |b| {
        b.iter(|| approx_prob_boolean(&zq, &q2, 0.1, Engine::Auto).expect("approx"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E14 — Section 3.1: view semantics `P′ = P ∘ V⁻¹` as pushforward
//! measures.
//!
//! Expected shape: pushforward mass is conserved; preimages merge; cost
//! scales with support size × per-world view evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::value::Value;
use infpdb_finite::TiTable;
use infpdb_logic::parse;
use infpdb_logic::view::{FoView, ViewDef};

fn setup(chain: i64) -> (TiTable, FoView) {
    let source = Schema::from_relations([Relation::new("E", 2)]).expect("schema");
    let target = Schema::from_relations([Relation::new("Hop2", 2)]).expect("schema");
    let e = source.rel_id("E").expect("E");
    // a probabilistic path 1 → 2 → … → chain
    let table = TiTable::from_facts(
        source.clone(),
        (1..chain).map(|i| {
            (
                Fact::new(e, [Value::int(i), Value::int(i + 1)]),
                0.5 + 0.4 * ((i % 3) as f64) / 3.0,
            )
        }),
    )
    .expect("table");
    let f = parse("exists z. E(x, z) /\\ E(z, y)", &source).expect("formula");
    let view = FoView::new(
        source,
        target.clone(),
        [ViewDef {
            target: target.rel_id("Hop2").expect("Hop2"),
            formula: f,
        }],
    )
    .expect("view");
    (table, view)
}

fn print_rows() {
    println!("\nE14: pushforward measure conservation (2-hop view on a path)");
    let (table, view) = setup(8);
    let worlds = table.worlds().expect("worlds");
    let (image, _interner) = view.pushforward(worlds.space(), table.interner());
    println!(
        "source support = {}, image support = {}, image mass = {:.9}",
        worlds.space().support_size(),
        image.support_size(),
        image.total_mass()
    );
    assert!((image.total_mass() - 1.0).abs() < 1e-9);
    assert!(image.support_size() <= worlds.space().support_size());
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e14_views");
    group.sample_size(10);
    for &chain in &[6i64, 9, 12] {
        let (table, view) = setup(chain);
        let worlds = table.worlds().expect("worlds");
        group.bench_with_input(BenchmarkId::new("pushforward", chain), &chain, |b, _| {
            b.iter(|| view.pushforward(worlds.space(), table.interner()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E11 — the Section 6 complexity remark: `n(ε)` is driven by the series'
//! convergence rate.
//!
//! Paper-predicted shape: `n(ε) = Θ(log(1/ε))` for geometric decay;
//! `n(ε) = Θ(1/ε)` for the ζ(2) family; "series in general may converge
//! arbitrarily slowly".

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_bench::{geometric_pdb, zeta_pdb};
use infpdb_query::budget::{n_of_eps_profile, plan};

fn print_rows() {
    println!("\nE11: n(eps) by series family");
    let eps = [0.3, 0.1, 0.03, 0.01, 0.003, 0.001];
    let g = geometric_pdb();
    let z = zeta_pdb();
    let gp = n_of_eps_profile(&g, &eps).expect("profile");
    let zp = n_of_eps_profile(&z, &eps).expect("profile");
    println!("{:>8} {:>12} {:>12}", "eps", "geometric n", "zeta n");
    for i in 0..eps.len() {
        println!("{:>8} {:>12} {:>12}", eps[i], gp[i].1, zp[i].1);
    }
    // growth-shape assertions: log vs polynomial
    assert!(gp[5].1 < 30);
    assert!(zp[5].1 > 50 * gp[5].1);
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e11_n_of_eps");
    group.sample_size(30);
    let g = geometric_pdb();
    let z = zeta_pdb();
    group.bench_function("plan_geometric_eps_1e-3", |b| {
        b.iter(|| plan(&g, 0.001).expect("plan"))
    });
    group.bench_function("plan_zeta_eps_1e-3", |b| {
        b.iter(|| plan(&z, 0.001).expect("plan"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E5 — Corollary 4.7 and Example 3.3: tuple-independent PDBs always have
//! finite expected size; general countable PDBs need not.
//!
//! Paper-predicted shape: t.i. expected-size enclosures converge to the
//! series total; the Example 3.3 partial expectations grow without bound
//! (roughly doubling per outcome).

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_bench::{geometric_pdb, zeta_pdb};
use infpdb_ti::counterexample::LazySizedPdb;

fn print_rows() {
    println!("\nE5: expected instance size (Corollary 4.7 vs Example 3.3)");
    for (name, pdb, prefix) in [
        ("geometric t.i.", geometric_pdb(), 64usize),
        ("zeta t.i.", zeta_pdb(), 100_000),
    ] {
        let (lo, hi) = pdb.expected_size_bounds(prefix).expect("bounds");
        println!("{name:<16} E(S) ∈ [{lo:.6}, {hi:.6}]  (finite, Cor 4.7)");
        assert!(hi.is_finite());
    }
    let ex = LazySizedPdb::example_3_3();
    println!("Example 3.3 partial E(S) by outcomes considered:");
    println!("{:>6} {:>16}", "N", "partial E(S)");
    for n in [5u64, 10, 20, 30, 40] {
        println!("{n:>6} {:>16.3e}", ex.partial_moment(1, n));
    }
    assert!(ex.partial_moment(1, 40) > ex.partial_moment(1, 20) * 1000.0);
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e5_size");
    group.sample_size(20);
    let pdb = geometric_pdb();
    group.bench_function("expected_size_bounds_10k", |b| {
        b.iter(|| pdb.expected_size_bounds(10_000).expect("bounds"))
    });
    let table = pdb.truncate(256).expect("table");
    group.bench_function("poisson_binomial_256", |b| {
        b.iter(|| table.size_distribution())
    });
    let ex = LazySizedPdb::example_3_3();
    group.bench_function("partial_moment_example_3_3", |b| {
        b.iter(|| ex.partial_moment(1, 40))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

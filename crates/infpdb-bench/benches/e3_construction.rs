//! E3 — Theorem 4.8 / Proposition 4.5: construction of countable t.i. PDBs
//! from convergent series; rejection of divergent ones; marginal recovery;
//! instance-probability throughput as the support grows.
//!
//! Paper-predicted shape: convergent inputs construct with marginals
//! recovered exactly; divergent inputs are rejected; instance-probability
//! cost grows linearly in the explicit cut.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infpdb_bench::{geometric_pdb, rfact, unary_schema};
use infpdb_core::schema::RelId;
use infpdb_math::series::HarmonicSeries;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;

fn print_rows() {
    println!("\nE3: Theorem 4.8 dichotomy and marginal recovery");
    let pdb = geometric_pdb();
    let mut worst = 0.0f64;
    for i in 0..1000 {
        let assigned = 0.5f64.powi(i as i32 + 1);
        worst = worst.max((pdb.marginal_at(i) - assigned).abs());
    }
    println!("max |realized − assigned| over 1000 marginals: {worst:.2e}");
    assert!(worst < 1e-15);
    let divergent = CountableTiPdb::new(FactSupply::unary_over_naturals(
        unary_schema(),
        RelId(0),
        HarmonicSeries::new(1.0).expect("series"),
    ));
    println!(
        "divergent (harmonic) input rejected: {}",
        divergent.is_err()
    );
    assert!(divergent.is_err());
    // instance probability interval width per refinement
    for refine in [0usize, 16, 64] {
        let enc = pdb
            .instance_prob(&[rfact(1), rfact(3)], refine, 100)
            .expect("interval");
        println!(
            "instance_prob refine={refine:<3} width = {:.2e}",
            enc.width()
        );
    }
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e3_construction");
    group.sample_size(20);
    let pdb = geometric_pdb();
    for &cut in &[100usize, 1_000, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("instance_prob_refine", cut),
            &cut,
            |b, &cut| b.iter(|| pdb.instance_prob(&[rfact(1)], cut, 100).expect("interval")),
        );
    }
    group.bench_function("truncate_1000", |b| {
        b.iter(|| pdb.truncate(1000).expect("table"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

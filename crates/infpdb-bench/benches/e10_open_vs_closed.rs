//! E10 — The introduction's motivating comparison and Remark 5.2: where
//! closed- and open-world semantics disagree, and by how much.
//!
//! Paper-predicted shape: unlisted facts move from exactly 0 to small
//! positive probabilities ranked by plausibility; listed facts and
//! original-only queries are unchanged; the λ-OpenPDB interval contains
//! the infinite completion's point value for monotone queries over the
//! finite universe.

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_bench::{rfact, unary_schema};
use infpdb_core::universe::FiniteUniverse;
use infpdb_core::value::Value;
use infpdb_finite::engine::{self, Engine};
use infpdb_finite::TiTable;
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;
use infpdb_openworld::closed_world::open_vs_closed_gap;
use infpdb_openworld::independent_facts::complete_ti_table;
use infpdb_openworld::LambdaCompletion;
use infpdb_query::approx::approx_prob_boolean;
use infpdb_ti::enumerator::FactSupply;

fn print_rows() {
    println!("\nE10: closed vs open vs λ-OpenPDB");
    let table =
        TiTable::from_facts(unary_schema(), [(rfact(1), 0.8), (rfact(2), 0.4)]).expect("table");
    let tail = FactSupply::from_fn(
        unary_schema(),
        |i| rfact(3 + i as i64),
        GeometricSeries::new(0.1, 0.5).expect("series"),
    );
    let open = complete_ti_table(&table, tail).expect("completion");

    println!("{:<10} {:>8} {:>10}", "fact", "closed", "open");
    for n in [1i64, 2, 3, 4, 8] {
        let (c, o) = open_vs_closed_gap(&table, &open, &rfact(n), 10_000);
        println!("R({n})       {c:>8.3} {o:>10.5}");
    }
    // ranking: nearer unlisted facts beat farther ones, all beat 0
    let (_, p3) = open_vs_closed_gap(&table, &open, &rfact(3), 10_000);
    let (_, p8) = open_vs_closed_gap(&table, &open, &rfact(8), 10_000);
    assert!(p3 > p8 && p8 > 0.0);

    // λ-OpenPDB over a finite universe {1..6} vs the infinite completion
    let uni = FiniteUniverse::new((1..=6).map(Value::int));
    let lam = LambdaCompletion::new(table.clone(), &uni, 0.1).expect("λ-completion");
    let q = parse("exists x. R(x)", &unary_schema()).expect("query");
    let iv = lam.prob_interval(&q).expect("interval");
    let a = approx_prob_boolean(&open, &q, 0.001, Engine::Auto).expect("approx");
    let closed = engine::prob_boolean(&q, &table, Engine::Auto).expect("prob");
    println!(
        "P(exists x. R(x)): closed = {closed:.5}, open = {:.5}, λ-interval = {iv}",
        a.estimate
    );
    assert!(a.estimate >= closed - 0.001);
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e10_open_vs_closed");
    group.sample_size(20);
    let table =
        TiTable::from_facts(unary_schema(), [(rfact(1), 0.8), (rfact(2), 0.4)]).expect("table");
    let q = parse("exists x. R(x)", &unary_schema()).expect("query");
    group.bench_function("closed_world_query", |b| {
        b.iter(|| engine::prob_boolean(&q, &table, Engine::Auto).expect("prob"))
    });
    let tail = FactSupply::from_fn(
        unary_schema(),
        |i| rfact(3 + i as i64),
        GeometricSeries::new(0.1, 0.5).expect("series"),
    );
    let open = complete_ti_table(&table, tail).expect("completion");
    group.bench_function("open_world_query_eps_0.01", |b| {
        b.iter(|| approx_prob_boolean(&open, &q, 0.01, Engine::Auto).expect("approx"))
    });
    let uni = FiniteUniverse::new((1..=6).map(Value::int));
    let lam = LambdaCompletion::new(table.clone(), &uni, 0.1).expect("λ");
    group.bench_function("lambda_interval_query", |b| {
        b.iter(|| lam.prob_interval(&q).expect("interval"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

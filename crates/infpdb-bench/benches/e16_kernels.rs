//! E16 — flat numeric kernels vs their scalar-loop predecessors
//! (DESIGN.md §13).
//!
//! The flat kernels split each log-space product into two passes over a
//! contiguous `f64` slice: a transcendental map (`ln` / `ln_1p`, the
//! gather/store loop the compiler can vectorize) followed by a
//! sequential Kahan–Babuška–Neumaier fold (a serial compensation chain
//! that cannot vectorize but is branch-free and cache-linear). The
//! split is what makes the result *bit-identical* to the old fused
//! per-element loop — same operations in the same order — while
//! exposing the map half to SIMD. This bench prints both shapes and
//! asserts the bit-identity it claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infpdb_math::flat;
use infpdb_math::KahanSum;

/// Deterministic probabilities in (0, 1), the shape the Shannon
/// var-product kernel sees (dense per-fact marginals).
fn probs(n: usize) -> Vec<f64> {
    let mut x = 0x9E37_79B9u64;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            0.05 + 0.9 * ((x >> 40) as f64 / (1u64 << 24) as f64)
        })
        .collect()
}

/// The pre-flat fused loop: one pass, `ln` and compensated add
/// interleaved per element. Kept here as the baseline under test.
fn fused_log_product(ps: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &p in ps {
        acc.add(p.ln());
    }
    acc.value().exp()
}

fn fused_log_product_one_minus(ps: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &p in ps {
        acc.add((-p).ln_1p());
    }
    1.0 - acc.value().exp()
}

fn print_rows() {
    println!("\nE16: flat (map + fold) vs fused log-product kernels");
    println!("bit-identity check at n = 1, 7, 4096, 10000:");
    let mut scratch = Vec::new();
    for n in [1usize, 7, flat::BLOCK, 10_000] {
        let ps = probs(n);
        let a = flat::log_product(&ps, &mut scratch);
        let b = fused_log_product(&ps);
        assert_eq!(a.to_bits(), b.to_bits(), "log_product diverged at n={n}");
        let a1 = flat::log_product_one_minus(&ps, &mut scratch);
        let b1 = fused_log_product_one_minus(&ps);
        assert_eq!(a1.to_bits(), b1.to_bits(), "one_minus diverged at n={n}");
        println!("  n={n:<6} prod={a:.12}  one-minus={a1:.12}  (bit-equal)");
    }
    println!(
        "note: the transcendental map half vectorizes (contiguous loads, \
         independent lanes); the Kahan fold half is a serial dependency \
         chain and does not — the split isolates the vectorizable part \
         without changing a single result bit."
    );
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e16_kernels");
    group.sample_size(20);
    for n in [256usize, 4096, 65_536] {
        let ps = probs(n);
        group.bench_with_input(BenchmarkId::new("fused_log_product", n), &ps, |b, ps| {
            b.iter(|| fused_log_product(ps))
        });
        group.bench_with_input(BenchmarkId::new("flat_log_product", n), &ps, |b, ps| {
            let mut scratch = Vec::with_capacity(flat::BLOCK);
            b.iter(|| flat::log_product(ps, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("flat_one_minus", n), &ps, |b, ps| {
            let mut scratch = Vec::with_capacity(flat::BLOCK);
            b.iter(|| flat::log_product_one_minus(ps, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("kahan_sum", n), &ps, |b, ps| {
            b.iter(|| flat::kahan_sum(ps))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

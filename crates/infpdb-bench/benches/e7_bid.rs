//! E7 — Theorem 4.15 / Proposition 4.13: countable b.i.d. PDBs.
//!
//! Paper-predicted shape: convergent block masses construct, divergent are
//! rejected; samples never violate block exclusivity; within-block
//! marginals and cross-block independence match analytic values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::space::rand_core::SplitMix64;
use infpdb_core::value::Value;
use infpdb_math::series::{GeometricSeries, HarmonicSeries};
use infpdb_ti::bid::{BlockSupply, CountableBidPdb};

fn schema() -> Schema {
    Schema::from_relations([Relation::new("KV", 2)]).expect("static schema")
}

fn kv(k: i64, v: i64) -> Fact {
    Fact::new(RelId(0), [Value::int(k), Value::int(v)])
}

fn supply(alts_per_block: i64) -> BlockSupply {
    BlockSupply::from_fn(
        schema(),
        move |i| {
            let m = 0.5f64.powi(i as i32 + 1);
            (0..alts_per_block)
                .map(|v| (kv(i as i64, v), m / alts_per_block as f64))
                .collect()
        },
        GeometricSeries::new(0.5, 0.5).expect("series"),
    )
}

fn print_rows() {
    println!("\nE7: Theorem 4.15 dichotomy and b.i.d. sampling");
    let pdb = CountableBidPdb::new(supply(2), 16).expect("convergent");
    println!(
        "convergent block masses: constructed, E(S) ≤ {:.4}",
        pdb.expected_size_bound()
    );
    let divergent = BlockSupply::from_fn(
        schema(),
        |i| vec![(kv(i as i64, 0), 1.0 / (i + 1) as f64)],
        HarmonicSeries::new(1.0).expect("series"),
    );
    let rejected = CountableBidPdb::new(divergent, 4).is_err();
    println!("divergent block masses rejected: {rejected}");
    assert!(rejected);

    let sampler = pdb.sampler(1e-4).expect("sampler");
    let mut rng = SplitMix64::new(77);
    let n = 30_000;
    let mut violations = 0usize;
    let mut first_block_hits = 0usize;
    let id_a = sampler.table().interner().get(&kv(0, 0)).expect("fact");
    let id_b = sampler.table().interner().get(&kv(0, 1)).expect("fact");
    for _ in 0..n {
        let d = sampler.sample(&mut rng);
        let (ha, hb) = (d.contains(id_a), d.contains(id_b));
        violations += (ha && hb) as usize;
        first_block_hits += (ha || hb) as usize;
    }
    println!(
        "block-exclusivity violations: {violations}/{n}; P(block 0 occupied) ≈ {:.4} (analytic 0.5)",
        first_block_hits as f64 / n as f64
    );
    assert_eq!(violations, 0);
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e7_bid");
    group.sample_size(20);
    for alts in [1i64, 4, 16] {
        let pdb = CountableBidPdb::new(supply(alts), 8).expect("pdb");
        let sampler = pdb.sampler(1e-4).expect("sampler");
        let mut rng = SplitMix64::new(5);
        group.bench_with_input(BenchmarkId::new("sample", alts), &alts, |b, _| {
            b.iter(|| sampler.sample(&mut rng))
        });
    }
    let pdb = CountableBidPdb::new(supply(2), 8).expect("pdb");
    group.bench_function("instance_prob", |b| {
        b.iter(|| {
            pdb.instance_prob(&[(0, kv(0, 0)), (3, kv(3, 1))])
                .expect("interval")
        })
    });
    group.bench_function("truncate_16_blocks", |b| {
        b.iter(|| pdb.truncate(16).expect("table"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

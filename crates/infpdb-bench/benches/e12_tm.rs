//! E12 — Proposition 6.2: Turing-machine-represented PDBs and the
//! multiplicative-inapproximability obstruction.
//!
//! Paper-predicted shape: `P(∃x R(x)) = 0` iff `L(N) = ∅`; the represented
//! PDB has weight 1; machines with empty languages are observationally
//! indistinguishable from non-halting ones on every finite prefix, so no
//! algorithm can return a multiplicative approximation — while the
//! additive intervals tighten geometrically.

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_tm::reduction::{has_r_witness, prefixes_agree, prob_exists_r};
use infpdb_tm::{RepresentedPdb, TuringMachine};

fn print_rows() {
    println!("\nE12: the Prop 6.2 dichotomy");
    println!(
        "{:<22} {:>10} {:>24}",
        "machine", "witness?", "P(exists R) interval"
    );
    let machines: Vec<(&str, TuringMachine)> = vec![
        ("rejects_all", TuringMachine::rejects_all()),
        ("loops_forever", TuringMachine::loops_forever()),
        ("accepts_all", TuringMachine::accepts_all()),
        ("accepts_only_empty", TuringMachine::accepts_only_empty()),
        ("needs_a_one", TuringMachine::accepts_strings_with_a_one()),
    ];
    for (name, m) in machines {
        let rep = RepresentedPdb::new(m);
        let w = has_r_witness(&rep, 200);
        let iv = prob_exists_r(&rep, 40).expect("interval");
        println!("{name:<22} {:>10} {:>24}", w.is_some(), iv.to_string());
        if w.is_none() {
            assert_eq!(iv.lo(), 0.0);
        } else {
            assert!(iv.lo() > 0.0);
        }
    }
    let empty = RepresentedPdb::new(TuringMachine::rejects_all());
    let looper = RepresentedPdb::new(TuringMachine::loops_forever());
    println!(
        "rejects_all vs loops_forever agree on first 200 facts: {}",
        prefixes_agree(&empty, &looper, 200)
    );
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e12_tm");
    group.sample_size(20);
    let rep = RepresentedPdb::new(TuringMachine::accepts_strings_with_a_one());
    group.bench_function("prob_exists_r_40_pairs", |b| {
        b.iter(|| prob_exists_r(&rep, 40).expect("interval"))
    });
    group.bench_function("witness_scan_200", |b| b.iter(|| has_r_witness(&rep, 200)));
    let supply = rep.supply();
    group.bench_function("fact_enumeration_100", |b| {
        b.iter(|| (0..100).map(|i| supply.fact(i)).collect::<Vec<_>>().len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E2 — Claim (∗) of Proposition 6.1: `∏(1−p_i) ≥ exp(−(3/2)∑p_i)` and its
//! tightness across series families.
//!
//! Paper-predicted shape: the inequality holds everywhere; the ratio
//! product/bound approaches 1 as the terms shrink (the bound is within
//! `e^{∑p²}`-ish slack) and is loosest for terms near 1/2.

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_math::products::{claim_star_sides, tail_product_one_minus};
use infpdb_math::series::{GeometricSeries, ZetaSeries};

fn print_rows() {
    println!("\nE2: claim (*) tightness: prod vs exp(-1.5*sum)");
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "series", "product", "bound", "ratio"
    );
    let series: Vec<(&str, Box<dyn infpdb_math::series::ProbSeries>)> = vec![
        (
            "geometric(0.45, 0.5)",
            Box::new(GeometricSeries::new(0.45, 0.5).expect("series")),
        ),
        (
            "geometric(0.10, 0.5)",
            Box::new(GeometricSeries::new(0.10, 0.5).expect("series")),
        ),
        (
            "geometric(0.01, 0.9)",
            Box::new(GeometricSeries::new(0.01, 0.9).expect("series")),
        ),
        ("zeta (basel)", Box::new(ZetaSeries::basel())),
    ];
    for (name, s) in &series {
        let (prod, bound) = claim_star_sides(&s.as_ref(), 5000);
        assert!(prod >= bound - 1e-12, "claim (*) violated for {name}");
        println!(
            "{name:<28} {prod:>12.8} {bound:>12.8} {:>8.4}",
            prod / bound
        );
    }
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e2_tail_bound");
    group.sample_size(30);
    let g = GeometricSeries::new(0.45, 0.5).expect("series");
    group.bench_function("claim_star_5000_terms", |b| {
        b.iter(|| claim_star_sides(&g, 5000))
    });
    let z = ZetaSeries::basel();
    group.bench_function("tail_product_interval_zeta", |b| {
        b.iter(|| tail_product_one_minus(&z, 10, 1000).expect("interval"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E6 — Proposition 4.9: the Example 3.3 PDB escapes every FO view of
//! every tuple-independent PDB.
//!
//! Paper-predicted shape: any such view obeys the size envelope
//! `E(S) ≤ k·E(S_C) + c` (finite by Corollary 4.7); the Example 3.3
//! partial expectations cross every finite envelope at a small outcome
//! index. Remark 4.10's refinement shows the same with finite mean but
//! divergent higher moments.

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_ti::counterexample::{fo_view_expected_size_bound, LazySizedPdb};

fn print_rows() {
    println!("\nE6: Prop 4.9 — outcomes needed to exceed FO-view envelopes");
    let ex = LazySizedPdb::example_3_3();
    println!(
        "{:>10} {:>10} {:>12} {:>16}",
        "k (arity)", "c", "E(S_C)", "crossed at N"
    );
    for (k, c, e_sc) in [(2usize, 0usize, 1.0), (5, 10, 100.0), (10, 100, 1e6)] {
        let bound = fo_view_expected_size_bound(k, c, e_sc);
        let mut n = 1u64;
        while ex.partial_moment(1, n) <= bound {
            n += 1;
        }
        println!("{k:>10} {c:>10} {e_sc:>12.1e} {n:>16}");
        assert!(n < 60);
    }
    println!("E6: Remark 4.10 (k = 2) moment dichotomy:");
    let r = LazySizedPdb::remark_4_10(2);
    println!(
        "E(S)  partials: {:.6} → {:.6} (converging)",
        r.partial_moment(1, 10_000),
        r.partial_moment(1, 100_000)
    );
    println!(
        "E(S²) partials: {:.3} → {:.3} (diverging)",
        r.partial_moment(2, 10_000),
        r.partial_moment(2, 100_000)
    );
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e6_definability");
    group.sample_size(20);
    let r = LazySizedPdb::remark_4_10(2);
    group.bench_function("partial_second_moment_100k", |b| {
        b.iter(|| r.partial_moment(2, 100_000))
    });
    let ex = LazySizedPdb::example_3_3();
    group.bench_function("truncate_example_3_3_12", |b| b.iter(|| ex.truncate(12)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E13 — substrate ablation: intensional (lineage+Shannon) vs extensional
//! (safe plan) vs Monte-Carlo vs brute-force on finite t.i. tables.
//!
//! Expected shape (classical finite-PDB theory): on hierarchical queries
//! the lifted engine scales polynomially and beats lineage as tables grow;
//! brute force explodes exponentially and is only usable on tiny tables;
//! Monte Carlo pays a large constant for tight tolerances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infpdb_bench::random_finite_table;
use infpdb_core::space::rand_core::SplitMix64;
use infpdb_finite::engine::{self, Engine};
use infpdb_finite::monte_carlo;
use infpdb_logic::parse;

const SAFE: &str = "exists x, y. R(x) /\\ S(x, y)";
const UNSAFE: &str = "exists x, y. R(x) /\\ S(x, y) /\\ T(y)";

fn print_rows() {
    println!("\nE13: engine agreement on a 14-fact table");
    let t = random_finite_table(14, 1);
    for qs in [SAFE, UNSAFE] {
        let q = parse(qs, t.schema()).expect("query");
        let lineage = engine::prob_boolean(&q, &t, Engine::Lineage).expect("lineage");
        let brute = engine::prob_boolean(&q, &t, Engine::Brute).expect("brute");
        let lifted = engine::prob_boolean(&q, &t, Engine::Lifted);
        let mut rng = SplitMix64::new(1);
        let mc = monte_carlo::estimate(&q, &t, 20_000, &mut rng).expect("mc");
        let mut rng_kl = SplitMix64::new(2);
        let kl = infpdb_finite::karp_luby::estimate_ucq(&q, &t, 40_000, 10_000, &mut rng_kl)
            .expect("monotone query");
        println!(
            "{qs:<44} lineage={lineage:.6} brute={brute:.6} lifted={} mc={:.4} kl={:.4}",
            lifted
                .map(|p| format!("{p:.6}"))
                .unwrap_or_else(|_| "unsafe".into()),
            mc.estimate,
            kl.estimate
        );
        assert!((lineage - brute).abs() < 1e-9);
        assert!((mc.estimate - brute).abs() < 0.02);
        assert!((kl.estimate - brute).abs() < 0.02 + 0.05 * brute);
    }
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e13_finite_engines");
    group.sample_size(10);
    for &n in &[10usize, 50, 200, 1000] {
        let t = random_finite_table(n, 777);
        let q_safe = parse(SAFE, t.schema()).expect("query");
        group.bench_with_input(BenchmarkId::new("lifted_safe", n), &n, |b, _| {
            b.iter(|| engine::prob_boolean(&q_safe, &t, Engine::Lifted).expect("prob"))
        });
        if n <= 200 {
            group.bench_with_input(BenchmarkId::new("lineage_safe", n), &n, |b, _| {
                b.iter(|| engine::prob_boolean(&q_safe, &t, Engine::Lineage).expect("prob"))
            });
        }
        if n <= 10 {
            // exact inference on the unsafe query is #P-hard; past ~10
            // facts on a dense domain the Shannon expansion blows up
            let q_unsafe = parse(UNSAFE, t.schema()).expect("query");
            group.bench_with_input(BenchmarkId::new("lineage_unsafe", n), &n, |b, _| {
                b.iter(|| engine::prob_boolean(&q_unsafe, &t, Engine::Lineage).expect("prob"))
            });
        }
        if n <= 10 {
            group.bench_with_input(BenchmarkId::new("brute", n), &n, |b, _| {
                b.iter(|| engine::prob_boolean(&q_safe, &t, Engine::Brute).expect("prob"))
            });
        }
    }
    let t = random_finite_table(200, 778);
    let q = parse(UNSAFE, t.schema()).expect("query");
    // Monte Carlo and Karp–Luby scale where exact intensional inference
    // cannot; KL additionally gives *relative* error (monotone queries)
    let mut rng = SplitMix64::new(2);
    group.bench_function("monte_carlo_2000_samples", |b| {
        b.iter(|| monte_carlo::estimate(&q, &t, 2000, &mut rng).expect("mc"))
    });
    let mut rng2 = SplitMix64::new(3);
    group.bench_function("karp_luby_2000_samples", |b| {
        b.iter(|| {
            infpdb_finite::karp_luby::estimate_ucq(&q, &t, 2000, 100_000, &mut rng2).expect("kl")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E4 — Lemmas 4.3/4.4: the constructed measure is a probability measure
//! (∑ P({D}) = 1) and the fact events are independent.
//!
//! Paper-predicted shape: the mass of all sub-instances of the first k
//! facts approaches 1 as k grows, at the rate of the escape probability;
//! empirical pairwise independence from the sampler matches the analytic
//! product within sampling noise.

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_bench::{geometric_pdb, rfact};
use infpdb_core::fact::FactId;
use infpdb_core::space::rand_core::SplitMix64;
use infpdb_ti::sampler::TruncatedSampler;

fn print_rows() {
    println!("\nE4: Lemma 4.3 — mass captured by instances within the first k facts");
    let pdb = geometric_pdb();
    println!("{:>4} {:>14} {:>14}", "k", "mass(2^k subs)", "1 - escape");
    for k in [2usize, 4, 8, 12] {
        let mut total = 0.0;
        for mask in 0u32..(1 << k) {
            let facts: Vec<_> = (0..k)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| rfact(i as i64 + 1))
                .collect();
            total += pdb
                .instance_prob(&facts, 32, 100)
                .expect("interval")
                .midpoint();
        }
        let floor = pdb.prob_within_prefix(k, 32).expect("interval").lo();
        println!("{k:>4} {total:>14.8} {floor:>14.8}");
        assert!(total <= 1.0 + 1e-6 && total >= floor - 1e-6);
    }

    println!("E4: Lemma 4.4 — empirical independence (60k samples)");
    let sampler = TruncatedSampler::new(&pdb, 1e-5).expect("sampler");
    let mut rng = SplitMix64::new(4242);
    let n = 60_000;
    let (mut c0, mut c1, mut cboth) = (0usize, 0usize, 0usize);
    for _ in 0..n {
        let d = sampler.sample(&mut rng);
        let h0 = d.contains(FactId(0));
        let h1 = d.contains(FactId(1));
        c0 += h0 as usize;
        c1 += h1 as usize;
        cboth += (h0 && h1) as usize;
    }
    let (f0, f1, fb) = (
        c0 as f64 / n as f64,
        c1 as f64 / n as f64,
        cboth as f64 / n as f64,
    );
    println!(
        "P(f0)={f0:.4} P(f1)={f1:.4} P(f0∧f1)={fb:.4} product={:.4}",
        f0 * f1
    );
    assert!((fb - f0 * f1).abs() < 0.01);
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e4_measure");
    group.sample_size(20);
    let pdb = geometric_pdb();
    let sampler = TruncatedSampler::new(&pdb, 1e-5).expect("sampler");
    let mut rng = SplitMix64::new(7);
    group.bench_function("sample_instance", |b| b.iter(|| sampler.sample(&mut rng)));
    group.bench_function("instance_prob_midpoint", |b| {
        b.iter(|| {
            pdb.instance_prob(&[rfact(1), rfact(2)], 32, 100)
                .expect("interval")
                .midpoint()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E8 — Theorem 5.5 and the completion condition (CC).
//!
//! Paper-predicted shape: conditioning the completion on the original
//! sample space recovers the original measure exactly (deviation at f64
//! noise level); completion construction and marginal lookups stay cheap
//! as the seed grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infpdb_bench::{rfact, unary_schema};
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_finite::{FinitePdb, TiTable};
use infpdb_math::series::GeometricSeries;
use infpdb_openworld::independent_facts::{complete_pdb, complete_ti_table};
use infpdb_ti::enumerator::FactSupply;

fn tail(offset: i64) -> FactSupply {
    FactSupply::from_fn(
        unary_schema(),
        move |i| rfact(offset + i as i64),
        GeometricSeries::new(0.3, 0.5).expect("series"),
    )
}

fn print_rows() {
    println!("\nE8: completion condition (CC) on random correlated seeds");
    let mut rng = SplitMix64::new(88);
    println!("{:>6} {:>14}", "seed#", "max |CC dev|");
    for trial in 0..5 {
        // random closed (powerset) space over 3 facts
        let mut masses: Vec<f64> = (0..8).map(|_| (rng.next_u64() % 1000 + 1) as f64).collect();
        let total: f64 = masses.iter().sum();
        masses.iter_mut().for_each(|m| *m /= total);
        let worlds: Vec<(Vec<_>, f64)> = (0..8u32)
            .map(|mask| {
                (
                    (0..3)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| rfact(i as i64))
                        .collect(),
                    masses[mask as usize],
                )
            })
            .collect();
        let original = FinitePdb::from_worlds(unary_schema(), worlds).expect("pdb");
        let completed = complete_pdb(original, tail(100)).expect("completion");
        let worst = completed.verify_cc(64, 1e-6).expect("CC holds");
        println!("{trial:>6} {worst:>14.2e}");
        assert!(worst < 1e-9);
    }
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e8_completion");
    group.sample_size(20);
    for &seed_facts in &[4usize, 16, 64] {
        let table = TiTable::from_facts(
            unary_schema(),
            (0..seed_facts).map(|i| (rfact(i as i64), 0.5)),
        )
        .expect("table");
        group.bench_with_input(
            BenchmarkId::new("complete_ti_table", seed_facts),
            &seed_facts,
            |b, _| b.iter(|| complete_ti_table(&table, tail(10_000)).expect("completion")),
        );
    }
    let table =
        TiTable::from_facts(unary_schema(), (0..16).map(|i| (rfact(i), 0.5))).expect("table");
    let open = complete_ti_table(&table, tail(10_000)).expect("completion");
    group.bench_function("tail_marginal_lookup", |b| {
        b.iter(|| open.marginal(&rfact(10_005), 100).expect("found"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E9 — Example 5.7 reproduced: the 4-row table completed with a
//! `2^{-i}`-style tail; "all finite Boolean combinations of distinct facts
//! have probability > 0" in the completion.

use criterion::{criterion_group, criterion_main, Criterion};
use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::value::Value;
use infpdb_finite::engine::Engine;
use infpdb_finite::TiTable;
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;
use infpdb_openworld::independent_facts::complete_ti_table;
use infpdb_query::approx::approx_prob_boolean;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;

fn example_5_7() -> (Schema, CountableTiPdb) {
    let schema = Schema::from_relations([Relation::new("R", 2)]).expect("schema");
    let r = schema.rel_id("R").expect("R");
    let row = |x: &str, i: i64| Fact::new(r, [Value::str(x), Value::int(i)]);
    let table = TiTable::from_facts(
        schema.clone(),
        [
            (row("A", 1), 0.8),
            (row("B", 1), 0.4),
            (row("B", 2), 0.5),
            (row("C", 3), 0.9),
        ],
    )
    .expect("table");
    let names = ["A", "B", "C", "D"];
    let skips = [0usize, 1, 5, 10];
    let tail = FactSupply::from_fn(
        schema.clone(),
        move |i| {
            let mut raw = i;
            for &s in &skips {
                if s <= raw {
                    raw += 1;
                }
            }
            Fact::new(
                r,
                [Value::str(names[raw % 4]), Value::int(raw as i64 / 4 + 1)],
            )
        },
        GeometricSeries::new(0.125, 0.5f64.powf(0.25)).expect("series"),
    );
    let open = complete_ti_table(&table, tail).expect("completion");
    (schema, open)
}

fn print_rows() {
    println!("\nE9: Example 5.7 — Boolean combinations of distinct facts are possible");
    let (schema, open) = example_5_7();
    let queries = [
        "R('A', 1) /\\ R('A', 2)",                // impossible closed-world
        "R('D', 7)",                              // entity D never listed
        "R('A', 1) /\\ !R('B', 1)",               // mixed polarity
        "R('D', 1) /\\ R('D', 2) /\\ !R('C', 3)", // all-new combination
    ];
    println!("{:<42} {:>12}", "query", "P ± 0.001");
    for qs in queries {
        let q = parse(qs, &schema).expect("query");
        let a = approx_prob_boolean(&open, &q, 0.001, Engine::Auto).expect("approx");
        println!("{qs:<42} {:>12.6}", a.estimate);
        assert!(a.estimate > 0.0, "{qs} must be possible in the completion");
    }
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e9_example57");
    group.sample_size(20);
    let (schema, open) = example_5_7();
    let q = parse("exists x, y. R(x, y)", &schema).expect("query");
    group.bench_function("exists_query_eps_0.01", |b| {
        b.iter(|| approx_prob_boolean(&open, &q, 0.01, Engine::Auto).expect("approx"))
    });
    let q2 = parse("R('A', 1) /\\ R('A', 2)", &schema).expect("query");
    group.bench_function("ground_conjunction_eps_0.001", |b| {
        b.iter(|| approx_prob_boolean(&open, &q2, 0.001, Engine::Auto).expect("approx"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! E15 — ablation of the numerics design choices DESIGN.md §3 commits to:
//! compensated summation, log-space instance probabilities, and certified
//! interval refinement.
//!
//! Expected shape: naive summation loses the tail of a long fact series
//! where Kahan keeps it; linear-space instance probabilities underflow to
//! an indistinguishable 0 where log-space preserves ordering; interval
//! width decays geometrically in the refinement depth at linear cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use infpdb_bench::geometric_pdb;
use infpdb_math::series::{GeometricSeries, ProbSeries};
use infpdb_math::KahanSum;

fn print_rows() {
    println!("\nE15a: naive vs compensated summation (geometric, 10^7 terms + 1.0 head)");
    // Summing 1.0 followed by many tiny terms: the classic mass-loss case.
    let tiny = 1e-16;
    let n = 10_000_000usize;
    let mut naive = 1.0f64;
    let mut kahan = KahanSum::with_value(1.0);
    for _ in 0..n {
        naive += tiny;
        kahan.add(tiny);
    }
    let expected = 1.0 + tiny * n as f64;
    println!(
        "expected {expected:.12}  naive {naive:.12}  kahan {:.12}",
        kahan.value()
    );
    assert_eq!(naive, 1.0, "naive summation should lose the tail entirely");
    assert!((kahan.value() - expected).abs() < 1e-12);

    println!("E15b: linear vs log-space instance probability (uniform p = 0.5, n facts)");
    let uniform = |n: usize| {
        infpdb_finite::TiTable::from_facts(
            infpdb_bench::unary_schema(),
            (0..n).map(|i| (infpdb_bench::rfact(i as i64), 0.5)),
        )
        .expect("table")
    };
    let empty = infpdb_core::instance::Instance::empty();
    for n in [100usize, 1000, 2000] {
        let table = uniform(n);
        let linear = table.instance_prob(&empty);
        let log = table.instance_logprob(&empty);
        println!("n={n:<6} linear={linear:.6e}  log-space ln={:.4}", log.ln());
    }
    // past ~1075 facts the linear form is exactly 0 and cannot rank
    // instances; the log form still can
    let table = uniform(2000);
    assert_eq!(table.instance_prob(&empty), 0.0, "honest linear underflow");
    let l0 = table.instance_logprob(&empty);
    let l1 = table.instance_logprob(&infpdb_core::instance::Instance::from_ids([
        infpdb_core::fact::FactId(0),
    ]));
    assert!((l0.ln() - l1.ln()).abs() < 1e-9, "p = 0.5 either way");
    assert!(l0.ln().is_finite());

    let pdb = geometric_pdb();

    println!("E15c: interval width vs refinement (instance probability, geometric)");
    for refine in [0usize, 8, 32, 128] {
        let enc = pdb
            .instance_prob(&[infpdb_bench::rfact(1)], refine, 10)
            .expect("interval");
        println!("refine={refine:<4} width = {:.3e}", enc.width());
    }
}

fn bench(c: &mut Criterion) {
    print_rows();
    let mut group = c.benchmark_group("e15_numerics");
    group.sample_size(20);
    let terms: Vec<f64> = {
        let g = GeometricSeries::new(0.5, 0.999).expect("series");
        (0..100_000).map(|i| g.term(i)).collect()
    };
    group.bench_function("naive_sum_100k", |b| {
        b.iter(|| terms.iter().copied().sum::<f64>())
    });
    group.bench_function("kahan_sum_100k", |b| {
        b.iter(|| KahanSum::sum_iter(terms.iter().copied()))
    });
    let pdb = geometric_pdb();
    let table = pdb.truncate(2000).expect("table");
    let empty = infpdb_core::instance::Instance::empty();
    group.bench_function("instance_logprob_2000", |b| {
        b.iter(|| table.instance_logprob(&empty))
    });
    for refine in [0usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("interval_refine", refine),
            &refine,
            |b, &r| {
                b.iter(|| {
                    pdb.instance_prob(&[infpdb_bench::rfact(1)], r, 10)
                        .expect("ok")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

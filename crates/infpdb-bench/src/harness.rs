//! The reproducible perf harness behind `infpdb bench`.
//!
//! Times the Proposition 6.1 hot path — grounding, Shannon expansion,
//! and end-to-end `approx_prob_boolean` — on the geometric, zeta, and
//! blocks PDBs at ε ∈ {1e-2, 1e-3, 1e-4}, for either lineage
//! implementation:
//!
//! * `tree` — the boxed-tree reference engine
//!   ([`infpdb_finite::lineage::lineage_of`] +
//!   [`infpdb_finite::shannon::probability`]), i.e. the pre-arena code
//!   path, kept as the differential baseline;
//! * `arena` — the hash-consed production engine
//!   ([`infpdb_finite::lineage::lineage_of_arena`] +
//!   [`infpdb_finite::shannon::probability_dag`]).
//!
//! The output is a stable JSON artifact (`BENCH_<iso-date>.json`, see
//! [`to_json`]) recording per-cell median ns/op, the Shannon memo hit
//! rate, and the arena node count, so the perf trajectory stays
//! trackable (and optimisation claims falsifiable) across PRs.
//! EXPERIMENTS.md §Perf records the checked-in before/after pair.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use infpdb_core::json::Json;
use infpdb_finite::arena::LineageArena;
use infpdb_finite::engine::Engine;
use infpdb_finite::lineage::{lineage_of, lineage_of_arena};
use infpdb_finite::shannon;
use infpdb_logic::ast::Formula;
use infpdb_logic::parse;
use infpdb_query::approx::approx_prob_boolean_par;
use infpdb_query::cancel::CancelToken;
use infpdb_query::prepared::{PreparedPdb, PreparedQuery};
use infpdb_query::truncate::TruncationPlan;
use infpdb_ti::construction::CountableTiPdb;

use crate::planner::PlannerRow;
use crate::saturation::SaturationRow;
use crate::{blocks_pdb, geometric_pdb, zeta_pdb};

/// The tolerances every workload is measured at.
pub const DEFAULT_EPS: [f64; 3] = [1e-2, 1e-3, 1e-4];

/// Which lineage implementation a run measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImplKind {
    /// Boxed-tree reference engine (the pre-arena code path).
    Tree,
    /// Hash-consed arena + DAG Shannon engine (the production path).
    Arena,
}

impl ImplKind {
    /// The name used in CLI flags and the JSON artifact.
    pub fn name(self) -> &'static str {
        match self {
            ImplKind::Tree => "tree",
            ImplKind::Arena => "arena",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tree" => Some(ImplKind::Tree),
            "arena" => Some(ImplKind::Arena),
            _ => None,
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Which engine to measure.
    pub impl_kind: ImplKind,
    /// Smoke mode: one iteration per cell, no warmup — just enough to
    /// keep the harness green in CI.
    pub smoke: bool,
    /// The ε grid (defaults to [`DEFAULT_EPS`]).
    pub eps: Vec<f64>,
    /// Minimum executions timed in the repeat-query (`prepared`) stage —
    /// the prefix is grounded once outside the timer, then the query is
    /// re-executed at least this many times (`infpdb bench --repeats`).
    pub repeats: usize,
    /// Intra-query thread budget for the arena engine's Shannon, e2e,
    /// and prepared stages (`infpdb bench --threads`). Estimates are
    /// bit-for-bit identical at every value; `1` stays sequential. The
    /// tree engine ignores this and always runs sequentially.
    pub threads: usize,
}

/// Default repeat count for the `prepared` stage.
pub const DEFAULT_REPEATS: usize = 8;

impl BenchConfig {
    /// The standard configuration for `infpdb bench`.
    pub fn new(impl_kind: ImplKind, smoke: bool) -> Self {
        Self {
            impl_kind,
            smoke,
            eps: DEFAULT_EPS.to_vec(),
            repeats: DEFAULT_REPEATS,
            threads: 1,
        }
    }
}

/// One measured cell: `(workload, query, stage, ε)` → timing + engine
/// statistics.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// PDB fixture: `"geometric"`, `"zeta"`, or `"blocks"`.
    pub workload: &'static str,
    /// Query shape: `"exists"`, `"pair"`, or `"pairs2"`.
    pub query: &'static str,
    /// `"ground"`, `"shannon"`, `"e2e"`, or `"prepared"` (repeat-query
    /// execution against a pre-grounded prefix).
    pub stage: &'static str,
    /// Tolerance the truncation was planned for.
    pub eps: f64,
    /// Intra-query thread budget the row was measured at.
    pub threads: usize,
    /// `n(ε)`: the truncated prefix length.
    pub n: usize,
    /// Timed iterations behind the median.
    pub iters: usize,
    /// Median wall-clock nanoseconds per operation.
    pub median_ns: u64,
    /// The probability the stage computes (sanity anchor; identical
    /// across implementations by the equivalence tests).
    pub estimate: f64,
    /// Shannon memo hits / (hits + expansions + decompositions), from
    /// an untimed probe. `None` for ground-only rows.
    pub memo_hit_rate: Option<f64>,
    /// Interned arena nodes after the stage (tree rows report the tree
    /// node count for `ground`, `None` elsewhere).
    pub arena_nodes: Option<usize>,
}

/// A full harness run: the rows plus the provenance needed to compare
/// artifacts across PRs.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Which engine was measured.
    pub impl_kind: ImplKind,
    /// Whether smoke mode was on.
    pub smoke: bool,
    /// UTC date of the run (`YYYY-MM-DD`).
    pub date: String,
    /// One row per `(workload, query, stage, ε)` cell.
    pub rows: Vec<BenchRow>,
    /// Aggregate-throughput rows from the saturation stage (one per
    /// `(scheduler, pool threads)` cell); empty when the stage was
    /// skipped. Kept in a separate array so the `rows` matrix is
    /// byte-comparable with schema `/2` artifacts.
    pub saturation: Vec<SaturationRow>,
    /// Cost-based planner crossover rows (one per planner-stage cell);
    /// empty when the stage was skipped. Like `saturation`, a separate
    /// array so older artifacts stay comparable row for row.
    pub planner: Vec<PlannerRow>,
}

/// Iteration policy for one measurement (shared with the planner
/// stage).
#[derive(Debug, Clone, Copy)]
pub(crate) struct IterPolicy {
    warmup: bool,
    min_iters: usize,
    max_iters: usize,
    budget: Duration,
}

impl IterPolicy {
    fn for_config(cfg: &BenchConfig) -> Self {
        Self::for_smoke(cfg.smoke)
    }

    pub(crate) fn for_smoke(smoke: bool) -> Self {
        if smoke {
            Self {
                warmup: false,
                min_iters: 1,
                max_iters: 1,
                budget: Duration::ZERO,
            }
        } else {
            Self {
                warmup: true,
                min_iters: 5,
                max_iters: 400,
                budget: Duration::from_millis(300),
            }
        }
    }
}

/// Runs `op` under the iteration policy; `setup` produces per-iteration
/// state *outside* the timed window (the arena Shannon stage needs a
/// freshly grounded arena per iteration, because DAG evaluation interns
/// cofactors and a reused arena would answer later iterations from the
/// interning table). Returns `(median_ns, iters)`.
pub(crate) fn run_timed<S>(
    policy: IterPolicy,
    mut setup: impl FnMut() -> S,
    mut op: impl FnMut(S),
) -> (u64, usize) {
    if policy.warmup {
        op(setup());
    }
    let mut samples: Vec<u64> = Vec::new();
    let started = Instant::now();
    loop {
        let state = setup();
        let t = Instant::now();
        op(state);
        let ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        samples.push(ns);
        let done_min = samples.len() >= policy.min_iters;
        if samples.len() >= policy.max_iters || (done_min && started.elapsed() >= policy.budget) {
            break;
        }
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], samples.len())
}

/// One workload: a PDB fixture and a query over it.
struct Workload {
    pdb_name: &'static str,
    query_name: &'static str,
    query_text: &'static str,
    pdb: CountableTiPdb,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            pdb_name: "geometric",
            query_name: "exists",
            query_text: "exists x. R(x)",
            pdb: geometric_pdb(),
        },
        // the memo-heavy regime: C(n,2) clauses sharing all their
        // conjuncts pairwise, where hash-consing pays off
        Workload {
            pdb_name: "geometric",
            query_name: "pair",
            query_text: "exists x, y. R(x) /\\ R(y) /\\ x != y",
            pdb: geometric_pdb(),
        },
        // slow decay: n(1e-4) ≈ 9000, stressing grounding + component
        // decomposition width (the pair query over ~9000 facts would
        // ground ~40M clauses, so zeta only runs the unary query)
        Workload {
            pdb_name: "zeta",
            query_name: "exists",
            query_text: "exists x. R(x)",
            pdb: zeta_pdb(),
        },
        // two var-disjoint pair queries: the root And splits into two
        // independent components wide enough for the parallel evaluator
        // to fork (the other workloads are single-component or all-Var
        // and stay on the sequential path at any thread count)
        Workload {
            pdb_name: "blocks",
            query_name: "pairs2",
            query_text: "(exists x, y. A(x) /\\ A(y) /\\ x != y) \
                         /\\ (exists x, y. B(x) /\\ B(y) /\\ x != y)",
            pdb: blocks_pdb(),
        },
    ]
}

/// Untimed probe of one cell: probability, Shannon statistics, and node
/// counts, recorded once and attached to the cell's rows.
struct Probe {
    estimate: f64,
    memo_hit_rate: f64,
    ground_nodes: usize,
    eval_nodes: Option<usize>,
}

fn probe_cell(
    impl_kind: ImplKind,
    query: &Formula,
    table: &infpdb_finite::TiTable,
) -> Result<Probe, String> {
    let probs = |id| table.prob(id);
    match impl_kind {
        ImplKind::Tree => {
            let l = lineage_of(query, table).map_err(|e| e.to_string())?;
            let (p, stats) = shannon::probability_with_stats(&l, &probs);
            Ok(Probe {
                estimate: p,
                memo_hit_rate: hit_rate(&stats),
                ground_nodes: l.size(),
                eval_nodes: None,
            })
        }
        ImplKind::Arena => {
            let mut arena = LineageArena::new();
            let root = lineage_of_arena(query, table, &mut arena).map_err(|e| e.to_string())?;
            let ground_nodes = arena.len();
            let (p, stats) = shannon::probability_dag_with_stats(&mut arena, root, &probs);
            Ok(Probe {
                estimate: p,
                memo_hit_rate: hit_rate(&stats),
                ground_nodes,
                eval_nodes: Some(arena.len()),
            })
        }
    }
}

fn hit_rate(stats: &shannon::Stats) -> f64 {
    let probes = stats.cache_hits + stats.expansions + stats.decompositions;
    if probes == 0 {
        0.0
    } else {
        stats.cache_hits as f64 / probes as f64
    }
}

/// Runs the full workload × ε × stage matrix for one engine.
pub fn run(config: &BenchConfig) -> Result<BenchReport, String> {
    let policy = IterPolicy::for_config(config);
    let threads = config.threads.max(1);
    let par_policy = shannon::ParallelPolicy::with_threads(threads);
    let mut rows = Vec::new();
    for w in workloads() {
        let query = parse(w.query_text, w.pdb.schema()).map_err(|e| e.to_string())?;
        for &eps in &config.eps {
            let plan = TruncationPlan::new(&w.pdb, eps).map_err(|e| e.to_string())?;
            let table = &plan.table;
            let n = plan.n();
            let probe = probe_cell(config.impl_kind, &query, table)?;
            let probs = |id| table.prob(id);

            // stage 1: grounding (query → lineage over Ω_n)
            let (median_ns, iters) = match config.impl_kind {
                ImplKind::Tree => run_timed(
                    policy,
                    || (),
                    |()| {
                        black_box(lineage_of(&query, table).expect("probed"));
                    },
                ),
                ImplKind::Arena => run_timed(
                    policy,
                    || (),
                    |()| {
                        let mut arena = LineageArena::new();
                        black_box(lineage_of_arena(&query, table, &mut arena).expect("probed"));
                    },
                ),
            };
            rows.push(BenchRow {
                workload: w.pdb_name,
                query: w.query_name,
                stage: "ground",
                eps,
                threads,
                n,
                iters,
                median_ns,
                estimate: probe.estimate,
                memo_hit_rate: None,
                arena_nodes: Some(probe.ground_nodes),
            });

            // stage 2: Shannon expansion (grounding outside the timer)
            let (median_ns, iters) = match config.impl_kind {
                ImplKind::Tree => {
                    let l = lineage_of(&query, table).expect("probed");
                    run_timed(
                        policy,
                        || (),
                        |()| {
                            black_box(shannon::probability_with_stats(&l, &probs));
                        },
                    )
                }
                ImplKind::Arena => run_timed(
                    policy,
                    || {
                        let mut arena = LineageArena::new();
                        let root = lineage_of_arena(&query, table, &mut arena).expect("probed");
                        (arena, root)
                    },
                    |(mut arena, root)| {
                        if threads >= 2 {
                            black_box(shannon::probability_dag_parallel(
                                &mut arena, root, &probs, par_policy,
                            ));
                        } else {
                            black_box(shannon::probability_dag_with_stats(
                                &mut arena, root, &probs,
                            ));
                        }
                    },
                ),
            };
            rows.push(BenchRow {
                workload: w.pdb_name,
                query: w.query_name,
                stage: "shannon",
                eps,
                threads,
                n,
                iters,
                median_ns,
                estimate: probe.estimate,
                memo_hit_rate: Some(probe.memo_hit_rate),
                arena_nodes: probe.eval_nodes,
            });

            // stage 3: end-to-end approx_prob_boolean (truncation
            // planning + grounding + Shannon, all inside the timer)
            let (median_ns, iters) = match config.impl_kind {
                ImplKind::Tree => run_timed(
                    policy,
                    || (),
                    |()| {
                        let plan = TruncationPlan::new(&w.pdb, eps).expect("probed");
                        let l = lineage_of(&query, &plan.table).expect("probed");
                        black_box(shannon::probability(&l, &|id| plan.table.prob(id)));
                    },
                ),
                ImplKind::Arena => run_timed(
                    policy,
                    || (),
                    |()| {
                        black_box(
                            approx_prob_boolean_par(&w.pdb, &query, eps, Engine::Lineage, threads)
                                .expect("probed"),
                        );
                    },
                ),
            };
            rows.push(BenchRow {
                workload: w.pdb_name,
                query: w.query_name,
                stage: "e2e",
                eps,
                threads,
                n,
                iters,
                median_ns,
                estimate: probe.estimate,
                memo_hit_rate: Some(probe.memo_hit_rate),
                arena_nodes: probe.eval_nodes,
            });

            // stage 4: repeat-query execution. The prefix is grounded
            // ONCE outside the timer (the prepare phase); each timed
            // iteration re-executes the same query against the memoized
            // snapshot, so the stage isolates what a plan-cache-hit
            // execution costs once grounding is amortized. Compare
            // against the `e2e` row of the same cell.
            let mut repeat_policy = policy;
            repeat_policy.min_iters = repeat_policy.min_iters.max(config.repeats);
            let (median_ns, iters) = match config.impl_kind {
                // the tree engine predates the prepared pipeline; its
                // repeat-query analogue reuses the grounded table and
                // re-runs lineage + Shannon per iteration
                ImplKind::Tree => run_timed(
                    repeat_policy,
                    || (),
                    |()| {
                        let l = lineage_of(&query, table).expect("probed");
                        black_box(shannon::probability(&l, &probs));
                    },
                ),
                ImplKind::Arena => {
                    let prepared = PreparedPdb::new(w.pdb.clone());
                    let pq = PreparedQuery::prepare(prepared, &query, Engine::Lineage)
                        .with_parallelism(threads);
                    let token = CancelToken::new();
                    pq.execute(eps, &token).expect("probed"); // prepare: grounds once
                    run_timed(
                        repeat_policy,
                        || (),
                        |()| {
                            black_box(pq.execute(eps, &token).expect("probed"));
                        },
                    )
                }
            };
            rows.push(BenchRow {
                workload: w.pdb_name,
                query: w.query_name,
                stage: "prepared",
                eps,
                threads,
                n,
                iters,
                median_ns,
                estimate: probe.estimate,
                memo_hit_rate: Some(probe.memo_hit_rate),
                arena_nodes: probe.eval_nodes,
            });
        }
    }
    Ok(BenchReport {
        impl_kind: config.impl_kind,
        smoke: config.smoke,
        date: iso_date_utc(),
        rows,
        saturation: Vec::new(),
        planner: Vec::new(),
    })
}

/// Renders the report as the `BENCH_<iso-date>.json` artifact.
///
/// Built on the shared [`infpdb_core::json`] encoder (the workspace is
/// offline; no serde): the schema is
/// `{"schema":"infpdb-bench/4","date":…,"impl":…,"smoke":…,"rows":[…],
/// "saturation":[…],"planner":[…]}` with one object per [`BenchRow`] /
/// [`SaturationRow`] / [`PlannerRow`]; absent statistics are `null`.
/// Schema `/2` added the per-row `threads` field (intra-query thread
/// budget); `/1` rows are `/2` rows with an implicit `threads = 1`.
/// Schema `/3` added the top-level `saturation` array (aggregate
/// queries/sec per scheduler × pool size); `/4` adds the top-level
/// `planner` array (the cost-based optimizer's crossover cells, each
/// with the Auto plan's choice and every forced-strategy baseline).
/// The `rows` matrix is unchanged since `/2`.
pub fn to_json(report: &BenchReport) -> String {
    let rows = report
        .rows
        .iter()
        .map(|r| {
            Json::obj([
                ("workload", Json::str(r.workload)),
                ("query", Json::str(r.query)),
                ("stage", Json::str(r.stage)),
                ("eps", Json::Float(r.eps)),
                ("threads", Json::Int(r.threads as i64)),
                ("n", Json::Int(r.n as i64)),
                ("iters", Json::Int(r.iters as i64)),
                ("median_ns", Json::Int(r.median_ns as i64)),
                ("estimate", Json::Float(r.estimate)),
                (
                    "memo_hit_rate",
                    r.memo_hit_rate.map(Json::Float).unwrap_or(Json::Null),
                ),
                (
                    "arena_nodes",
                    r.arena_nodes
                        .map(|v| Json::Int(v as i64))
                        .unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    let planner = report
        .planner
        .iter()
        .map(|r| {
            let forced = r
                .forced
                .iter()
                .map(|f| {
                    Json::obj([
                        ("strategy", Json::str(f.strategy)),
                        ("cost", f.cost.map(Json::Float).unwrap_or(Json::Null)),
                        (
                            "median_ns",
                            f.median_ns
                                .map(|v| Json::Int(v as i64))
                                .unwrap_or(Json::Null),
                        ),
                        ("iters", Json::Int(f.iters as i64)),
                        (
                            "estimate",
                            f.estimate.map(Json::Float).unwrap_or(Json::Null),
                        ),
                        ("skipped", Json::Bool(f.skipped)),
                    ])
                })
                .collect();
            Json::obj([
                ("cell", Json::str(r.cell)),
                ("query", Json::str(r.query)),
                ("eps", Json::Float(r.eps)),
                ("n_eval", Json::Int(r.n_eval as i64)),
                ("chosen", Json::str(r.chosen)),
                ("auto_cost", Json::Float(r.auto_cost)),
                ("auto_median_ns", Json::Int(r.auto_median_ns as i64)),
                ("auto_iters", Json::Int(r.auto_iters as i64)),
                ("auto_estimate", Json::Float(r.auto_estimate)),
                (
                    "choice_fingerprint",
                    Json::str(format!("{:016x}", r.choice_fingerprint)),
                ),
                ("forced", Json::Array(forced)),
            ])
        })
        .collect();
    let saturation = report
        .saturation
        .iter()
        .map(|r| {
            Json::obj([
                ("scheduler", Json::str(r.scheduler)),
                ("threads", Json::Int(r.threads as i64)),
                ("parallelism", Json::Int(r.parallelism as i64)),
                ("requests", Json::Int(r.requests as i64)),
                ("heavy", Json::Int(r.heavy as i64)),
                ("light", Json::Int(r.light as i64)),
                ("wall_ns", Json::Int(r.wall_ns as i64)),
                ("qps", Json::Float(r.qps)),
                ("steals", Json::Int(r.steals as i64)),
                ("fingerprint", Json::str(format!("{:016x}", r.fingerprint))),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::str("infpdb-bench/4")),
        ("date", Json::str(report.date.clone())),
        ("impl", Json::str(report.impl_kind.name())),
        ("smoke", Json::Bool(report.smoke)),
        ("rows", Json::Array(rows)),
        ("saturation", Json::Array(saturation)),
        ("planner", Json::Array(planner)),
    ])
    .encode_pretty()
}

/// A human-readable summary table (what `infpdb bench` prints).
pub fn summary_table(report: &BenchReport) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "impl={} smoke={} date={}",
        report.impl_kind.name(),
        report.smoke,
        report.date
    )
    .ok();
    writeln!(
        out,
        "{:<10} {:<7} {:<8} {:>7} {:>3} {:>6} {:>6} {:>14} {:>9} {:>7}",
        "workload", "query", "stage", "eps", "thr", "n", "iters", "median_ns", "hit_rate", "nodes"
    )
    .ok();
    for r in &report.rows {
        let rate = r
            .memo_hit_rate
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".into());
        let nodes = r
            .arena_nodes
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into());
        writeln!(
            out,
            "{:<10} {:<7} {:<8} {:>7} {:>3} {:>6} {:>6} {:>14} {:>9} {:>7}",
            r.workload, r.query, r.stage, r.eps, r.threads, r.n, r.iters, r.median_ns, rate, nodes
        )
        .ok();
    }
    if !report.saturation.is_empty() {
        writeln!(
            out,
            "\n{:<10} {:>3} {:>4} {:>5} {:>12} {:>10} {:>7}  fingerprint",
            "scheduler", "thr", "par", "reqs", "wall_ns", "qps", "steals"
        )
        .ok();
        for r in &report.saturation {
            writeln!(
                out,
                "{:<10} {:>3} {:>4} {:>5} {:>12} {:>10.1} {:>7}  {:016x}",
                r.scheduler,
                r.threads,
                r.parallelism,
                r.requests,
                r.wall_ns,
                r.qps,
                r.steals,
                r.fingerprint
            )
            .ok();
        }
    }
    if !report.planner.is_empty() {
        writeln!(
            out,
            "\n{:<13} {:>5} {:>6} {:<7} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "cell",
            "eps",
            "n_eval",
            "chosen",
            "auto_ns",
            "lifted_ns",
            "shannon_ns",
            "mc_ns",
            "kl_ns"
        )
        .ok();
        for r in &report.planner {
            let forced_ns = |name: &str| -> String {
                match r.forced.iter().find(|f| f.strategy == name) {
                    Some(f) if f.skipped => "skip".into(),
                    Some(f) => f
                        .median_ns
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "-".into()),
                    None => "-".into(),
                }
            };
            writeln!(
                out,
                "{:<13} {:>5} {:>6} {:<7} {:>12} {:>12} {:>12} {:>12} {:>12}",
                r.cell,
                r.eps,
                r.n_eval,
                r.chosen,
                r.auto_median_ns,
                forced_ns("lifted"),
                forced_ns("shannon"),
                forced_ns("mc"),
                forced_ns("kl"),
            )
            .ok();
        }
    }
    out
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no chrono
/// in the offline workspace).
pub fn iso_date_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch → proleptic Gregorian calendar date (the standard
/// `civil_from_days` construction).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(19_723 + 59), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    /// A tiny run of both engines covers the full matrix shape and
    /// agrees on every estimate (the deep equivalence guarantees live
    /// in `infpdb-finite`'s property tests).
    #[test]
    fn smoke_run_produces_full_matrix_and_engines_agree() {
        let mk = |impl_kind| BenchConfig {
            impl_kind,
            smoke: true,
            eps: vec![1e-2],
            repeats: 1,
            threads: 1,
        };
        let tree = run(&mk(ImplKind::Tree)).unwrap();
        let arena = run(&mk(ImplKind::Arena)).unwrap();
        // 4 workloads × 1 ε × 4 stages
        assert_eq!(tree.rows.len(), 16);
        assert_eq!(arena.rows.len(), 16);
        assert!(tree.rows.iter().any(|r| r.stage == "prepared"));
        assert!(tree.rows.iter().any(|r| r.workload == "blocks"));
        for (t, a) in tree.rows.iter().zip(&arena.rows) {
            assert_eq!(
                (t.workload, t.query, t.stage, t.n),
                (a.workload, a.query, a.stage, a.n)
            );
            assert_eq!(t.estimate.to_bits(), a.estimate.to_bits());
            assert!(t.median_ns > 0 && a.median_ns > 0);
        }
        // a parallel arena run reproduces every estimate bit-for-bit
        let par = run(&BenchConfig {
            threads: 4,
            ..mk(ImplKind::Arena)
        })
        .unwrap();
        for (s, p) in arena.rows.iter().zip(&par.rows) {
            assert_eq!(
                s.estimate.to_bits(),
                p.estimate.to_bits(),
                "{:?}",
                (s.workload, s.query, s.stage)
            );
            assert_eq!(p.threads, 4);
        }
        // the arena reports node counts on every row; tree only for ground
        assert!(arena.rows.iter().all(|r| r.arena_nodes.is_some()));
        assert!(tree
            .rows
            .iter()
            .all(|r| (r.stage == "ground") == r.arena_nodes.is_some()));
    }

    #[test]
    fn json_artifact_is_well_formed() {
        let report = BenchReport {
            impl_kind: ImplKind::Arena,
            smoke: true,
            date: "2026-08-06".into(),
            saturation: vec![SaturationRow {
                scheduler: "stealing",
                threads: 2,
                parallelism: 4,
                requests: 12,
                heavy: 4,
                light: 8,
                wall_ns: 1_000_000,
                qps: 12_000.0,
                steals: 3,
                fingerprint: 0xDEAD_BEEF_0000_0001,
            }],
            rows: vec![BenchRow {
                workload: "geometric",
                query: "pair",
                stage: "shannon",
                eps: 1e-4,
                threads: 2,
                n: 14,
                iters: 7,
                median_ns: 12_345,
                estimate: 0.25,
                memo_hit_rate: Some(0.5),
                arena_nodes: Some(321),
            }],
            planner: vec![crate::planner::PlannerRow {
                cell: "padded-dnf",
                query: "exists x, y. R(x) /\\ S(x,y) /\\ T(y)",
                eps: 0.45,
                n_eval: 20_857,
                chosen: "kl",
                auto_cost: 325_888.0,
                auto_median_ns: 1_234_567,
                auto_iters: 1,
                auto_estimate: 0.875,
                choice_fingerprint: 0x0123_4567_89AB_CDEF,
                forced: vec![
                    crate::planner::ForcedRun {
                        strategy: "lifted",
                        cost: None,
                        median_ns: None,
                        iters: 0,
                        estimate: None,
                        skipped: false,
                    },
                    crate::planner::ForcedRun {
                        strategy: "mc",
                        cost: Some(5.0e9),
                        median_ns: None,
                        iters: 0,
                        estimate: None,
                        skipped: true,
                    },
                ],
            }],
        };
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"infpdb-bench/4\""));
        assert!(json.contains("\"impl\": \"arena\""));
        assert!(json.contains("\"threads\": 2"));
        assert!(json.contains("\"median_ns\": 12345"));
        assert!(json.contains("\"memo_hit_rate\": 0.5"));
        // the artifact is real JSON: it parses with the shared decoder
        // and round-trips every field
        let doc = Json::parse(&json).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("infpdb-bench/4"));
        let planner = doc.get("planner").unwrap().as_array().unwrap();
        assert_eq!(planner.len(), 1);
        assert_eq!(planner[0].get("chosen").unwrap().as_str(), Some("kl"));
        assert_eq!(
            planner[0].get("choice_fingerprint").unwrap().as_str(),
            Some("0123456789abcdef")
        );
        let forced = planner[0].get("forced").unwrap().as_array().unwrap();
        assert_eq!(forced[0].get("cost"), Some(&Json::Null));
        assert_eq!(forced[1].get("skipped").unwrap().as_bool(), Some(true));
        assert_eq!(forced[1].get("median_ns"), Some(&Json::Null));
        let sat = doc.get("saturation").unwrap().as_array().unwrap();
        assert_eq!(sat.len(), 1);
        assert_eq!(sat[0].get("scheduler").unwrap().as_str(), Some("stealing"));
        assert_eq!(sat[0].get("qps").unwrap().as_f64(), Some(12_000.0));
        assert_eq!(
            sat[0].get("fingerprint").unwrap().as_str(),
            Some("deadbeef00000001")
        );
        assert_eq!(doc.get("smoke").unwrap().as_bool(), Some(true));
        let rows = doc.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("eps").unwrap().as_f64(), Some(1e-4));
        assert_eq!(rows[0].get("estimate").unwrap().as_f64(), Some(0.25));
        assert_eq!(rows[0].get("arena_nodes").unwrap().as_i64(), Some(321));
        // absent statistics are null
        let bare = BenchReport {
            rows: vec![BenchRow {
                memo_hit_rate: None,
                arena_nodes: None,
                ..report.rows[0].clone()
            }],
            ..report
        };
        let doc = Json::parse(&to_json(&bare)).unwrap();
        let row = &doc.get("rows").unwrap().as_array().unwrap()[0];
        assert_eq!(row.get("memo_hit_rate"), Some(&Json::Null));
        assert_eq!(row.get("arena_nodes"), Some(&Json::Null));
    }

    #[test]
    fn impl_kind_round_trips() {
        for k in [ImplKind::Tree, ImplKind::Arena] {
            assert_eq!(ImplKind::parse(k.name()), Some(k));
        }
        assert_eq!(ImplKind::parse("btree"), None);
    }
}

//! Benchmark harness for `infpdb`.
//!
//! One Criterion benchmark per experiment of DESIGN.md §4 (E1–E15) lives in
//! `benches/`. Since the paper (a PODS theory contribution) reports no
//! empirical tables, every bench both *prints* the experiment's measured
//! rows — the reproducible artifact EXPERIMENTS.md records — and times the
//! underlying operation with Criterion.

pub mod harness;
pub mod planner;
pub mod saturation;
pub mod storebench;

use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;
use infpdb_math::series::{GeometricSeries, ZetaSeries};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;

/// The standard unary schema `{R/1}` used by most experiments.
pub fn unary_schema() -> Schema {
    Schema::from_relations([Relation::new("R", 1)]).expect("static schema")
}

/// `R(n)`.
pub fn rfact(n: i64) -> Fact {
    Fact::new(RelId(0), [Value::int(n)])
}

/// The canonical fast-decay infinite PDB: `p_i = 0.5^(i+1)` over `R(ℕ)`.
pub fn geometric_pdb() -> CountableTiPdb {
    CountableTiPdb::new(FactSupply::unary_over_naturals(
        unary_schema(),
        RelId(0),
        GeometricSeries::new(0.5, 0.5).expect("static series"),
    ))
    .expect("convergent")
}

/// The canonical slow-decay infinite PDB: `p_n = 6/(π²n²)` (Example 3.3's
/// distribution as fact probabilities).
pub fn zeta_pdb() -> CountableTiPdb {
    CountableTiPdb::new(FactSupply::unary_over_naturals(
        unary_schema(),
        RelId(0),
        ZetaSeries::basel(),
    ))
    .expect("convergent")
}

/// A two-relation finite PDB `{A/1, B/1}` with interleaved, slowly
/// decaying probabilities (`p_i = 0.45·0.75^i` for both `A(i)` and
/// `B(i)`, 16 facts per relation). A conjunction of per-relation pair
/// queries over it splits into two var-disjoint lineage components wide
/// enough to cross the fork threshold — the workload that exercises the
/// intra-query parallel evaluator.
pub fn blocks_pdb() -> CountableTiPdb {
    let schema =
        Schema::from_relations([Relation::new("A", 1), Relation::new("B", 1)]).expect("static");
    let a = schema.rel_id("A").expect("static");
    let b = schema.rel_id("B").expect("static");
    let mut facts = Vec::new();
    let mut p = 0.45f64;
    for i in 0..16i64 {
        facts.push((Fact::new(a, [Value::int(i)]), p));
        facts.push((Fact::new(b, [Value::int(i)]), p));
        p *= 0.75;
    }
    CountableTiPdb::new(FactSupply::from_vec(schema, facts).expect("distinct facts"))
        .expect("finite supply converges")
}

/// A `k×k` bipartite grid over `{R/1, S/2, T/1}`: `R(i) @ 0.6`,
/// `T(j) @ 0.6`, and every edge `S(i,j) @ 0.5`. The Dalvi–Suciu hard
/// query `∃x,y. R(x) ∧ S(x,y) ∧ T(y)` over it grounds to a `k²`-clause
/// monotone DNF whose clauses share variables both ways — dense enough
/// to blow the planner's Shannon trial budget, bounded enough for
/// Karp–Luby's DNF conversion. The planner-stage crossover cells build
/// on it.
pub fn grid_pdb(k: i64) -> CountableTiPdb {
    let schema = Schema::from_relations([
        Relation::new("R", 1),
        Relation::new("S", 2),
        Relation::new("T", 1),
    ])
    .expect("static schema");
    let (r, s, t) = (
        schema.rel_id("R").expect("static"),
        schema.rel_id("S").expect("static"),
        schema.rel_id("T").expect("static"),
    );
    let mut facts = Vec::new();
    for i in 0..k {
        facts.push((Fact::new(r, [Value::int(i)]), 0.6));
        facts.push((Fact::new(t, [Value::int(i)]), 0.6));
    }
    for i in 0..k {
        for j in 0..k {
            facts.push((Fact::new(s, [Value::int(i), Value::int(j)]), 0.5));
        }
    }
    CountableTiPdb::new(FactSupply::from_vec(schema, facts).expect("distinct facts"))
        .expect("finite supply converges")
}

/// An *irregular* bipartite graph over `{R/1, S/2, T/1}`: `k` nodes per
/// side (`R(i) @ 0.6`, `T(j) @ 0.6`) and `deg` pseudo-random distinct
/// edges `S(i,j) @ 0.5` per left node (deterministic in `seed`). Unlike
/// the complete grid, the irregular edge set defeats the Shannon DAG's
/// decomposition and caching, so the planner's budgeted trial blows even
/// at clause counts where Karp–Luby sampling stays cheap — the crossover
/// the planner bench's `kl` cell sits on.
pub fn sparse_grid_pdb(k: i64, deg: usize, seed: u64) -> CountableTiPdb {
    let schema = Schema::from_relations([
        Relation::new("R", 1),
        Relation::new("S", 2),
        Relation::new("T", 1),
    ])
    .expect("static schema");
    let facts = sparse_grid_facts(&schema, k, deg, seed);
    CountableTiPdb::new(FactSupply::from_vec(schema, facts).expect("distinct facts"))
        .expect("finite supply converges")
}

fn sparse_grid_facts(schema: &Schema, k: i64, deg: usize, seed: u64) -> Vec<(Fact, f64)> {
    use infpdb_core::space::rand_core::{RngCore, SplitMix64};
    let (r, s, t) = (
        schema.rel_id("R").expect("static"),
        schema.rel_id("S").expect("static"),
        schema.rel_id("T").expect("static"),
    );
    let mut rng = SplitMix64::new(seed);
    let mut facts = Vec::new();
    for i in 0..k {
        facts.push((Fact::new(r, [Value::int(i)]), 0.6));
        facts.push((Fact::new(t, [Value::int(i)]), 0.6));
    }
    for i in 0..k {
        let mut picked = Vec::with_capacity(deg);
        while picked.len() < deg.min(k as usize) {
            let j = (rng.next_u64() % k as u64) as i64;
            if !picked.contains(&j) {
                picked.push(j);
                facts.push((Fact::new(s, [Value::int(i), Value::int(j)]), 0.5));
            }
        }
    }
    facts
}

/// [`sparse_grid_pdb`] plus `d³` facts of an untouched ternary relation
/// `P/3` over the domain `0..d` with slowly decaying probabilities
/// (`p_i = 0.0002·(1−1e-4)^i`). The padding stretches the evaluation
/// prefix tens of thousands of facts deep while adding only `d`
/// constants to the active domain, so world-sampling Monte-Carlo pays
/// for every padding fact per sample while Karp–Luby touches only the
/// DNF's own variables — and the irregular core keeps exact Shannon out
/// of reach. The planner-stage `kl` cell.
pub fn padded_sparse_grid_pdb(k: i64, deg: usize, seed: u64, d: i64) -> CountableTiPdb {
    let schema = Schema::from_relations([
        Relation::new("R", 1),
        Relation::new("S", 2),
        Relation::new("T", 1),
        Relation::new("P", 3),
    ])
    .expect("static schema");
    let pad = schema.rel_id("P").expect("static");
    let mut facts = sparse_grid_facts(&schema, k, deg, seed);
    let mut p = 0.0002f64;
    for i in 0..d {
        for j in 0..d {
            for l in 0..d {
                facts.push((
                    Fact::new(pad, [Value::int(i), Value::int(j), Value::int(l)]),
                    p,
                ));
                p *= 1.0 - 1e-4;
            }
        }
    }
    CountableTiPdb::new(FactSupply::from_vec(schema, facts).expect("distinct facts"))
        .expect("finite supply converges")
}

/// [`grid_pdb`] plus `d³` facts of an untouched ternary relation `P/3`
/// over the domain `0..d`, with slowly decaying probabilities
/// (`p_i = 0.002·(1−1e-4)^i`). The padding stretches the evaluation
/// prefix tens of thousands of facts deep while adding only `d`
/// constants to the active domain (grounding stays quadratic in `d`,
/// not in the fact count) and leaving the query's own lineage the small
/// grid DNF. This is the regime where world-sampling Monte-Carlo pays
/// for every padding fact per sample but Karp–Luby touches only the
/// DNF's own variables.
pub fn padded_grid_pdb(k: i64, d: i64) -> CountableTiPdb {
    let schema = Schema::from_relations([
        Relation::new("R", 1),
        Relation::new("S", 2),
        Relation::new("T", 1),
        Relation::new("P", 3),
    ])
    .expect("static schema");
    let (r, s, t, pad) = (
        schema.rel_id("R").expect("static"),
        schema.rel_id("S").expect("static"),
        schema.rel_id("T").expect("static"),
        schema.rel_id("P").expect("static"),
    );
    let mut facts = Vec::new();
    for i in 0..k {
        facts.push((Fact::new(r, [Value::int(i)]), 0.6));
        facts.push((Fact::new(t, [Value::int(i)]), 0.6));
    }
    for i in 0..k {
        for j in 0..k {
            facts.push((Fact::new(s, [Value::int(i), Value::int(j)]), 0.5));
        }
    }
    let mut p = 0.0002f64;
    for i in 0..d {
        for j in 0..d {
            for l in 0..d {
                facts.push((
                    Fact::new(pad, [Value::int(i), Value::int(j), Value::int(l)]),
                    p,
                ));
                p *= 1.0 - 1e-4;
            }
        }
    }
    CountableTiPdb::new(FactSupply::from_vec(schema, facts).expect("distinct facts"))
        .expect("finite supply converges")
}

/// Ground truth for `P(∃x R(x))` by long explicit product.
pub fn truth_exists_r(pdb: &CountableTiPdb, terms: usize) -> f64 {
    let mut none = 1.0;
    for i in 0..terms {
        none *= 1.0 - pdb.supply().prob(i);
    }
    1.0 - none
}

/// A deterministic pseudo-random finite t.i. table over `{R/1, S/2, T/1}`
/// with `facts` facts, for the engine-comparison experiments.
pub fn random_finite_table(facts: usize, seed: u64) -> infpdb_finite::TiTable {
    use infpdb_core::space::rand_core::{RngCore, SplitMix64};
    let schema = Schema::from_relations([
        Relation::new("R", 1),
        Relation::new("S", 2),
        Relation::new("T", 1),
    ])
    .expect("static schema");
    let mut rng = SplitMix64::new(seed);
    let mut t = infpdb_finite::TiTable::new(schema);
    let mut added = 0usize;
    let mut counter = 0i64;
    // domain scales with the table so enough distinct facts exist
    // (capacity is 2·dom + dom²) while joins still hit often
    let dom = ((facts as f64).sqrt() as i64 + 4).max(12);
    let mut attempts = 0usize;
    while added < facts {
        attempts += 1;
        assert!(
            attempts < 1000 * facts + 1000,
            "domain too small for {facts} distinct facts"
        );
        counter += 1;
        let p = 0.05 + 0.9 * (rng.next_u64() % 1000) as f64 / 1000.0;
        let a = (rng.next_u64() % dom as u64) as i64;
        let b = (rng.next_u64() % dom as u64) as i64;
        let fact = match counter % 3 {
            0 => Fact::new(RelId(0), [Value::int(a)]),
            1 => Fact::new(RelId(1), [Value::int(a), Value::int(b)]),
            _ => Fact::new(RelId(2), [Value::int(a)]),
        };
        if t.add_fact(fact, p).is_ok() {
            added += 1;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_constructors() {
        assert!(geometric_pdb().expected_size_bound() >= 1.0);
        assert!(zeta_pdb().expected_size_bound() >= 1.0);
        assert!(blocks_pdb().expected_size_bound() >= 1.0);
        let truth = truth_exists_r(&geometric_pdb(), 100);
        assert!(truth > 0.7 && truth < 0.72);
        let t = random_finite_table(40, 7);
        assert_eq!(t.len(), 40);
    }
}

//! `bench store`: the durable store at scale (ISSUE 10 acceptance).
//!
//! Grounds a multi-million-fact prefix of the zeta PDB straight into a
//! [`FactCatalog`], then walks the whole durable-store lifecycle and
//! times every stage:
//!
//! 1. **full snapshot** — every shard written;
//! 2. **append + incremental snapshot** — at most `⌈append/capacity⌉ + 1`
//!    tail shards may be rewritten (one per relation tail, plus the
//!    shards the appended range spills into); the run *fails* if the
//!    incremental write exceeds that bound, so the artifact is a proof,
//!    not a log;
//! 3. **idle snapshot** — must be a no-op that touches no file;
//! 4. **reopen** — [`Store::load`] (mmap-backed views counted), then
//!    [`PreparedPdb::open`], which must take the fingerprint fast path
//!    (no fact-by-fact supply comparison);
//! 5. **answers** — a query matrix evaluated on the reopened catalog at
//!    thread counts 1 and 2 must be bit-for-bit identical to fresh
//!    grounding.
//!
//! The output is a standalone JSON artifact
//! (`BENCH_<iso-date>_store.json`, schema `infpdb-store-bench/v1`)
//! modeled on the netbench artifact; EXPERIMENTS.md §Perf-store records
//! the checked-in numbers.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use infpdb_core::json::Json;
use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_query::approx::{approx_prob_boolean_par, PartialOnCancel};
use infpdb_query::cancel::CancelToken;
use infpdb_query::prepared::{execute_prepared_par, PreparedPdb};
use infpdb_store::{SnapshotInfo, Store};
use infpdb_ti::catalog::FactCatalog;
use infpdb_ti::fingerprint::countable_pdb_fingerprint;

use crate::zeta_pdb;

/// The query matrix the reopened catalog must answer bit-for-bit.
pub const QUERIES: [&str; 3] = [
    "exists x. R(x)",
    "R(1)",
    "exists x, y. R(x) /\\ R(y) /\\ x != y",
];

/// Tolerance the answer matrix runs at. Deliberately loose: what the
/// matrix certifies is *bit-identity* between the reopened catalog and
/// fresh grounding, not tightness, and a loose ε keeps the matrix cheap
/// next to the grounding (n(ε) on zeta is ~0.912/ε facts, and the
/// planner may route a cell through sampling).
pub const ANSWER_EPS: f64 = 1e-2;

/// Configuration for one `bench store` run.
#[derive(Debug, Clone)]
pub struct StoreBenchConfig {
    /// Total facts in the final snapshot (base + append).
    pub facts: usize,
    /// Facts appended between the full and the incremental snapshot.
    pub append: usize,
    /// Facts per shard file.
    pub shard_capacity: u64,
    /// Store directory; `None` uses (and removes) a fresh temp dir.
    pub dir: Option<PathBuf>,
    /// Whether this is the small CI sweep.
    pub smoke: bool,
}

impl StoreBenchConfig {
    /// The full 10⁷-fact run (shards of 2²⁰, one-shard append).
    pub fn full() -> Self {
        StoreBenchConfig {
            facts: 10_000_000,
            append: 1 << 20,
            shard_capacity: 1 << 20,
            dir: None,
            smoke: false,
        }
    }

    /// The CI smoke run: 10⁵ facts over 2¹⁴-fact shards, so the layout
    /// is still genuinely multi-shard.
    pub fn smoke() -> Self {
        StoreBenchConfig {
            facts: 100_000,
            append: 10_000,
            shard_capacity: 1 << 14,
            dir: None,
            smoke: true,
        }
    }
}

/// Timing and accounting for one snapshot call.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotRow {
    /// Wall-clock seconds.
    pub secs: f64,
    /// What the store reported.
    pub info: SnapshotInfo,
}

/// One thread count's bit-identity verdict over the query matrix.
#[derive(Debug, Clone)]
pub struct AnswerRow {
    /// Intra-query parallelism used.
    pub threads: usize,
    /// Per-query `f64::to_bits` of the reopened-catalog estimate.
    pub estimate_bits: Vec<u64>,
    /// Whether every estimate matched fresh grounding bit-for-bit.
    pub identical: bool,
}

/// Everything one run measured.
#[derive(Debug, Clone)]
pub struct StoreBenchReport {
    /// ISO date the artifact is stamped with.
    pub date: String,
    /// The configuration that produced it.
    pub config: StoreBenchConfig,
    /// Facts in the first (full) snapshot.
    pub base_facts: usize,
    /// Seconds to ground the base prefix into the catalog.
    pub ground_secs: f64,
    /// The full snapshot.
    pub full: SnapshotRow,
    /// Seconds to push the appended facts.
    pub append_secs: f64,
    /// The incremental snapshot after the append.
    pub incremental: SnapshotRow,
    /// The idle snapshot (must be unchanged).
    pub noop: SnapshotRow,
    /// Seconds for the raw [`Store::load`] reopen.
    pub reopen_secs: f64,
    /// Zero-copy mmap views during the reopen.
    pub mmap_maps: u64,
    /// Owned-buffer fallbacks during the reopen.
    pub mmap_fallbacks: u64,
    /// Whether the reopen verified the manifest fingerprint.
    pub fingerprint_verified: bool,
    /// Seconds for the service-level [`PreparedPdb::open`].
    pub open_secs: f64,
    /// Whether the open took the O(1) fingerprint fast path.
    pub supply_check_skipped: bool,
    /// Bit-identity verdicts at each thread count.
    pub answers: Vec<AnswerRow>,
}

impl StoreBenchReport {
    /// The shard-write bound the incremental snapshot must respect:
    /// the appended range spans at most `⌈append/capacity⌉` full new
    /// shards plus the previously partial tail shard it extends.
    pub fn incremental_write_bound(&self) -> usize {
        let cap = self.config.shard_capacity as usize;
        self.config.append.div_ceil(cap) + 1
    }

    /// Renders the standalone JSON artifact (`infpdb-store-bench/v1`).
    pub fn to_json(&self) -> String {
        let snap = |r: &SnapshotRow| {
            Json::obj([
                ("secs", Json::Float(r.secs)),
                ("epoch", Json::Int(r.info.epoch as i64)),
                ("facts", Json::Int(r.info.facts as i64)),
                ("bytes", Json::Int(r.info.bytes as i64)),
                ("shards_written", Json::Int(r.info.shards_written as i64)),
                ("shards_skipped", Json::Int(r.info.shards_skipped as i64)),
                ("unchanged", Json::Bool(r.info.unchanged)),
            ])
        };
        Json::obj([
            ("schema", Json::str("infpdb-store-bench/v1")),
            ("date", Json::str(self.date.clone())),
            ("smoke", Json::Bool(self.config.smoke)),
            ("facts", Json::Int(self.config.facts as i64)),
            ("base_facts", Json::Int(self.base_facts as i64)),
            ("append", Json::Int(self.config.append as i64)),
            (
                "shard_capacity",
                Json::Int(self.config.shard_capacity as i64),
            ),
            ("ground_secs", Json::Float(self.ground_secs)),
            ("full_snapshot", snap(&self.full)),
            ("append_secs", Json::Float(self.append_secs)),
            ("incremental_snapshot", snap(&self.incremental)),
            (
                "incremental_write_bound",
                Json::Int(self.incremental_write_bound() as i64),
            ),
            ("noop_snapshot", snap(&self.noop)),
            (
                "reopen",
                Json::obj([
                    ("secs", Json::Float(self.reopen_secs)),
                    ("mmap_maps", Json::Int(self.mmap_maps as i64)),
                    ("mmap_fallbacks", Json::Int(self.mmap_fallbacks as i64)),
                    (
                        "fingerprint_verified",
                        Json::Bool(self.fingerprint_verified),
                    ),
                ]),
            ),
            (
                "open",
                Json::obj([
                    ("secs", Json::Float(self.open_secs)),
                    (
                        "supply_check_skipped",
                        Json::Bool(self.supply_check_skipped),
                    ),
                ]),
            ),
            (
                "queries",
                Json::Array(QUERIES.iter().map(|q| Json::str(*q)).collect()),
            ),
            ("answer_eps", Json::Float(ANSWER_EPS)),
            (
                "answers",
                Json::Array(
                    self.answers
                        .iter()
                        .map(|a| {
                            Json::obj([
                                ("threads", Json::Int(a.threads as i64)),
                                ("identical", Json::Bool(a.identical)),
                                (
                                    "estimate_bits",
                                    Json::Array(
                                        a.estimate_bits
                                            .iter()
                                            .map(|b| Json::str(format!("{b:016x}")))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .encode_pretty()
    }

    /// Human-oriented summary.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
        writeln!(
            out,
            "store bench: {} facts, shard capacity {}, append {}",
            self.config.facts, self.config.shard_capacity, self.config.append
        )
        .ok();
        writeln!(
            out,
            "  ground    {:>8.2}s  ({:.0} facts/s)",
            self.ground_secs,
            self.base_facts as f64 / self.ground_secs.max(1e-9)
        )
        .ok();
        writeln!(
            out,
            "  full      {:>8.2}s  {} shards, {:.1} MiB",
            self.full.secs,
            self.full.info.shards_written,
            mb(self.full.info.bytes)
        )
        .ok();
        writeln!(
            out,
            "  incr      {:>8.2}s  {} written / {} reused, {:.1} MiB (bound {})",
            self.incremental.secs,
            self.incremental.info.shards_written,
            self.incremental.info.shards_skipped,
            mb(self.incremental.info.bytes),
            self.incremental_write_bound()
        )
        .ok();
        writeln!(out, "  noop      {:>8.4}s  unchanged", self.noop.secs).ok();
        writeln!(
            out,
            "  reopen    {:>8.2}s  {} mapped / {} owned, fingerprint {}",
            self.reopen_secs,
            self.mmap_maps,
            self.mmap_fallbacks,
            if self.fingerprint_verified {
                "verified"
            } else {
                "UNVERIFIED"
            }
        )
        .ok();
        writeln!(
            out,
            "  open      {:>8.2}s  supply check {}",
            self.open_secs,
            if self.supply_check_skipped {
                "skipped (fast path)"
            } else {
                "RAN (slow path)"
            }
        )
        .ok();
        for a in &self.answers {
            writeln!(
                out,
                "  answers   threads {}: {}",
                a.threads,
                if a.identical {
                    "bit-for-bit identical"
                } else {
                    "MISMATCH"
                }
            )
            .ok();
        }
        out
    }
}

/// Grounds `n` facts of the supply into a fresh catalog (or extends
/// `catalog` up to length `n`).
fn ground_to(catalog: &mut FactCatalog, pdb: &infpdb_ti::construction::CountableTiPdb, n: usize) {
    let supply = pdb.supply();
    for i in catalog.len()..n {
        catalog
            .push(supply.fact(i), supply.prob(i))
            .expect("zeta supply yields distinct facts with valid probabilities");
    }
}

/// Runs the bench. Returns an error string (the CLI's failure channel)
/// if any invariant breaks: the incremental write bound, the no-op
/// contract, fingerprint verification, the fast-path open, or answer
/// bit-identity.
pub fn run(config: &StoreBenchConfig) -> Result<StoreBenchReport, String> {
    if config.facts == 0 || config.append == 0 || config.append >= config.facts {
        return Err(format!(
            "store bench needs 0 < append < facts, got append {} / facts {}",
            config.append, config.facts
        ));
    }
    let (dir, ephemeral) = match &config.dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!("infpdb-storebench-{}", std::process::id())),
            true,
        ),
    };
    let _ = std::fs::remove_dir_all(&dir);
    let result = run_in(config, &dir);
    if ephemeral {
        std::fs::remove_dir_all(&dir).ok();
    }
    result
}

fn run_in(config: &StoreBenchConfig, dir: &std::path::Path) -> Result<StoreBenchReport, String> {
    let pdb = zeta_pdb();
    let fp = countable_pdb_fingerprint(&pdb);
    let base_facts = config.facts - config.append;
    let store = Store::open_dir(dir).with_shard_capacity(config.shard_capacity);

    let t = Instant::now();
    let mut catalog = FactCatalog::new(pdb.schema().clone());
    ground_to(&mut catalog, &pdb, base_facts);
    let ground_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let full_info = store
        .snapshot(&catalog, Some(fp), None)
        .map_err(|e| format!("full snapshot failed: {e}"))?;
    let full = SnapshotRow {
        secs: t.elapsed().as_secs_f64(),
        info: full_info,
    };
    if full.info.unchanged || full.info.facts != base_facts as u64 {
        return Err(format!("full snapshot accounting is off: {:?}", full.info));
    }

    let t = Instant::now();
    ground_to(&mut catalog, &pdb, config.facts);
    let append_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let incr_info = store
        .snapshot(&catalog, Some(fp), None)
        .map_err(|e| format!("incremental snapshot failed: {e}"))?;
    let incremental = SnapshotRow {
        secs: t.elapsed().as_secs_f64(),
        info: incr_info,
    };

    let t = Instant::now();
    let noop_info = store
        .snapshot(&catalog, Some(fp), None)
        .map_err(|e| format!("idle snapshot failed: {e}"))?;
    let noop = SnapshotRow {
        secs: t.elapsed().as_secs_f64(),
        info: noop_info,
    };

    let t = Instant::now();
    let recovered = store
        .load()
        .map_err(|e| format!("reopen failed: {e}"))?
        .ok_or("reopen found no snapshot")?;
    let reopen_secs = t.elapsed().as_secs_f64();
    let rec = recovered.report;
    if recovered.catalog.len() != config.facts {
        return Err(format!(
            "reopen kept {} of {} facts",
            recovered.catalog.len(),
            config.facts
        ));
    }

    let t = Instant::now();
    let (prepared, open_report) = PreparedPdb::open(zeta_pdb(), &store, Some(fp));
    let open_secs = t.elapsed().as_secs_f64();

    let mut report = StoreBenchReport {
        date: crate::harness::iso_date_utc(),
        config: config.clone(),
        base_facts,
        ground_secs,
        full,
        append_secs,
        incremental,
        noop,
        reopen_secs,
        mmap_maps: rec.mmap_maps,
        mmap_fallbacks: rec.mmap_fallbacks,
        fingerprint_verified: rec.fingerprint_verified,
        open_secs,
        supply_check_skipped: open_report.supply_check_skipped,
        answers: Vec::new(),
    };

    // invariants the artifact certifies
    if report.incremental.info.shards_written > report.incremental_write_bound() {
        return Err(format!(
            "incremental snapshot rewrote {} shards, bound is {}\n{}",
            report.incremental.info.shards_written,
            report.incremental_write_bound(),
            report.summary_table()
        ));
    }
    if !report.noop.info.unchanged {
        return Err(format!(
            "idle snapshot was not a no-op: {:?}",
            report.noop.info
        ));
    }
    if !report.fingerprint_verified {
        return Err("reopen could not verify the manifest fingerprint".into());
    }
    if !report.supply_check_skipped {
        return Err("PreparedPdb::open took the slow path on a clean store".into());
    }

    // answer matrix: reopened catalog vs fresh grounding, threads 1 and 2
    let fresh = zeta_pdb();
    let cancel = CancelToken::new();
    for threads in [1usize, 2] {
        let mut bits = Vec::new();
        let mut identical = true;
        for q in QUERIES {
            let query = parse(q, fresh.schema()).map_err(|e| format!("parse {q:?}: {e}"))?;
            let expected =
                approx_prob_boolean_par(&fresh, &query, ANSWER_EPS, Engine::Auto, threads)
                    .map_err(|e| format!("fresh eval {q:?}: {e}"))?;
            let (got, _) = execute_prepared_par(
                &prepared,
                &query,
                ANSWER_EPS,
                Engine::Auto,
                threads,
                &cancel,
                PartialOnCancel::Evaluate,
            )
            .map_err(|e| format!("reopened eval {q:?}: {e}"))?;
            bits.push(got.estimate.to_bits());
            identical &= got.estimate.to_bits() == expected.estimate.to_bits();
        }
        report.answers.push(AnswerRow {
            threads,
            estimate_bits: bits,
            identical,
        });
    }
    if report.answers.iter().any(|a| !a.identical) {
        return Err(format!(
            "reopened answers drifted from fresh grounding\n{}",
            report.summary_table()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run: multi-shard layout, incremental
    /// write bound, no-op, fast-path reopen, bit-identical answers.
    #[test]
    fn tiny_run_satisfies_every_invariant() {
        let config = StoreBenchConfig {
            facts: 600,
            append: 100,
            shard_capacity: 128,
            dir: None,
            smoke: true,
        };
        let report = run(&config).unwrap();
        assert_eq!(report.base_facts, 500);
        // 500 facts / 128 = 4 shards in the full snapshot
        assert_eq!(report.full.info.shards_written, 4);
        assert_eq!(report.full.info.shards_skipped, 0);
        // 600 facts / 128 = 5 shards; shards 0-2 (full) are reused
        assert_eq!(report.incremental.info.shards_skipped, 3);
        assert_eq!(report.incremental.info.shards_written, 2);
        assert!(report.incremental.info.shards_written <= report.incremental_write_bound());
        assert!(report.noop.info.unchanged);
        assert!(report.fingerprint_verified);
        assert!(report.supply_check_skipped);
        assert_eq!(report.mmap_maps + report.mmap_fallbacks, 5);
        assert!(report.answers.iter().all(|a| a.identical));
        // the artifact parses and carries the schema tag
        let doc = Json::parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("infpdb-store-bench/v1")
        );
        assert_eq!(doc.get("facts").and_then(Json::as_i64), Some(600));
        assert_eq!(
            doc.get("incremental_snapshot")
                .and_then(|s| s.get("shards_written"))
                .and_then(Json::as_i64),
            Some(2)
        );
        let summary = report.summary_table();
        assert!(summary.contains("bit-for-bit identical"), "{summary}");
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        for (facts, append) in [(0usize, 0usize), (10, 10), (10, 20), (10, 0)] {
            let config = StoreBenchConfig {
                facts,
                append,
                shard_capacity: 8,
                dir: None,
                smoke: true,
            };
            assert!(run(&config).is_err(), "facts {facts} append {append}");
        }
    }
}

//! Aggregate-throughput (saturation) stage of `infpdb bench`.
//!
//! Where `harness` times single evaluations, this stage measures
//! *queries per second at saturation*: a mixed batch of heavy
//! splittable conjunctions and light point queries is thrown at a
//! [`QueryService`] all at once, and the wall clock runs from first
//! submission to last ticket resolution. One row per
//! `(scheduler, pool threads)` cell, so the checked-in artifact
//! records the work-stealing scheduler's aggregate win over the fixed
//! scoped-thread pool — and pins the answers: every row carries a
//! fingerprint over the estimates' bit patterns in submission order,
//! and rows of the same workload must agree on it bit for bit no
//! matter the scheduler or pool size (DESIGN.md §13).
//!
//! Every request uses a distinct ε (1e-7 nudges, far below the 1e-2
//! base tolerance) so no request is a result-cache hit of another:
//! the stage measures evaluation throughput, not cache lookups.

use std::time::Instant;

use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_serve::pool::SchedulerKind;
use infpdb_serve::service::{QueryRequest, QueryService, ServiceConfig};

use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::value::Value;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;

/// Saturation-stage configuration.
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Schedulers to measure; `None` means both (the comparison the
    /// artifact exists for), `Some` restricts to one (`--scheduler`).
    pub scheduler: Option<SchedulerKind>,
    /// Pool sizes to measure each scheduler at.
    pub threads: Vec<usize>,
    /// Intra-query thread budget per request (heavy queries fork this
    /// many component subtasks).
    pub parallelism: usize,
    /// Heavy (two-component conjunction) requests per run. Fixed by
    /// the caller, *never* derived from `--repeats` — the smoke run
    /// must stay inside the CI budget regardless of repeat tuning.
    pub heavy: usize,
    /// Light (point / single-quantifier) requests per run.
    pub light: usize,
    /// Measurement rounds per cell; the reported row is the round with
    /// the smallest wall clock (best-of-N damps scheduler noise on a
    /// shared machine). All rounds must agree on the fingerprint.
    pub rounds: usize,
}

impl SaturationConfig {
    /// The standard configuration: both schedulers, pools of 1, 2 and
    /// 4 workers, 16 heavy + 32 light requests.
    pub fn full() -> Self {
        Self {
            scheduler: None,
            threads: vec![1, 2, 4],
            parallelism: 4,
            heavy: 16,
            light: 32,
            rounds: 3,
        }
    }

    /// The CI smoke configuration: 2-worker pools, 4 heavy + 8 light.
    pub fn smoke() -> Self {
        Self {
            scheduler: None,
            threads: vec![2],
            parallelism: 4,
            heavy: 4,
            light: 8,
            rounds: 1,
        }
    }
}

/// One `(scheduler, pool threads)` saturation cell.
#[derive(Debug, Clone)]
pub struct SaturationRow {
    /// `"fixed"` or `"stealing"`.
    pub scheduler: &'static str,
    /// Pool workers.
    pub threads: usize,
    /// Intra-query thread budget per request.
    pub parallelism: usize,
    /// Total requests in the batch.
    pub requests: usize,
    /// Heavy requests among them.
    pub heavy: usize,
    /// Light requests among them.
    pub light: usize,
    /// Wall-clock nanoseconds from first submission to last ticket.
    pub wall_ns: u64,
    /// `requests / wall` — the headline aggregate throughput.
    pub qps: f64,
    /// Subtasks stolen across workers during the run (0 under the
    /// fixed scheduler).
    pub steals: u64,
    /// FNV-1a over every estimate's bit pattern in submission order;
    /// equal across all rows of the same workload or the determinism
    /// contract is broken.
    pub fingerprint: u64,
}

/// Four unary relations with interleaved decaying probabilities — a
/// wider cousin of the `blocks` fixture. The heavy query's conjunction
/// of per-relation pair queries splits into *four* var-disjoint
/// lineage components, so every heavy request forks four subtasks:
/// under the fixed scheduler that is four scoped thread spawn/joins
/// per evaluation, under stealing four deque pushes onto the pool's
/// existing workers.
fn saturation_pdb() -> CountableTiPdb {
    let rels = ["A", "B", "C", "D"];
    let schema = Schema::from_relations(rels.map(|r| Relation::new(r, 1))).expect("static schema");
    let ids: Vec<_> = rels.iter().map(|r| schema.rel_id(r).unwrap()).collect();
    let mut facts = Vec::new();
    let mut p = 0.45f64;
    for i in 0..16i64 {
        for &rel in &ids {
            facts.push((Fact::new(rel, [Value::int(i)]), p));
        }
        p *= 0.5;
    }
    CountableTiPdb::new(FactSupply::from_vec(schema, facts).expect("distinct facts"))
        .expect("finite supply converges")
}

/// The mixed batch: every `(heavy + light) / heavy`-th request is the
/// heavy four-component conjunction, the rest cycle through light
/// shapes, each at a distinct ε.
fn mixed_batch(
    pdb: &CountableTiPdb,
    heavy: usize,
    light: usize,
) -> Result<Vec<QueryRequest>, String> {
    let heavy_text = "(exists x, y. A(x) /\\ A(y) /\\ x != y) \
                      /\\ (exists x, y. B(x) /\\ B(y) /\\ x != y) \
                      /\\ (exists x, y. C(x) /\\ C(y) /\\ x != y) \
                      /\\ (exists x, y. D(x) /\\ D(y) /\\ x != y)";
    let light_texts = ["A(0)", "B(1)", "C(2) /\\ D(2)", "exists x. A(x)"];
    let total = heavy + light;
    let stride = total.checked_div(heavy).unwrap_or(usize::MAX);
    let mut reqs = Vec::with_capacity(total);
    let (mut h, mut l) = (0usize, 0usize);
    for i in 0..total {
        let is_heavy = h < heavy && (i % stride == 0 || light - l == 0);
        let (text, eps) = if is_heavy {
            h += 1;
            (heavy_text, 0.001 + i as f64 * 1e-7)
        } else {
            l += 1;
            (light_texts[i % light_texts.len()], 0.05 + i as f64 * 1e-7)
        };
        let q = parse(text, pdb.schema()).map_err(|e| e.to_string())?;
        reqs.push(QueryRequest::new(q, eps));
    }
    Ok(reqs)
}

fn fnv1a(acc: u64, bits: u64) -> u64 {
    let mut h = acc;
    for b in bits.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the saturation matrix. Rows come back in
/// scheduler-major (fixed before stealing), threads-minor order.
pub fn run(config: &SaturationConfig) -> Result<Vec<SaturationRow>, String> {
    let schedulers: Vec<SchedulerKind> = match config.scheduler {
        Some(k) => vec![k],
        None => vec![SchedulerKind::Fixed, SchedulerKind::Stealing],
    };
    let pdb = saturation_pdb();
    let mut rows = Vec::new();
    for &scheduler in &schedulers {
        for &threads in &config.threads {
            let mut best: Option<SaturationRow> = None;
            for _ in 0..config.rounds.max(1) {
                let svc = QueryService::new(
                    pdb.clone(),
                    ServiceConfig {
                        threads,
                        engine: Engine::Lineage,
                        parallelism: config.parallelism,
                        scheduler,
                        ..ServiceConfig::default()
                    },
                );
                let batch = mixed_batch(&pdb, config.heavy, config.light)?;
                let requests = batch.len();
                let started = Instant::now();
                let tickets = svc.submit_batch(batch);
                let mut fingerprint = 0xCBF2_9CE4_8422_2325u64;
                for t in tickets {
                    let resp = t.wait().map_err(|e| e.to_string())?;
                    fingerprint = fnv1a(fingerprint, resp.approx.estimate.to_bits());
                }
                let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                let steals = svc
                    .metrics()
                    .steals
                    .load(std::sync::atomic::Ordering::Relaxed);
                svc.join();
                if let Some(prev) = &best {
                    if prev.fingerprint != fingerprint {
                        return Err(format!(
                            "saturation fingerprint changed across rounds:                              {:016x} vs {fingerprint:016x}",
                            prev.fingerprint
                        ));
                    }
                }
                let row = SaturationRow {
                    scheduler: scheduler.name(),
                    threads,
                    parallelism: config.parallelism,
                    requests,
                    heavy: config.heavy,
                    light: config.light,
                    wall_ns,
                    qps: requests as f64 / (wall_ns.max(1) as f64 / 1e9),
                    steals,
                    fingerprint,
                };
                if best.as_ref().is_none_or(|b| row.wall_ns < b.wall_ns) {
                    best = Some(row);
                }
            }
            rows.push(best.expect("rounds >= 1"));
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_batch_has_the_requested_composition() {
        let pdb = saturation_pdb();
        let reqs = mixed_batch(&pdb, 4, 8).unwrap();
        assert_eq!(reqs.len(), 12);
        // distinct ε everywhere: no request can be a cache hit of another
        let mut eps: Vec<u64> = reqs.iter().map(|r| r.eps.to_bits()).collect();
        eps.sort_unstable();
        eps.dedup();
        assert_eq!(eps.len(), 12);
    }

    #[test]
    fn smoke_matrix_is_bit_identical_across_schedulers() {
        let rows = run(&SaturationConfig::smoke()).unwrap();
        // both schedulers at threads = 2
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].scheduler, "fixed");
        assert_eq!(rows[1].scheduler, "stealing");
        assert_eq!(
            rows[0].fingerprint, rows[1].fingerprint,
            "stealing changed an answer"
        );
        assert_eq!(rows[0].steals, 0, "fixed scheduler cannot steal");
        for r in &rows {
            assert_eq!(r.requests, 12);
            assert!(r.qps > 0.0 && r.wall_ns > 0);
        }
    }

    #[test]
    fn scheduler_restriction_filters_the_matrix() {
        let rows = run(&SaturationConfig {
            scheduler: Some(SchedulerKind::Stealing),
            threads: vec![1],
            parallelism: 2,
            heavy: 1,
            light: 2,
            rounds: 2,
        })
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].scheduler, "stealing");
        assert_eq!(rows[0].heavy + rows[0].light, rows[0].requests);
    }
}

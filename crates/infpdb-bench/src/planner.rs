//! Cost-based planner (crossover) stage of `infpdb bench`.
//!
//! Where `harness` times the raw evaluation pipeline, this stage checks
//! the *optimizer*: four workload cells, each sitting on a different
//! side of the cost crossover, so `Engine::Auto` must route them to
//! four different strategies —
//!
//! * `safe-exists` — a safe unary query at tight ε: lifted inference
//!   beats everything;
//! * `dense-pair` — the memo-heavy pair query whose C(n,2)-clause
//!   lineage the Shannon DAG collapses, while sampling would need
//!   millions of draws at ε = 1e-3;
//! * `padded-dnf` — an irregular bipartite H1 instance over a PDB
//!   padded tens of thousands of facts deep, asked at loose ε: the
//!   Shannon trial blows its budget, world-sampling Monte-Carlo pays
//!   for every padding fact per draw, and Karp–Luby touches only the
//!   84-clause DNF;
//! * `negated-grid` — the same shape with a negated atom, which takes
//!   Karp–Luby off the table (no monotone DNF) and leaves Monte-Carlo
//!   as the only cheap estimator.
//!
//! For every cell the stage times the Auto plan *and* each strategy
//! forced across the whole query (same sample counts and seeds the
//! optimizer would assign, via [`PlanProfile::force`]), so the
//! checked-in artifact shows Auto matching the fastest explicit engine
//! in every cell. A forced plan whose estimated cost exceeds
//! [`SKIP_FACTOR`] × the Auto plan's is recorded with its estimate but
//! not executed (`median_ns: null`, `skipped: true`) — the artifact
//! says so rather than silently dropping the cell.

use std::hint::black_box;

use infpdb_finite::plan::{evaluate_plan, ChosenPlan};
use infpdb_logic::compile::CompiledQuery;
use infpdb_logic::parse;
use infpdb_query::cancel::CancelToken;
use infpdb_query::planner::{self, PlanKnobs, PlanProfile, ProfileOutcome, StrategyKind};
use infpdb_query::truncate::TruncationPlan;
use infpdb_ti::construction::CountableTiPdb;

use crate::harness::{run_timed, IterPolicy};
use crate::{geometric_pdb, grid_pdb, padded_sparse_grid_pdb};

/// A forced plan costing more than this many times the Auto plan is
/// recorded but not executed.
pub const SKIP_FACTOR: f64 = 1024.0;

/// The stage's planner knobs: defaults except `sampling_fraction`,
/// raised so the loose-ε cells grant their samplers a budget worth
/// sampling under (the knobs fingerprint rides along in the artifact's
/// provenance via the plan choice fingerprints).
pub fn stage_knobs() -> PlanKnobs {
    PlanKnobs {
        sampling_fraction: 0.8,
        ..PlanKnobs::default()
    }
}

/// Planner-stage configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Smoke mode: one iteration per measurement, no warmup.
    pub smoke: bool,
}

/// One strategy forced across every component of a cell's query.
#[derive(Debug, Clone)]
pub struct ForcedRun {
    /// `"lifted"`, `"shannon"`, `"mc"`, or `"kl"`.
    pub strategy: &'static str,
    /// Total estimated cost of the forced plan; `None` when some
    /// component is ineligible for the strategy.
    pub cost: Option<f64>,
    /// Median wall-clock ns; `None` when ineligible or skipped.
    pub median_ns: Option<u64>,
    /// Timed iterations behind the median (0 when not executed).
    pub iters: usize,
    /// The probability the forced plan computes.
    pub estimate: Option<f64>,
    /// The plan was eligible but cost-capped out of execution.
    pub skipped: bool,
}

/// One crossover cell: the Auto plan's choice and timing, plus every
/// forced-strategy baseline.
#[derive(Debug, Clone)]
pub struct PlannerRow {
    /// Cell name (`"safe-exists"`, `"dense-pair"`, `"padded-dnf"`,
    /// `"negated-grid"`).
    pub cell: &'static str,
    /// The query text.
    pub query: &'static str,
    /// Tolerance the cell is asked at.
    pub eps: f64,
    /// Evaluation-prefix length `n(ε)`.
    pub n_eval: usize,
    /// The Auto plan's strategy label (`PlanSummary::label`).
    pub chosen: &'static str,
    /// The Auto plan's total estimated cost.
    pub auto_cost: f64,
    /// Median wall-clock ns of the Auto plan.
    pub auto_median_ns: u64,
    /// Timed iterations behind the Auto median.
    pub auto_iters: usize,
    /// The probability the Auto plan computes.
    pub auto_estimate: f64,
    /// [`ChosenPlan::choice_fingerprint`] of the Auto plan — what the
    /// CI cross-process determinism check compares.
    pub choice_fingerprint: u64,
    /// Forced baselines, always in lifted/shannon/mc/kl order.
    pub forced: Vec<ForcedRun>,
}

struct Cell {
    name: &'static str,
    query: &'static str,
    eps: f64,
    pdb: CountableTiPdb,
}

fn cells() -> Vec<Cell> {
    vec![
        Cell {
            name: "safe-exists",
            query: "exists x. R(x)",
            eps: 1e-3,
            pdb: geometric_pdb(),
        },
        Cell {
            name: "dense-pair",
            query: "exists x, y. R(x) /\\ R(y) /\\ x != y",
            eps: 1e-3,
            pdb: geometric_pdb(),
        },
        Cell {
            name: "padded-dnf",
            query: "exists x, y. R(x) /\\ S(x,y) /\\ T(y)",
            eps: 0.45,
            pdb: padded_sparse_grid_pdb(14, 6, 0xb5, 40),
        },
        Cell {
            name: "negated-grid",
            query: "exists x, y. R(x) /\\ S(x,y) /\\ !T(y)",
            eps: 0.45,
            pdb: grid_pdb(8),
        },
    ]
}

fn total_cost(plan: &ChosenPlan) -> f64 {
    plan.components.iter().map(|c| c.cost).sum()
}

/// Times `plan` end to end (grounding + evaluation inside the timer; the
/// truncation prefix at the plan's own `eps_trunc` is materialized once
/// outside it). Returns `(median_ns, iters, estimate)`.
fn measure_plan(
    pdb: &CountableTiPdb,
    compiled: &CompiledQuery,
    plan: &ChosenPlan,
    policy: IterPolicy,
) -> Result<(u64, usize, f64), String> {
    let trunc = TruncationPlan::new(pdb, plan.eps_trunc).map_err(|e| e.to_string())?;
    let table = &trunc.table;
    let eval = || -> Result<f64, String> {
        evaluate_plan(compiled, plan, table, 1, None)
            .map_err(|e| e.to_string())?
            .map(|(p, _)| p)
            .ok_or_else(|| "uncancellable run cancelled".into())
    };
    let estimate = eval()?;
    let (median_ns, iters) = run_timed(
        policy,
        || (),
        |()| {
            black_box(eval().expect("probed"));
        },
    );
    Ok((median_ns, iters, estimate))
}

/// Runs the four crossover cells: profiles once per cell, times the
/// Auto plan, then every eligible forced-strategy plan under the cost
/// cap.
pub fn run(config: &PlannerConfig) -> Result<Vec<PlannerRow>, String> {
    let knobs = stage_knobs();
    let policy = IterPolicy::for_smoke(config.smoke);
    let mut rows = Vec::new();
    for cell in cells() {
        let query = parse(cell.query, cell.pdb.schema()).map_err(|e| e.to_string())?;
        let compiled = CompiledQuery::compile(cell.pdb.schema(), &query);
        let cancel = CancelToken::new();
        let profile = match PlanProfile::build_oneshot(&cell.pdb, &compiled, &knobs, &cancel)
            .map_err(|e| e.to_string())?
        {
            ProfileOutcome::Ready(p) => p,
            ProfileOutcome::Cancelled { .. } => unreachable!("a fresh token never fires"),
        };
        let n_eval = planner::eval_prefix_len(&cell.pdb, cell.eps).map_err(|e| e.to_string())?;
        let auto = profile.choose(cell.eps, n_eval, &knobs);
        let auto_cost = total_cost(&auto);

        let mut forced = Vec::with_capacity(4);
        for kind in [
            StrategyKind::Lifted,
            StrategyKind::Shannon,
            StrategyKind::MonteCarlo,
            StrategyKind::KarpLuby,
        ] {
            let run = match profile.force(kind, cell.eps, n_eval, &knobs) {
                None => ForcedRun {
                    strategy: kind.name(),
                    cost: None,
                    median_ns: None,
                    iters: 0,
                    estimate: None,
                    skipped: false,
                },
                Some(plan) => {
                    let cost = total_cost(&plan);
                    if cost > SKIP_FACTOR * auto_cost {
                        ForcedRun {
                            strategy: kind.name(),
                            cost: Some(cost),
                            median_ns: None,
                            iters: 0,
                            estimate: None,
                            skipped: true,
                        }
                    } else {
                        let (ns, iters, estimate) =
                            measure_plan(&cell.pdb, &compiled, &plan, policy)?;
                        ForcedRun {
                            strategy: kind.name(),
                            cost: Some(cost),
                            median_ns: Some(ns),
                            iters,
                            estimate: Some(estimate),
                            skipped: false,
                        }
                    }
                }
            };
            forced.push(run);
        }
        // the Auto plan is timed last, adjacent to its forced twin, so
        // the two medians see the same cache/allocator state and their
        // comparison is apples to apples
        let (auto_median_ns, auto_iters, auto_estimate) =
            measure_plan(&cell.pdb, &compiled, &auto, policy)?;
        rows.push(PlannerRow {
            cell: cell.name,
            query: cell.query,
            eps: cell.eps,
            n_eval,
            chosen: auto.summary().label(),
            auto_cost,
            auto_median_ns,
            auto_iters,
            auto_estimate,
            choice_fingerprint: auto.choice_fingerprint(),
            forced,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The crossover is the stage's reason to exist: each cell must
    /// route to its own strategy, deterministically — a re-run
    /// reproduces every choice fingerprint and every answer bit.
    #[test]
    fn smoke_stage_covers_the_crossover_and_is_deterministic() {
        let rows = run(&PlannerConfig { smoke: true }).unwrap();
        assert_eq!(rows.len(), 4);
        let by_cell: Vec<(&str, &str)> = rows.iter().map(|r| (r.cell, r.chosen)).collect();
        assert_eq!(
            by_cell,
            vec![
                ("safe-exists", "lifted"),
                ("dense-pair", "shannon"),
                ("padded-dnf", "kl"),
                ("negated-grid", "mc"),
            ]
        );
        for r in &rows {
            assert!(r.auto_median_ns > 0, "{}: unmeasured auto plan", r.cell);
            assert_eq!(r.forced.len(), 4);
            // the auto plan IS the forced twin of its chosen strategy:
            // same cost, same answer bits (same seeds)
            let twin = r
                .forced
                .iter()
                .find(|f| f.strategy == r.chosen)
                .expect("chosen strategy appears among the forced runs");
            assert_eq!(twin.cost, Some(r.auto_cost), "{}", r.cell);
            assert!(
                !twin.skipped,
                "{}: chosen strategy can never be capped",
                r.cell
            );
            assert_eq!(
                twin.estimate.map(f64::to_bits),
                Some(r.auto_estimate.to_bits()),
                "{}",
                r.cell
            );
            // eligibility is recorded, not silently dropped: every
            // forced entry either has a cost or is marked ineligible
            for f in &r.forced {
                assert_eq!(f.median_ns.is_some(), f.cost.is_some() && !f.skipped);
            }
        }
        // Karp–Luby must be ineligible (no monotone DNF) on the negated
        // cell, and lifted on both unsafe grid cells
        let negated = &rows[3];
        assert!(negated
            .forced
            .iter()
            .any(|f| f.strategy == "kl" && f.cost.is_none()));
        assert!(rows[2]
            .forced
            .iter()
            .any(|f| f.strategy == "lifted" && f.cost.is_none()));

        let again = run(&PlannerConfig { smoke: true }).unwrap();
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.choice_fingerprint, b.choice_fingerprint, "{}", a.cell);
            assert_eq!(a.chosen, b.chosen, "{}", a.cell);
            assert_eq!(
                a.auto_estimate.to_bits(),
                b.auto_estimate.to_bits(),
                "{}",
                a.cell
            );
        }
    }
}

//! Approximate evaluation of queries with free variables.
//!
//! Section 6, closing remark: "from `Q(~x)` we obtain `|adom(Ω_n)|^k` many
//! sentences `Q(~a)` by plugging in all the possible valuations … The
//! probability of `~a` to belong to the output of the query is equal to
//! the probability of the sentence `Q(~a)` being satisfied"; each is then
//! approximated additively by Proposition 6.1. Note (per the paper) the
//! answer tuples considered are those over `adom(Ω_n)` — tuples mentioning
//! only discarded facts contribute at most the tail mass anyway.

use crate::truncate::TruncationPlan;
use crate::QueryError;
use infpdb_core::value::Value;
use infpdb_finite::engine::{self, Engine};
use infpdb_logic::ast::Formula;
use infpdb_ti::construction::CountableTiPdb;

/// One approximate answer tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxAnswer {
    /// The valuation of the free variables (sorted variable order).
    pub tuple: Vec<Value>,
    /// Additive-ε estimate of `Pr(~a ∈ Q(D))`.
    pub prob: f64,
}

/// Approximates the marginal probability of every answer tuple over
/// `adom(Ω_n) ∪ adom(Q)`, each within additive ε. Tuples whose estimate is
/// 0 are omitted (their true probability is at most ε).
pub fn approx_answers(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
) -> Result<Vec<ApproxAnswer>, QueryError> {
    let plan = TruncationPlan::new(pdb, eps)?;
    approx_answers_with_plan(&plan, query, finite_engine)
}

/// [`approx_answers`] with a reusable plan.
pub fn approx_answers_with_plan(
    plan: &TruncationPlan,
    query: &Formula,
    finite_engine: Engine,
) -> Result<Vec<ApproxAnswer>, QueryError> {
    let marginals = engine::answer_marginals(query, &plan.table, finite_engine)?;
    Ok(marginals
        .into_iter()
        .map(|(tuple, prob)| ApproxAnswer { tuple, prob })
        .collect())
}

/// The `k` most probable answer tuples, sorted descending by estimated
/// marginal (ties by tuple order). The ranking is correct up to the
/// additive ε of the underlying estimates: answers whose true marginals
/// differ by more than `2ε` cannot swap places.
pub fn top_k_answers(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    k: usize,
    finite_engine: Engine,
) -> Result<Vec<ApproxAnswer>, QueryError> {
    let mut answers = approx_answers(pdb, query, eps, finite_engine)?;
    answers.sort_by(|a, b| {
        b.prob
            .partial_cmp(&a.prob)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.tuple.cmp(&b.tuple))
    });
    answers.truncate(k);
    Ok(answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_logic::parse;
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::enumerator::FactSupply;

    fn pdb() -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema,
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    #[test]
    fn answers_recover_fact_marginals() {
        let p = pdb();
        let q = parse("R(x)", p.schema()).unwrap();
        let ans = approx_answers(&p, &q, 0.01, Engine::Auto).unwrap();
        // answers are R(1) … R(n) with marginal = fact probability, exact
        // here (each sentence R(a) has exact probability on the prefix)
        assert!(ans.len() >= 7);
        let first = ans
            .iter()
            .find(|a| a.tuple == vec![Value::int(1)])
            .expect("R(1) answered");
        assert!((first.prob - 0.5).abs() <= 0.01);
        let third = ans
            .iter()
            .find(|a| a.tuple == vec![Value::int(3)])
            .expect("R(3) answered");
        assert!((third.prob - 0.125).abs() <= 0.01);
    }

    #[test]
    fn answers_only_range_over_prefix_adom() {
        let p = pdb();
        let q = parse("R(x)", p.schema()).unwrap();
        let eps = 0.1;
        let ans = approx_answers(&p, &q, eps, Engine::Auto).unwrap();
        // every answered tuple is within the truncated active domain, and
        // omitted facts have probability ≤ tail mass ≤ ε
        let plan = TruncationPlan::new(&p, eps).unwrap();
        for a in &ans {
            let v = a.tuple[0].as_int().unwrap();
            assert!(v as usize <= plan.n());
        }
        assert!(p.marginal_at(plan.n()) <= eps);
    }

    #[test]
    fn boolean_queries_degenerate_to_unit_answers() {
        let p = pdb();
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let ans = approx_answers(&p, &q, 0.05, Engine::Auto).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans[0].tuple.is_empty());
        assert!(ans[0].prob > 0.6);
    }

    #[test]
    fn two_variable_query() {
        let p = pdb();
        // pairs (x, y) with both facts present: independent product
        let q = parse("R(x) /\\ R(y)", p.schema()).unwrap();
        let ans = approx_answers(&p, &q, 0.05, Engine::Auto).unwrap();
        let find = |a: i64, b: i64| {
            ans.iter()
                .find(|t| t.tuple == vec![Value::int(a), Value::int(b)])
                .map(|t| t.prob)
                .expect("pair answered")
        };
        assert!((find(1, 2) - 0.125).abs() <= 0.05);
        assert!((find(1, 1) - 0.5).abs() <= 0.05);
    }

    #[test]
    fn top_k_ranks_by_marginal() {
        let p = pdb();
        let q = parse("R(x)", p.schema()).unwrap();
        let top = top_k_answers(&p, &q, 0.001, 3, Engine::Auto).unwrap();
        assert_eq!(top.len(), 3);
        // geometric marginals rank R(1) > R(2) > R(3)
        assert_eq!(top[0].tuple, vec![Value::int(1)]);
        assert_eq!(top[1].tuple, vec![Value::int(2)]);
        assert_eq!(top[2].tuple, vec![Value::int(3)]);
        assert!(top[0].prob > top[1].prob && top[1].prob > top[2].prob);
        // k beyond the support is fine
        let all = top_k_answers(&p, &q, 0.01, 10_000, Engine::Auto).unwrap();
        assert!(all.len() < 10_000);
    }

    #[test]
    fn plan_reuse() {
        let p = pdb();
        let plan = TruncationPlan::new(&p, 0.05).unwrap();
        let q = parse("R(x)", p.schema()).unwrap();
        let a = approx_answers_with_plan(&plan, &q, Engine::Auto).unwrap();
        let b = approx_answers(&p, &q, 0.05, Engine::Auto).unwrap();
        assert_eq!(a, b);
    }
}

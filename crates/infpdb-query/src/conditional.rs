//! Conditional and aggregate approximate queries.
//!
//! Extensions beyond the paper's Section 6, built from the same primitive:
//!
//! * [`approx_conditional`] — `P(Q | C)` for Boolean FO queries `Q`, `C`:
//!   both `P(Q ∧ C)` and `P(C)` are approximated within a sub-tolerance
//!   and the quotient's error is propagated soundly. Conditioning is the
//!   natural next operation once completions exist ("given that the
//!   database is consistent with X, how likely is Y?").
//! * [`approx_expected_answers`] — `E[|Q(D)|]` for a free-variable query:
//!   by linearity of expectation this is the sum of the per-tuple marginal
//!   probabilities, each approximated within ε, over `adom(Ω_n)`.

use crate::approx::approx_with_plan;
use crate::truncate::TruncationPlan;
use crate::QueryError;
use infpdb_finite::engine::Engine;
use infpdb_logic::ast::Formula;
use infpdb_math::ProbInterval;
use infpdb_ti::construction::CountableTiPdb;

/// A conditional-probability estimate with a certified enclosure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConditionalEstimate {
    /// Point estimate of `P(Q | C)` (midpoint of the enclosure).
    pub estimate: f64,
    /// Certified enclosure of the true conditional probability.
    pub interval: ProbInterval,
    /// The sub-tolerance used for the two unconditional evaluations.
    pub eps_inner: f64,
}

/// Approximates `P(Q | C) = P(Q ∧ C) / P(C)` with certified error
/// propagation: the numerator and denominator each get an additive
/// `eps_inner` guarantee (Proposition 6.1), and interval division yields a
/// sound enclosure. Errors if the denominator's certified interval
/// contains 0 (the condition may be null — tighten `eps_inner`).
pub fn approx_conditional(
    pdb: &CountableTiPdb,
    query: &Formula,
    condition: &Formula,
    eps_inner: f64,
    engine: Engine,
) -> Result<ConditionalEstimate, QueryError> {
    let plan = TruncationPlan::new(pdb, eps_inner)?;
    let joint_formula = query.clone().and(condition.clone());
    let joint = approx_with_plan(&plan, &joint_formula, engine)?;
    let cond = approx_with_plan(&plan, condition, engine)?;
    let joint_iv = joint.interval();
    let cond_iv = cond.interval();
    if cond_iv.lo() <= 0.0 {
        return Err(QueryError::Math(infpdb_math::MathError::BadTolerance(
            eps_inner,
        )));
    }
    let interval = joint_iv.divide_conditional(&cond_iv);
    Ok(ConditionalEstimate {
        estimate: interval.midpoint(),
        interval,
        eps_inner,
    })
}

/// Approximates the expected number of answers `E[|Q(D)|]` of a
/// free-variable query: `∑_{~a} Pr(~a ∈ Q(D))`, each marginal within ε.
/// Returns `(lower, upper)` where the true expectation restricted to
/// tuples over `adom(Ω_n)` lies inside; tuples outside contribute at most
/// `k · tail_mass · |answers|`-style mass, which for unary queries is
/// bounded by the reported `tail_allowance`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedAnswers {
    /// Sum of estimated per-tuple marginals.
    pub estimate: f64,
    /// Number of tuples with positive estimated marginal.
    pub support: usize,
    /// Additive slack per tuple (the ε used).
    pub per_tuple_eps: f64,
    /// Upper bound on mass contributed by answers entirely outside the
    /// truncation (the discarded tail mass).
    pub tail_allowance: f64,
}

/// See [`ExpectedAnswers`].
pub fn approx_expected_answers(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    engine: Engine,
) -> Result<ExpectedAnswers, QueryError> {
    let plan = TruncationPlan::new(pdb, eps)?;
    let answers = crate::marginal::approx_answers_with_plan(&plan, query, engine)?;
    let estimate = infpdb_math::KahanSum::sum_iter(answers.iter().map(|a| a.prob));
    Ok(ExpectedAnswers {
        estimate,
        support: answers.len(),
        per_tuple_eps: eps,
        tail_allowance: plan.truncation.tail_mass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_logic::parse;
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::enumerator::FactSupply;

    fn pdb() -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema,
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    #[test]
    fn conditional_on_independent_facts_is_unconditional() {
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        let c = parse("R(2)", p.schema()).unwrap();
        let e = approx_conditional(&p, &q, &c, 0.01, Engine::Auto).unwrap();
        // independence: P(R(1) | R(2)) = P(R(1)) = 0.5
        assert!(e.interval.contains(0.5), "0.5 ∉ {}", e.interval);
        assert!((e.estimate - 0.5).abs() < 0.1);
    }

    #[test]
    fn conditional_on_itself_is_one() {
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        let e = approx_conditional(&p, &q, &q, 0.01, Engine::Auto).unwrap();
        assert!(e.interval.contains(1.0));
        assert!(e.estimate > 0.9);
    }

    #[test]
    fn conditional_on_disjoint_event_is_zero() {
        let p = pdb();
        let q = parse("!R(1)", p.schema()).unwrap();
        let c = parse("R(1)", p.schema()).unwrap();
        let e = approx_conditional(&p, &q, &c, 0.01, Engine::Auto).unwrap();
        assert!(e.interval.contains(0.0));
        assert!(e.estimate < 0.1);
    }

    #[test]
    fn conditional_with_nontrivial_structure() {
        let p = pdb();
        // P(R(1) | ∃x R(x)) = P(R(1)) / P(∃x R(x)) since R(1) ⊆ ∃x R(x)
        let q = parse("R(1)", p.schema()).unwrap();
        let c = parse("exists x. R(x)", p.schema()).unwrap();
        let e = approx_conditional(&p, &q, &c, 0.005, Engine::Auto).unwrap();
        let mut none = 1.0;
        for i in 0..1000 {
            none *= 1.0 - p.supply().prob(i);
        }
        let truth = 0.5 / (1.0 - none);
        assert!(e.interval.contains(truth), "{truth} ∉ {}", e.interval);
    }

    #[test]
    fn near_null_condition_rejected() {
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        // R(40) has probability 2^-40 ≈ 0: the certified denominator
        // interval straddles 0 at any reasonable ε
        let c = parse("R(40)", p.schema()).unwrap();
        assert!(approx_conditional(&p, &q, &c, 0.01, Engine::Auto).is_err());
    }

    #[test]
    fn expected_answers_matches_expected_size_for_r_x() {
        let p = pdb();
        // E[|{x : R(x)}|] = E(S_D) = 1 for this PDB
        let q = parse("R(x)", p.schema()).unwrap();
        let e = approx_expected_answers(&p, &q, 0.001, Engine::Auto).unwrap();
        assert!(
            (e.estimate - 1.0).abs() < 0.01,
            "estimate {} should be ≈ 1",
            e.estimate
        );
        assert!(e.support >= 10);
        assert!(e.tail_allowance <= 0.001);
    }

    #[test]
    fn expected_answers_of_empty_query() {
        let p = pdb();
        let q = parse("R(x) /\\ false", p.schema()).unwrap();
        let e = approx_expected_answers(&p, &q, 0.01, Engine::Auto).unwrap();
        assert_eq!(e.estimate, 0.0);
        assert_eq!(e.support, 0);
    }
}

//! Monte-Carlo query evaluation on countably infinite t.i. PDBs.
//!
//! An alternative to the exact-on-the-truncation route of Proposition 6.1,
//! pointing at the paper's outlook ("combine classical database techniques
//! with probabilistic inference techniques from AI"): sample instances
//! from an ε-truncated sampler and evaluate the query per world. The total
//! additive error splits into
//!
//! * the truncation's total-variation distance (certified ≤ `tv_bound`),
//!   and
//! * the Hoeffding half-width of the sample mean.
//!
//! Useful when the query is expensive for exact inference even on the
//! truncated table (deeply quantified FO), since per-world evaluation is
//! just model checking.

use crate::QueryError;
use infpdb_core::space::rand_core::RngCore;
use infpdb_core::storage::InstanceStore;
use infpdb_logic::ast::Formula;
use infpdb_logic::eval::Evaluator;
use infpdb_logic::vars::free_vars;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::sampler::TruncatedSampler;

/// A sampled estimate with its two-part error budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledEstimate {
    /// The sample mean.
    pub estimate: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Certified total-variation contribution from truncation.
    pub tv_bound: f64,
    /// 95%-confidence Hoeffding half-width of the sample mean.
    pub hoeffding_half_width: f64,
}

impl SampledEstimate {
    /// The combined additive error budget (TV + Hoeffding at 95%).
    pub fn total_error(&self) -> f64 {
        self.tv_bound + self.hoeffding_half_width
    }
}

/// Estimates `P(Q)` by sampling `samples` instances from an ε-truncated
/// sampler with `tv_bound` total-variation slack.
pub fn sample_prob_boolean<R: RngCore>(
    pdb: &CountableTiPdb,
    query: &Formula,
    tv_bound: f64,
    samples: usize,
    rng: &mut R,
) -> Result<SampledEstimate, QueryError> {
    let fv = free_vars(query);
    if !fv.is_empty() {
        return Err(QueryError::Logic(infpdb_logic::LogicError::NotASentence(
            fv.into_iter().collect(),
        )));
    }
    assert!(samples > 0, "need at least one sample");
    let sampler = TruncatedSampler::new(pdb, tv_bound)?;
    let schema = pdb.schema();
    let mut hits = 0usize;
    for _ in 0..samples {
        let world = sampler.sample(rng);
        let store = InstanceStore::build(&world, sampler.table().interner(), schema);
        if Evaluator::new(&store, query)
            .eval_sentence(query)
            .expect("sentence checked")
        {
            hits += 1;
        }
    }
    let hoeffding_half_width = ((2.0f64 / 0.05).ln() / (2.0 * samples as f64)).sqrt();
    Ok(SampledEstimate {
        estimate: hits as f64 / samples as f64,
        samples,
        tv_bound,
        hoeffding_half_width,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_prob_boolean;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::space::rand_core::SplitMix64;
    use infpdb_finite::engine::Engine;
    use infpdb_logic::parse;
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::enumerator::FactSupply;

    fn pdb() -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema,
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    #[test]
    fn sampled_estimate_agrees_with_exact_truncation_route() {
        let p = pdb();
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let exact = approx_prob_boolean(&p, &q, 0.001, Engine::Auto).unwrap();
        let mut rng = SplitMix64::new(13);
        let s = sample_prob_boolean(&p, &q, 0.001, 30_000, &mut rng).unwrap();
        assert!(
            (s.estimate - exact.estimate).abs() <= s.total_error() + exact.eps,
            "sampled {} vs exact {}",
            s.estimate,
            exact.estimate
        );
        assert!(s.total_error() < 0.02);
    }

    #[test]
    fn works_on_queries_outside_every_exact_fast_path() {
        // deeply quantified with negation: fine for per-world evaluation
        let p = pdb();
        let q = parse(
            "forall x. (R(x) -> exists y. (R(y) /\\ !(x = y))) \\/ !(exists z. R(z))",
            p.schema(),
        )
        .unwrap();
        let mut rng = SplitMix64::new(14);
        let s = sample_prob_boolean(&p, &q, 0.005, 10_000, &mut rng).unwrap();
        // cross-check against the exact route
        let exact = approx_prob_boolean(&p, &q, 0.005, Engine::Auto).unwrap();
        assert!(
            (s.estimate - exact.estimate).abs() <= s.total_error() + exact.eps + 0.01,
            "sampled {} vs exact {}",
            s.estimate,
            exact.estimate
        );
    }

    #[test]
    fn error_budget_components() {
        let p = pdb();
        let q = parse("R(1)", p.schema()).unwrap();
        let mut rng = SplitMix64::new(15);
        let s = sample_prob_boolean(&p, &q, 0.01, 1000, &mut rng).unwrap();
        assert_eq!(s.tv_bound, 0.01);
        assert!(s.hoeffding_half_width > 0.0);
        assert!((s.total_error() - (0.01 + s.hoeffding_half_width)).abs() < 1e-15);
        assert!((s.estimate - 0.5).abs() < 0.06);
    }

    #[test]
    fn rejects_free_variables() {
        let p = pdb();
        let q = parse("R(x)", p.schema()).unwrap();
        let mut rng = SplitMix64::new(16);
        assert!(sample_prob_boolean(&p, &q, 0.01, 10, &mut rng).is_err());
    }
}

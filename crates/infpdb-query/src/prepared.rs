//! The execute phase of the prepared-query pipeline.
//!
//! Proposition 6.1 splits naturally: the truncation length `n(ε)` and the
//! prefix `Ω_n` depend only on the PDB's probability series, never on the
//! query. A [`PreparedPdb`] exploits that by materializing the
//! enumeration prefix once into a shared
//! [`FactCatalog`] behind an `Arc`, and
//! memoizing the `TiTable` snapshots it hands out per prefix length.
//! Repeat executions — the same query again, a different query, or the
//! same query at a tightened ε — reuse the catalog:
//!
//! * a **repeat at the same ε** takes the memoized `Arc<TiTable>` and
//!   pays zero grounding cost;
//! * an **ε-refinement** extends the catalog by the missing facts only
//!   (ids never move: the catalog is append-only), then snapshots;
//! * a **different query** shares everything, because the prefix is
//!   query-independent.
//!
//! Execution stays bit-for-bit identical to the one-shot
//! [`approx_prob_boolean_cancellable_traced`](crate::approx::approx_prob_boolean_cancellable_traced)
//! path: snapshots contain
//! exactly the facts, dense ids, and probability bits the one-shot
//! truncation loop produces, the *original* (unnormalized) formula is
//! evaluated, and the engine choice is passed through untouched. The
//! lineage arena is still built per evaluation — sharing it would change
//! the reported work counters; the shared artifact is the fact catalog.
//!
//! Cancellation semantics also mirror the one-shot path: catalog
//! extension checkpoints the [`CancelToken`] every
//! [`CHECK_EVERY`] facts, and a cancelled
//! execution can still certify a sound partial answer via
//! [`partial_certificate`]. When the catalog was pre-warmed past the
//! cancellation point, the partial answer uses everything materialized —
//! at least as tight as the one-shot partial.

use crate::approx::{Approximation, PartialOnCancel};
use crate::cancel::{CancelInfo, CancelKind, CancelToken, CHECK_EVERY};
use crate::planner::{self, PlanEvent, PlanKnobs, PlanProfile, Planner, ProfileOutcome};
use crate::truncate::partial_certificate;
use crate::QueryError;
use infpdb_finite::engine::{self, Engine, EvalTrace};
use infpdb_finite::plan::{evaluate_plan, ChosenPlan};
use infpdb_finite::TiTable;
use infpdb_logic::ast::Formula;
use infpdb_logic::compile::CompiledQuery;
use infpdb_math::truncation::{self, Truncation};
use infpdb_ti::catalog::FactCatalog;
use infpdb_ti::construction::CountableTiPdb;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Memoized prefix snapshots kept per distinct length before the memo is
/// reset (a safety valve against unbounded growth under adversarial ε
/// sequences; the catalog itself is never discarded).
const TABLE_MEMO_CAP: usize = 64;

#[derive(Debug)]
struct State {
    catalog: FactCatalog,
    tables: HashMap<usize, Arc<TiTable>>,
}

#[derive(Debug)]
struct Inner {
    pdb: CountableTiPdb,
    state: Mutex<State>,
}

/// A countable t.i. PDB prepared for repeat evaluation: a shared,
/// lazily-extended fact catalog plus memoized prefix tables. Cloning is
/// cheap and clones share the catalog.
#[derive(Debug, Clone)]
pub struct PreparedPdb {
    inner: Arc<Inner>,
}

/// The outcome of slicing a prepared prefix at some ε: the snapshot plus
/// its Proposition 6.1 certificates, or the state at the moment a
/// cancellation checkpoint fired.
#[derive(Debug)]
pub enum PreparedPrefix {
    /// The prefix is materialized and snapshotted.
    Complete {
        /// The certificates (`n`, tail mass, `α_n`).
        truncation: Truncation,
        /// The shared `Ω_n` table (ids = enumeration indexes).
        table: Arc<TiTable>,
    },
    /// A checkpoint stopped catalog extension mid-loop.
    Cancelled {
        /// What fired the checkpoint.
        kind: CancelKind,
        /// Facts materialized and available to a partial answer.
        facts_processed: usize,
        /// The partial prefix table over those facts.
        partial_table: TiTable,
    },
}

impl PreparedPdb {
    /// Wraps a PDB for prepared evaluation. Nothing is materialized until
    /// the first slice request (or an explicit [`warm`](Self::warm)).
    pub fn new(pdb: CountableTiPdb) -> Self {
        let state = State {
            catalog: FactCatalog::new(pdb.schema().clone()),
            tables: HashMap::new(),
        };
        PreparedPdb {
            inner: Arc::new(Inner {
                pdb,
                state: Mutex::new(state),
            }),
        }
    }

    /// The underlying PDB.
    pub fn pdb(&self) -> &CountableTiPdb {
        &self.inner.pdb
    }

    /// Facts materialized into the shared catalog so far.
    pub fn materialized_len(&self) -> usize {
        self.lock_state().catalog.len()
    }

    /// Eagerly materializes the `n(ε_max)` prefix (and memoizes its
    /// snapshot), so the first request at any `ε ≥ ε_max` pays no
    /// grounding cost. Returns `n(ε_max)`.
    pub fn warm(&self, eps_max: f64) -> Result<usize, QueryError> {
        match self.prefix_for(eps_max, &CancelToken::new())? {
            PreparedPrefix::Complete { truncation, .. } => Ok(truncation.n),
            PreparedPrefix::Cancelled { .. } => {
                unreachable!("a fresh token never fires")
            }
        }
    }

    /// A point-in-time copy of the shared catalog — the artifact the
    /// durable store serializes (see [`crate::persist`]).
    pub fn catalog_snapshot(&self) -> FactCatalog {
        self.lock_state().catalog.clone()
    }

    /// Installs a restored catalog. Only an empty, untouched prepared
    /// PDB may adopt (the restore path runs before any grounding);
    /// returns `false` without touching anything otherwise.
    pub(crate) fn adopt_catalog(&self, catalog: FactCatalog) -> bool {
        let mut state = self.lock_state();
        if !state.catalog.is_empty() || !state.tables.is_empty() {
            return false;
        }
        state.catalog = catalog;
        true
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        // a panic while extending leaves the catalog consistent (push is
        // all-or-nothing), so recover instead of propagating the poison
        self.inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Slices the prepared prefix at the ε-appropriate `n`, extending the
    /// shared catalog if this ε needs more facts than any before it.
    ///
    /// The returned table is byte-identical to what the one-shot
    /// truncation loop builds for the same ε; the token is checkpointed
    /// every [`CHECK_EVERY`] facts during extension, exactly like the
    /// one-shot loop.
    pub fn prefix_for(&self, eps: f64, cancel: &CancelToken) -> Result<PreparedPrefix, QueryError> {
        if let Err(kind) = cancel.check() {
            return Ok(PreparedPrefix::Cancelled {
                kind,
                facts_processed: 0,
                partial_table: TiTable::new(self.pdb().schema().clone()),
            });
        }
        let supply = self.pdb().supply();
        let truncation = truncation::for_tolerance(supply, eps)?;
        let cap = supply.support_len().unwrap_or(usize::MAX).min(truncation.n);
        let mut state = self.lock_state();
        if let Some(table) = state.tables.get(&cap) {
            return Ok(PreparedPrefix::Complete {
                truncation,
                table: Arc::clone(table),
            });
        }
        let start = state.catalog.len();
        for i in start..cap {
            if i % CHECK_EVERY == 0 {
                if let Err(kind) = cancel.check() {
                    let partial_table = state.catalog.table_prefix(i);
                    return Ok(PreparedPrefix::Cancelled {
                        kind,
                        facts_processed: i,
                        partial_table,
                    });
                }
            }
            state.catalog.push(supply.fact(i), supply.prob(i))?;
        }
        let table = Arc::new(state.catalog.table_prefix(cap));
        if state.tables.len() >= TABLE_MEMO_CAP {
            state.tables.clear();
        }
        state.tables.insert(cap, Arc::clone(&table));
        Ok(PreparedPrefix::Complete { truncation, table })
    }
}

/// Proposition 6.1 evaluation against a [`PreparedPdb`]: bit-for-bit the
/// same result (estimate, certificates, and engine work counters) as
/// [`approx_prob_boolean_cancellable_traced`], with the grounding cost
/// amortized across executions.
///
/// [`approx_prob_boolean_cancellable_traced`]: crate::approx::approx_prob_boolean_cancellable_traced
pub fn execute_prepared(
    prepared: &PreparedPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
    cancel: &CancelToken,
    partial_policy: PartialOnCancel,
) -> Result<(Approximation, EvalTrace), QueryError> {
    execute_prepared_par(
        prepared,
        query,
        eps,
        finite_engine,
        1,
        cancel,
        partial_policy,
    )
}

/// [`execute_prepared`] with up to `parallelism` worker threads inside
/// the finite evaluation. Estimates, certificates, cancellation behavior,
/// and work counters are bit-for-bit identical at every thread count; the
/// trace additionally carries [`EvalTrace::parallel`] when
/// `parallelism ≥ 2` reaches the lineage engine.
#[allow(clippy::too_many_arguments)]
pub fn execute_prepared_par(
    prepared: &PreparedPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
    parallelism: usize,
    cancel: &CancelToken,
    partial_policy: PartialOnCancel,
) -> Result<(Approximation, EvalTrace), QueryError> {
    execute_prepared_exec(
        prepared,
        query,
        eps,
        finite_engine,
        parallelism,
        cancel,
        partial_policy,
        None,
    )
}

/// [`execute_prepared_par`] with a caller-supplied
/// [`TaskExecutor`](infpdb_finite::shannon::TaskExecutor) for the finite
/// evaluation's component tasks (the serve layer passes its work-stealing
/// scheduler here). An executor that *skips* tasks — because `cancel`
/// fired while they were queued — surfaces as the usual
/// [`QueryError::Cancelled`], including the sound-partial-answer path;
/// with `exec = None` behavior is bit-for-bit `execute_prepared_par`.
#[allow(clippy::too_many_arguments)]
pub fn execute_prepared_exec(
    prepared: &PreparedPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
    parallelism: usize,
    cancel: &CancelToken,
    partial_policy: PartialOnCancel,
    exec: Option<&dyn infpdb_finite::shannon::TaskExecutor>,
) -> Result<(Approximation, EvalTrace), QueryError> {
    if matches!(finite_engine, Engine::Auto) {
        // Engine::Auto routes through the cost-based planner; profiling
        // on the shared prefix is byte-identical to the one-shot profile,
        // so results stay bit-for-bit equal to the one-shot Auto path
        let compiled = CompiledQuery::compile(prepared.pdb().schema(), query);
        let knobs = PlanKnobs::default();
        return match PlanProfile::build_prepared(prepared, &compiled, &knobs, cancel)? {
            ProfileOutcome::Ready(profile) => {
                let planner = Planner::new(profile);
                execute_prepared_planned(
                    prepared,
                    &compiled,
                    &planner,
                    &knobs,
                    eps,
                    parallelism,
                    cancel,
                    partial_policy,
                    exec,
                )
                .map(|(a, t, _, _)| (a, t))
            }
            ProfileOutcome::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => Err(cancelled_error(
                prepared,
                query,
                Engine::Auto,
                parallelism,
                partial_policy,
                kind,
                facts_processed,
                &partial_table,
            )),
        };
    }
    let (kind, facts_processed, partial_table) = match prepared.prefix_for(eps, cancel)? {
        PreparedPrefix::Complete { truncation, table } => {
            // last checkpoint before the engine: don't start a run whose
            // budget is already spent (mirrors the one-shot path)
            match cancel.check() {
                Ok(()) => {
                    match engine::prob_boolean_traced_exec(
                        query,
                        &table,
                        finite_engine,
                        parallelism,
                        exec,
                    )? {
                        Some((estimate, trace)) => {
                            return Ok((
                                Approximation {
                                    estimate,
                                    eps,
                                    n: truncation.n,
                                    tail_mass: truncation.tail_mass,
                                },
                                trace,
                            ));
                        }
                        // the executor skipped component tasks: the
                        // request was cancelled while they were queued
                        None => {
                            let kind = cancel.cancelled_kind().unwrap_or(CancelKind::Explicit);
                            (kind, truncation.n, (*table).clone())
                        }
                    }
                }
                Err(kind) => (kind, truncation.n, (*table).clone()),
            }
        }
        PreparedPrefix::Cancelled {
            kind,
            facts_processed,
            partial_table,
        } => (kind, facts_processed, partial_table),
    };
    Err(cancelled_error(
        prepared,
        query,
        finite_engine,
        parallelism,
        partial_policy,
        kind,
        facts_processed,
        &partial_table,
    ))
}

/// The shared cancellation tail: certify and (policy permitting) evaluate
/// a sound partial answer from the facts materialized so far.
#[allow(clippy::too_many_arguments)]
pub fn cancelled_error(
    prepared: &PreparedPdb,
    query: &Formula,
    finite_engine: Engine,
    parallelism: usize,
    partial_policy: PartialOnCancel,
    kind: CancelKind,
    facts_processed: usize,
    partial_table: &TiTable,
) -> QueryError {
    let partial = match partial_policy {
        PartialOnCancel::Skip => None,
        PartialOnCancel::Evaluate => {
            partial_certificate(prepared.pdb(), facts_processed).and_then(|(trunc, eps_m)| {
                engine::prob_boolean_traced_par(query, partial_table, finite_engine, parallelism)
                    .ok()
                    .map(|(estimate, _)| Approximation {
                        estimate,
                        eps: eps_m,
                        n: trunc.n,
                        tail_mass: trunc.tail_mass,
                    })
            })
        }
    };
    QueryError::Cancelled(CancelInfo {
        kind,
        facts_processed,
        partial,
    })
}

/// Planned execution against a prepared PDB: look up (or derive) the
/// [`ChosenPlan`] for this ε from `planner`'s memo, slice the prefix at
/// the plan's `ε_trunc`, and evaluate the per-component strategies.
/// Returns the plan and a [`PlanEvent`] (memo hit / true re-plan) for the
/// serve layer's metrics. With the same PDB, query, ε, and knobs this is
/// bit-for-bit identical — answer and [`EvalTrace`] — to the one-shot
/// `Engine::Auto` path, across thread counts and schedulers.
#[allow(clippy::too_many_arguments)]
pub fn execute_prepared_planned(
    prepared: &PreparedPdb,
    compiled: &CompiledQuery,
    planner: &Planner,
    knobs: &PlanKnobs,
    eps: f64,
    parallelism: usize,
    cancel: &CancelToken,
    partial_policy: PartialOnCancel,
    exec: Option<&dyn infpdb_finite::shannon::TaskExecutor>,
) -> Result<(Approximation, EvalTrace, Arc<ChosenPlan>, PlanEvent), QueryError> {
    let n_eval = planner::eval_prefix_len(prepared.pdb(), eps)?;
    let (plan, event) = planner.plan_at(eps, n_eval, knobs);
    let query = compiled.original();
    let (kind, facts_processed, partial_table) =
        match prepared.prefix_for(plan.eps_trunc, cancel)? {
            PreparedPrefix::Complete { truncation, table } => match cancel.check() {
                Ok(()) => match evaluate_plan(compiled, &plan, &table, parallelism, exec)? {
                    Some((estimate, trace)) => {
                        return Ok((
                            Approximation {
                                estimate,
                                eps,
                                n: truncation.n,
                                tail_mass: truncation.tail_mass,
                            },
                            trace,
                            plan,
                            event,
                        ));
                    }
                    // the executor skipped component tasks: the request
                    // was cancelled while they were queued
                    None => {
                        let kind = cancel.cancelled_kind().unwrap_or(CancelKind::Explicit);
                        (kind, truncation.n, (*table).clone())
                    }
                },
                Err(kind) => (kind, truncation.n, (*table).clone()),
            },
            PreparedPrefix::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => (kind, facts_processed, partial_table),
        };
    Err(cancelled_error(
        prepared,
        query,
        Engine::Auto,
        parallelism,
        partial_policy,
        kind,
        facts_processed,
        &partial_table,
    ))
}

/// A compiled query bound to a prepared PDB and an engine choice: the
/// complete prepare-phase artifact. [`execute`](Self::execute) replays
/// only the ε-dependent work.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pdb: PreparedPdb,
    compiled: Arc<CompiledQuery>,
    engine: Engine,
    parallelism: usize,
    // lazily-built, shared across clones: profiling runs once per
    // prepared query, plans are memoized per ε inside the Planner
    planner: Arc<Mutex<Option<Arc<Planner>>>>,
}

impl PreparedQuery {
    /// Binds a compiled query to a prepared PDB.
    pub fn new(pdb: PreparedPdb, compiled: CompiledQuery, engine: Engine) -> Self {
        PreparedQuery {
            pdb,
            compiled: Arc::new(compiled),
            engine,
            parallelism: 1,
            planner: Arc::new(Mutex::new(None)),
        }
    }

    /// Compiles `query` against the PDB's schema and binds it.
    pub fn prepare(pdb: PreparedPdb, query: &Formula, engine: Engine) -> Self {
        let compiled = CompiledQuery::compile(pdb.pdb().schema(), query);
        Self::new(pdb, compiled, engine)
    }

    /// The compile-phase artifact.
    pub fn compiled(&self) -> &CompiledQuery {
        &self.compiled
    }

    /// The prepared PDB this query runs against.
    pub fn pdb(&self) -> &PreparedPdb {
        &self.pdb
    }

    /// Sets the intra-query thread budget used by
    /// [`execute`](Self::execute). Results are bit-for-bit identical at
    /// every value; `1` (the default) keeps evaluation fully sequential.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Executes at tolerance `eps` under a cancellation token, evaluating
    /// partial answers on cancellation. Bit-for-bit identical to the
    /// one-shot path for the same query, ε, and engine.
    pub fn execute(
        &self,
        eps: f64,
        cancel: &CancelToken,
    ) -> Result<(Approximation, EvalTrace), QueryError> {
        self.execute_with_policy(eps, cancel, PartialOnCancel::Evaluate)
    }

    /// [`execute`](Self::execute) with an explicit partial-answer policy.
    pub fn execute_with_policy(
        &self,
        eps: f64,
        cancel: &CancelToken,
        partial_policy: PartialOnCancel,
    ) -> Result<(Approximation, EvalTrace), QueryError> {
        if matches!(self.engine, Engine::Auto) {
            let knobs = PlanKnobs::default();
            let planner = match self.planner_for(&knobs, cancel)? {
                Ok(planner) => planner,
                Err((kind, facts_processed, partial_table)) => {
                    return Err(cancelled_error(
                        &self.pdb,
                        self.compiled.original(),
                        Engine::Auto,
                        self.parallelism,
                        partial_policy,
                        kind,
                        facts_processed,
                        &partial_table,
                    ));
                }
            };
            return execute_prepared_planned(
                &self.pdb,
                &self.compiled,
                &planner,
                &knobs,
                eps,
                self.parallelism,
                cancel,
                partial_policy,
                None,
            )
            .map(|(a, t, _, _)| (a, t));
        }
        execute_prepared_par(
            &self.pdb,
            self.compiled.original(),
            eps,
            self.engine,
            self.parallelism,
            cancel,
            partial_policy,
        )
    }

    /// The memoized planner (profiling runs once and is shared across
    /// clones); the `Err` carries cancellation state from profiling.
    #[allow(clippy::type_complexity)]
    fn planner_for(
        &self,
        knobs: &PlanKnobs,
        cancel: &CancelToken,
    ) -> Result<Result<Arc<Planner>, (CancelKind, usize, TiTable)>, QueryError> {
        let cached = self
            .planner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if let Some(planner) = cached {
            return Ok(Ok(planner));
        }
        match PlanProfile::build_prepared(&self.pdb, &self.compiled, knobs, cancel)? {
            ProfileOutcome::Ready(profile) => {
                let planner = Arc::new(Planner::new(profile));
                let mut slot = self
                    .planner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                // a racing clone may have installed one first; keep the
                // existing instance so its ε-memo survives
                let kept = slot.get_or_insert_with(|| Arc::clone(&planner));
                Ok(Ok(Arc::clone(kept)))
            }
            ProfileOutcome::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => Ok(Err((kind, facts_processed, partial_table))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::approx_prob_boolean_cancellable_traced;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_logic::parse;
    use infpdb_math::series::{GeometricSeries, ZetaSeries};
    use infpdb_ti::enumerator::FactSupply;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn geometric() -> CountableTiPdb {
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    #[test]
    fn execute_matches_one_shot_bit_for_bit() {
        let pdb = geometric();
        let prepared = PreparedPdb::new(pdb.clone());
        for qs in ["exists x. R(x)", "R(1) /\\ !R(2)", "!(!R(1))"] {
            let q = parse(qs, pdb.schema()).unwrap();
            let pq = PreparedQuery::prepare(prepared.clone(), &q, Engine::Lineage);
            for eps in [0.1, 0.01, 0.001] {
                let (a, t) = pq.execute(eps, &CancelToken::new()).unwrap();
                let (a0, t0) = approx_prob_boolean_cancellable_traced(
                    &pdb,
                    &q,
                    eps,
                    Engine::Lineage,
                    &CancelToken::new(),
                    PartialOnCancel::Evaluate,
                )
                .unwrap();
                assert_eq!(a, a0, "{qs} at {eps}");
                assert_eq!(t, t0, "{qs} at {eps}: work counters must agree");
            }
        }
    }

    #[test]
    fn refinement_extends_without_regrounding() {
        let prepared = PreparedPdb::new(geometric());
        let q = parse("exists x. R(x)", prepared.pdb().schema()).unwrap();
        let pq = PreparedQuery::prepare(prepared.clone(), &q, Engine::Auto);
        pq.execute(0.1, &CancelToken::new()).unwrap();
        let after_loose = prepared.materialized_len();
        // tightening ε extends the same catalog monotonically
        pq.execute(0.001, &CancelToken::new()).unwrap();
        let after_tight = prepared.materialized_len();
        assert!(after_tight > after_loose);
        // repeating at either ε leaves the catalog untouched (memo hit)
        pq.execute(0.1, &CancelToken::new()).unwrap();
        pq.execute(0.001, &CancelToken::new()).unwrap();
        assert_eq!(prepared.materialized_len(), after_tight);
    }

    #[test]
    fn repeated_slices_share_one_table() {
        let prepared = PreparedPdb::new(geometric());
        let t1 = match prepared.prefix_for(0.05, &CancelToken::new()).unwrap() {
            PreparedPrefix::Complete { table, .. } => table,
            other => panic!("expected completion, got {other:?}"),
        };
        let t2 = match prepared.prefix_for(0.05, &CancelToken::new()).unwrap() {
            PreparedPrefix::Complete { table, .. } => table,
            other => panic!("expected completion, got {other:?}"),
        };
        assert!(Arc::ptr_eq(&t1, &t2), "repeat ε must reuse the snapshot");
    }

    #[test]
    fn warm_makes_first_execution_ground_free() {
        let prepared = PreparedPdb::new(geometric());
        let n = prepared.warm(0.01).unwrap();
        assert_eq!(prepared.materialized_len(), n);
        let q = parse("exists x. R(x)", prepared.pdb().schema()).unwrap();
        let pq = PreparedQuery::prepare(prepared.clone(), &q, Engine::Auto);
        let (a, _) = pq.execute(0.01, &CancelToken::new()).unwrap();
        assert_eq!(a.n, n);
        assert_eq!(prepared.materialized_len(), n, "no further grounding");
    }

    #[test]
    fn cancellation_yields_sound_partial_like_one_shot() {
        let pdb = CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            ZetaSeries::basel(),
        ))
        .unwrap();
        let prepared = PreparedPdb::new(pdb.clone());
        let q = parse("exists x. R(x)", pdb.schema()).unwrap();
        let pq = PreparedQuery::prepare(prepared, &q, Engine::Auto);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        match pq.execute(0.01, &token).unwrap_err() {
            QueryError::Cancelled(info) => {
                assert_eq!(info.kind, CancelKind::Deadline);
                if let Some(partial) = info.partial {
                    assert_eq!(partial.n, info.facts_processed);
                    assert!(partial.eps < 0.5);
                }
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn skip_policy_returns_no_partial() {
        let prepared = PreparedPdb::new(geometric());
        let q = parse("exists x. R(x)", prepared.pdb().schema()).unwrap();
        let pq = PreparedQuery::prepare(prepared, &q, Engine::Auto);
        let token = CancelToken::new();
        token.cancel();
        match pq
            .execute_with_policy(0.01, &token, PartialOnCancel::Skip)
            .unwrap_err()
        {
            QueryError::Cancelled(info) => {
                assert_eq!(info.facts_processed, 0);
                assert!(info.partial.is_none());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn finite_support_caps_the_prefix() {
        let rfact =
            |n: i64| infpdb_core::fact::Fact::new(RelId(0), [infpdb_core::value::Value::int(n)]);
        let supply = FactSupply::from_vec(
            schema(),
            vec![(rfact(1), 0.5), (rfact(2), 0.25), (rfact(3), 0.125)],
        )
        .unwrap();
        let pdb = CountableTiPdb::new(supply).unwrap();
        let prepared = PreparedPdb::new(pdb.clone());
        let q = parse("exists x. R(x)", pdb.schema()).unwrap();
        let pq = PreparedQuery::prepare(prepared.clone(), &q, Engine::Auto);
        let (a, _) = pq.execute(0.01, &CancelToken::new()).unwrap();
        let a0 = crate::approx::approx_prob_boolean(&pdb, &q, 0.01, Engine::Auto).unwrap();
        assert_eq!(a, a0);
        assert_eq!(prepared.materialized_len(), 3);
    }
}

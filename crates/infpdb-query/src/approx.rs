//! The additive-ε approximation algorithm (Proposition 6.1).
//!
//! `p := P(Q | Ω_n)` computed by a closed-world finite engine on the prefix
//! table satisfies `P(Q) − ε ≤ p ≤ P(Q) + ε`:
//!
//! * `(a)` `P(Q) = P(Ω_n)·p + P(¬Ω_n)·P(Q | ¬Ω_n) ≤ p + ε` since
//!   `P(¬Ω_n) ≤ 1 − e^{−α_n} ≤ ε`;
//! * `(b)` `P(Q) ≥ P(Ω_n)·p ≥ e^{−α_n}·p`, so
//!   `p ≤ e^{α_n}·P(Q) ≤ (1+ε)P(Q) ≤ P(Q) + ε`.
//!
//! Conditioning note: for a *tuple-independent* PDB, conditioning on
//! "no fact beyond `n` occurs" leaves the joint distribution of
//! `f₁ … f_n` untouched (independence), so `P(Q | Ω_n)` **is** the query
//! probability on the prefix table — with the technical caveat the paper
//! handles via `r`-equivalence: the conditioned instances are exactly the
//! sub-instances of `{f₁ … f_n}`, which is how the finite engine evaluates.

use crate::cancel::{CancelInfo, CancelToken};
use crate::planner::{self, PlanKnobs, PlanProfile, ProfileOutcome};
use crate::truncate::{partial_certificate, PlannedTruncation, TruncationPlan};
use crate::QueryError;
use infpdb_finite::engine::{self, Engine, EvalTrace};
use infpdb_finite::plan::evaluate_plan;
use infpdb_logic::ast::Formula;
use infpdb_logic::compile::CompiledQuery;
use infpdb_ti::construction::CountableTiPdb;

/// The result of an approximate evaluation, carrying its certificates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Approximation {
    /// The estimate `p = P(Q | Ω_n)`.
    pub estimate: f64,
    /// The additive tolerance ε: `P(Q) ∈ [estimate − ε, estimate + ε]`.
    pub eps: f64,
    /// The truncation length `n(ε)`.
    pub n: usize,
    /// Certified bound on the discarded tail mass.
    pub tail_mass: f64,
}

impl Approximation {
    /// The guaranteed enclosure `[p − ε, p + ε] ∩ [0, 1]`.
    pub fn interval(&self) -> infpdb_math::ProbInterval {
        infpdb_math::ProbInterval::exact(self.estimate.clamp(0.0, 1.0))
            .expect("estimate is a probability")
            .widen(self.eps)
    }
}

/// Proposition 6.1: additive-ε approximation of `P(Q)` for a Boolean FO
/// query `Q` on a countable t.i. PDB, using the chosen finite engine for
/// the `P(Q | Ω_n)` evaluation.
///
/// ```
/// use infpdb_core::schema::{RelId, Relation, Schema};
/// use infpdb_finite::engine::Engine;
/// use infpdb_logic::parse;
/// use infpdb_math::series::GeometricSeries;
/// use infpdb_query::approx::approx_prob_boolean;
/// use infpdb_ti::{construction::CountableTiPdb, enumerator::FactSupply};
///
/// // R(1), R(2), … with probabilities 1/2, 1/4, …
/// let schema = Schema::from_relations([Relation::new("R", 1)])?;
/// let pdb = CountableTiPdb::new(FactSupply::unary_over_naturals(
///     schema.clone(), RelId(0), GeometricSeries::new(0.5, 0.5)?))?;
///
/// let q = parse("exists x. R(x)", &schema)?;
/// let answer = approx_prob_boolean(&pdb, &q, 0.01, Engine::Auto)?;
/// // the true probability is 1 − ∏(1 − 2^{-i}) ≈ 0.7112
/// assert!((answer.estimate - 0.7112).abs() <= 0.011);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn approx_prob_boolean(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
) -> Result<Approximation, QueryError> {
    approx_prob_boolean_par(pdb, query, eps, finite_engine, 1)
}

/// [`approx_prob_boolean`] with up to `parallelism` worker threads inside
/// the finite evaluation (bit-for-bit identical estimates at every thread
/// count — see [`infpdb_finite::shannon::probability_dag_parallel`]).
pub fn approx_prob_boolean_par(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
    parallelism: usize,
) -> Result<Approximation, QueryError> {
    if matches!(finite_engine, Engine::Auto) {
        // Engine::Auto routes through the cost-based planner; a fresh
        // token never cancels, so the cancellable path is exact here
        return auto_planned_cancellable(
            pdb,
            query,
            eps,
            parallelism,
            &CancelToken::new(),
            PartialOnCancel::Skip,
        )
        .map(|(a, _)| a);
    }
    let plan = TruncationPlan::new(pdb, eps)?;
    let (estimate, _) =
        engine::prob_boolean_traced_par(query, &plan.table, finite_engine, parallelism)?;
    Ok(Approximation {
        estimate,
        eps,
        n: plan.n(),
        tail_mass: plan.truncation.tail_mass,
    })
}

/// Whether a cancelled evaluation should still produce a sound partial
/// answer from the facts processed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartialOnCancel {
    /// Run the finite engine on the partial prefix (at the tolerance
    /// [`partial_certificate`] certifies) and attach the result to the
    /// [`CancelInfo`]. This spends one engine run *after* the
    /// cancellation fired, bounded by the work already admitted.
    #[default]
    Evaluate,
    /// Return immediately; [`CancelInfo::partial`] is `None`.
    Skip,
}

/// [`approx_prob_boolean`] with cooperative cancellation: the truncation
/// loop checks `cancel` every [`crate::cancel::CHECK_EVERY`] facts and,
/// once more, right before the (non-interruptible) finite-engine stage.
///
/// On cancellation the error carries a [`CancelInfo`]: which trigger
/// fired, how many facts were materialized, and — under
/// [`PartialOnCancel::Evaluate`] — a sound anytime [`Approximation`] at
/// the wider tolerance the partial prefix certifies. The partial answer
/// is a *bona fide* Proposition 6.1 result: the `m`-fact prefix is the
/// truncation `Ω_m`, and its certificate comes from the series' own
/// tail bound at `m` (see [`partial_certificate`]).
pub fn approx_prob_boolean_cancellable(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
    cancel: &CancelToken,
    partial_policy: PartialOnCancel,
) -> Result<Approximation, QueryError> {
    approx_prob_boolean_cancellable_traced(pdb, query, eps, finite_engine, cancel, partial_policy)
        .map(|(a, _)| a)
}

/// [`approx_prob_boolean_cancellable`] plus the finite engine's
/// [`EvalTrace`] on success — Shannon memo/expansion counters and arena
/// interning statistics, which the serve layer exports as metrics. One
/// hash-consed arena serves the entire evaluation (grounding through
/// inference); the trace reports its final size.
pub fn approx_prob_boolean_cancellable_traced(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
    cancel: &CancelToken,
    partial_policy: PartialOnCancel,
) -> Result<(Approximation, EvalTrace), QueryError> {
    approx_prob_boolean_cancellable_traced_par(
        pdb,
        query,
        eps,
        finite_engine,
        1,
        cancel,
        partial_policy,
    )
}

/// [`approx_prob_boolean_cancellable_traced`] with up to `parallelism`
/// worker threads inside the finite evaluation. Estimates, cancellation
/// behavior, and partial answers are bit-for-bit identical to the
/// sequential path; the trace additionally carries
/// [`EvalTrace::parallel`] when `parallelism ≥ 2` reaches the lineage
/// engine.
pub fn approx_prob_boolean_cancellable_traced_par(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
    parallelism: usize,
    cancel: &CancelToken,
    partial_policy: PartialOnCancel,
) -> Result<(Approximation, EvalTrace), QueryError> {
    if matches!(finite_engine, Engine::Auto) {
        return auto_planned_cancellable(pdb, query, eps, parallelism, cancel, partial_policy);
    }
    let (kind, facts_processed, partial_table) =
        match TruncationPlan::new_cancellable(pdb, eps, cancel)? {
            PlannedTruncation::Complete(plan) => {
                // last checkpoint before the engine: don't start a run
                // whose budget is already spent
                match cancel.check() {
                    Ok(()) => {
                        let (estimate, trace) = engine::prob_boolean_traced_par(
                            query,
                            &plan.table,
                            finite_engine,
                            parallelism,
                        )?;
                        return Ok((
                            Approximation {
                                estimate,
                                eps,
                                n: plan.n(),
                                tail_mass: plan.truncation.tail_mass,
                            },
                            trace,
                        ));
                    }
                    Err(kind) => (kind, plan.n(), plan.table),
                }
            }
            PlannedTruncation::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => (kind, facts_processed, partial_table),
        };
    let partial = match partial_policy {
        PartialOnCancel::Skip => None,
        PartialOnCancel::Evaluate => {
            partial_certificate(pdb, facts_processed).and_then(|(trunc, eps_m)| {
                engine::prob_boolean_traced_par(query, &partial_table, finite_engine, parallelism)
                    .ok()
                    .map(|(estimate, _)| Approximation {
                        estimate,
                        eps: eps_m,
                        n: trunc.n,
                        tail_mass: trunc.tail_mass,
                    })
            })
        }
    };
    Err(QueryError::Cancelled(CancelInfo {
        kind,
        facts_processed,
        partial,
    }))
}

/// The one-shot `Engine::Auto` path: profile at the canonical knobs
/// tolerance, choose the cheapest per-component strategy, truncate at the
/// plan's `ε_trunc`, and evaluate the chosen plan. Deterministic — the
/// plan depends only on the PDB/query fingerprints, ε, and the default
/// [`PlanKnobs`] — and bit-for-bit identical to the prepared-path
/// planner, which profiles on byte-identical prefix tables.
fn auto_planned_cancellable(
    pdb: &CountableTiPdb,
    query: &Formula,
    eps: f64,
    parallelism: usize,
    cancel: &CancelToken,
    partial_policy: PartialOnCancel,
) -> Result<(Approximation, EvalTrace), QueryError> {
    // validates the requested ε up front (Proposition 6.1 needs
    // ε ∈ (0, 1/2)) and pins the evaluation-prefix length for costing
    let n_eval = planner::eval_prefix_len(pdb, eps)?;
    let knobs = PlanKnobs::default();
    let compiled = CompiledQuery::compile(pdb.schema(), query);
    let (kind, facts_processed, partial_table) = 'cancelled: {
        let profile = match PlanProfile::build_oneshot(pdb, &compiled, &knobs, cancel)? {
            ProfileOutcome::Ready(profile) => profile,
            ProfileOutcome::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => break 'cancelled (kind, facts_processed, partial_table),
        };
        let plan = profile.choose(eps, n_eval, &knobs);
        match TruncationPlan::new_cancellable(pdb, plan.eps_trunc, cancel)? {
            PlannedTruncation::Complete(tplan) => match cancel.check() {
                Ok(()) => {
                    match evaluate_plan(&compiled, &plan, &tplan.table, parallelism, None)? {
                        Some((estimate, trace)) => {
                            return Ok((
                                Approximation {
                                    estimate,
                                    eps,
                                    n: tplan.truncation.n,
                                    tail_mass: tplan.truncation.tail_mass,
                                },
                                trace,
                            ));
                        }
                        // only a task-skipping executor returns None, and
                        // this path runs without one — treat defensively
                        // as a cancellation
                        None => {
                            let kind = cancel
                                .cancelled_kind()
                                .unwrap_or(crate::cancel::CancelKind::Explicit);
                            break 'cancelled (kind, tplan.n(), tplan.table);
                        }
                    }
                }
                Err(kind) => break 'cancelled (kind, tplan.n(), tplan.table),
            },
            PlannedTruncation::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => break 'cancelled (kind, facts_processed, partial_table),
        }
    };
    let partial = match partial_policy {
        PartialOnCancel::Skip => None,
        PartialOnCancel::Evaluate => {
            partial_certificate(pdb, facts_processed).and_then(|(trunc, eps_m)| {
                engine::prob_boolean_traced_par(query, &partial_table, Engine::Auto, parallelism)
                    .ok()
                    .map(|(estimate, _)| Approximation {
                        estimate,
                        eps: eps_m,
                        n: trunc.n,
                        tail_mass: trunc.tail_mass,
                    })
            })
        }
    };
    Err(QueryError::Cancelled(CancelInfo {
        kind,
        facts_processed,
        partial,
    }))
}

/// The same algorithm against an explicit [`TruncationPlan`] (reuse across
/// a query workload: the plan depends only on ε and the PDB).
pub fn approx_with_plan(
    plan: &TruncationPlan,
    query: &Formula,
    finite_engine: Engine,
) -> Result<Approximation, QueryError> {
    let estimate = engine::prob_boolean(query, &plan.table, finite_engine)?;
    Ok(Approximation {
        estimate,
        eps: plan.eps,
        n: plan.n(),
        tail_mass: plan.truncation.tail_mass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_logic::parse;
    use infpdb_math::series::{GeometricSeries, ZetaSeries};
    use infpdb_ti::enumerator::FactSupply;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn pdb(series: impl infpdb_math::series::ProbSeries + Send + Sync + 'static) -> CountableTiPdb {
        CountableTiPdb::new(FactSupply::unary_over_naturals(schema(), RelId(0), series)).unwrap()
    }

    /// Ground truth for ∃x R(x): 1 − ∏(1 − p_i), by very long product.
    fn truth_exists(p: &CountableTiPdb, terms: usize) -> f64 {
        let mut acc = 1.0;
        for i in 0..terms {
            acc *= 1.0 - p.supply().prob(i);
        }
        1.0 - acc
    }

    #[test]
    fn additive_guarantee_holds_geometric() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let truth = truth_exists(&p, 2000);
        for eps in [0.3, 0.1, 0.01, 0.001] {
            let a = approx_prob_boolean(&p, &q, eps, Engine::Auto).unwrap();
            assert!(
                (a.estimate - truth).abs() <= eps,
                "eps {eps}: estimate {} vs truth {truth}",
                a.estimate
            );
            assert!(a.interval().contains(truth));
        }
    }

    #[test]
    fn additive_guarantee_holds_zeta() {
        let p = pdb(ZetaSeries::basel());
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let truth = truth_exists(&p, 3_000_000);
        for eps in [0.1, 0.01] {
            let a = approx_prob_boolean(&p, &q, eps, Engine::Auto).unwrap();
            assert!(
                (a.estimate - truth).abs() <= eps,
                "eps {eps}: estimate {} vs truth {truth}",
                a.estimate
            );
        }
    }

    #[test]
    fn error_shrinks_with_eps() {
        // observed error should be far below ε for the geometric family
        // (the bound is conservative) and must not grow as ε shrinks
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let truth = truth_exists(&p, 2000);
        let e1 = (approx_prob_boolean(&p, &q, 0.1, Engine::Auto)
            .unwrap()
            .estimate
            - truth)
            .abs();
        let e2 = (approx_prob_boolean(&p, &q, 0.001, Engine::Auto)
            .unwrap()
            .estimate
            - truth)
            .abs();
        assert!(e2 <= e1 + 1e-12);
        assert!(e2 <= 0.001);
    }

    #[test]
    fn negative_and_universal_queries() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        // "no fact at all": P = ∏(1−p_i) ≈ 0.28879
        let q = parse("!(exists x. R(x))", p.schema()).unwrap();
        let truth = 1.0 - truth_exists(&p, 2000);
        let a = approx_prob_boolean(&p, &q, 0.01, Engine::Auto).unwrap();
        assert!((a.estimate - truth).abs() <= 0.01);
        // a ground atom
        let q2 = parse("R(1)", p.schema()).unwrap();
        let a2 = approx_prob_boolean(&p, &q2, 0.01, Engine::Auto).unwrap();
        assert!((a2.estimate - 0.5).abs() <= 0.01);
        // R(1) ∧ ¬R(2): 0.5 · 0.75
        let q3 = parse("R(1) /\\ !R(2)", p.schema()).unwrap();
        let a3 = approx_prob_boolean(&p, &q3, 0.01, Engine::Auto).unwrap();
        assert!((a3.estimate - 0.375).abs() <= 0.01);
    }

    #[test]
    fn engines_agree_through_the_truncation() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let lifted = approx_prob_boolean(&p, &q, 0.05, Engine::Lifted).unwrap();
        let lineage = approx_prob_boolean(&p, &q, 0.05, Engine::Lineage).unwrap();
        assert!((lifted.estimate - lineage.estimate).abs() < 1e-9);
    }

    #[test]
    fn plan_reuse_across_workload() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let plan = TruncationPlan::new(&p, 0.05).unwrap();
        let truth = truth_exists(&p, 2000);
        for qs in ["exists x. R(x)", "R(1)", "R(1) \\/ R(2)"] {
            let q = parse(qs, p.schema()).unwrap();
            let a = approx_with_plan(&plan, &q, Engine::Auto).unwrap();
            assert_eq!(a.n, plan.n());
            if qs == "exists x. R(x)" {
                assert!((a.estimate - truth).abs() <= 0.05);
            }
        }
    }

    #[test]
    fn rejects_bad_tolerance_and_free_variables() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        assert!(approx_prob_boolean(&p, &q, 0.5, Engine::Auto).is_err());
        let free = parse("R(x)", p.schema()).unwrap();
        assert!(approx_prob_boolean(&p, &free, 0.1, Engine::Auto).is_err());
    }

    #[test]
    fn cancellable_matches_plain_path_bit_for_bit() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let plain = approx_prob_boolean(&p, &q, 0.01, Engine::Auto).unwrap();
        let token = CancelToken::new();
        let via_token = approx_prob_boolean_cancellable(
            &p,
            &q,
            0.01,
            Engine::Auto,
            &token,
            PartialOnCancel::Evaluate,
        )
        .unwrap();
        assert_eq!(plain, via_token);
    }

    #[test]
    fn traced_variant_reports_engine_work() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let q = parse("exists x, y. R(x) /\\ R(y) /\\ x != y", p.schema()).unwrap();
        let token = CancelToken::new();
        let (a, trace) = approx_prob_boolean_cancellable_traced(
            &p,
            &q,
            0.05,
            Engine::Lineage,
            &token,
            PartialOnCancel::Evaluate,
        )
        .unwrap();
        let plain = approx_prob_boolean(&p, &q, 0.05, Engine::Lineage).unwrap();
        assert_eq!(a, plain);
        let arena = trace.arena.expect("lineage engine fills arena stats");
        assert!(arena.nodes > 2);
        assert!(trace.shannon.is_some());
    }

    #[test]
    fn deadline_cancel_yields_sound_partial() {
        // ζ(2) at ε = 0.01 needs thousands of facts; a pre-expired
        // deadline stops early, and the partial answer must still
        // enclose the truth at its own (wider) certified tolerance —
        // except when the prefix was too short to certify anything.
        let p = pdb(ZetaSeries::basel());
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let truth = truth_exists(&p, 3_000_000);
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        let err = approx_prob_boolean_cancellable(
            &p,
            &q,
            0.01,
            Engine::Auto,
            &token,
            PartialOnCancel::Evaluate,
        )
        .unwrap_err();
        match err {
            QueryError::Cancelled(info) => {
                assert_eq!(info.kind, crate::cancel::CancelKind::Deadline);
                if let Some(partial) = info.partial {
                    assert_eq!(partial.n, info.facts_processed);
                    assert!(partial.eps < 0.5);
                    assert!(partial.interval().contains(truth));
                }
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn skip_policy_returns_no_partial() {
        let p = pdb(ZetaSeries::basel());
        let q = parse("exists x. R(x)", p.schema()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = approx_prob_boolean_cancellable(
            &p,
            &q,
            0.01,
            Engine::Auto,
            &token,
            PartialOnCancel::Skip,
        )
        .unwrap_err();
        match err {
            QueryError::Cancelled(info) => {
                assert_eq!(info.kind, crate::cancel::CancelKind::Explicit);
                assert_eq!(info.facts_processed, 0);
                assert!(info.partial.is_none());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn interval_accessor_clamps() {
        let a = Approximation {
            estimate: 0.97,
            eps: 0.1,
            n: 5,
            tail_mass: 0.01,
        };
        let iv = a.interval();
        assert_eq!(iv.hi(), 1.0);
        assert!((iv.lo() - 0.87).abs() < 1e-12);
    }
}

//! Truncation budgeting and approximate evaluation on completed PDBs.
//!
//! The complexity remark at the end of Section 6: the cost of the
//! Proposition 6.1 algorithm "is basically determined by the rate of
//! convergence of the series of fact probabilities" — geometric series need
//! `n(ε) = Θ(log(1/ε))` facts, while series may in general "converge
//! arbitrarily slowly". [`BudgetReport`] makes the plan inspectable before
//! committing to an evaluation.
//!
//! [`approx_prob_completed`] extends the algorithm to completions of
//! arbitrary finite PDBs (Theorem 5.5 objects): conditioning on the
//! original world `D = w` leaves the independent tail untouched, so
//! `P′(Q) = ∑_w P(w) · P_tail(Q ∣ w)`, and each conditional evaluation is a
//! finite t.i. problem with `w`'s facts pinned at probability 1 plus the
//! ε-truncated tail. The mixture inherits the additive guarantee.

use crate::truncate::TruncationPlan;
use crate::QueryError;
use infpdb_finite::engine::{self, Engine};
use infpdb_finite::TiTable;
use infpdb_logic::ast::Formula;
use infpdb_math::KahanSum;
use infpdb_openworld::CompletedPdb;
use infpdb_ti::construction::CountableTiPdb;

/// An inspectable plan for an ε-evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetReport {
    /// Requested tolerance.
    pub eps: f64,
    /// Prefix length `n(ε)`.
    pub n: usize,
    /// Certified discarded tail mass.
    pub tail_mass: f64,
    /// Certified bound on `P(¬Ω_n)`.
    pub escape_probability: f64,
    /// Upper bound on the expected instance size (Corollary 4.7).
    pub expected_size_bound: f64,
}

/// Plans (without evaluating) the Proposition 6.1 truncation.
pub fn plan(pdb: &CountableTiPdb, eps: f64) -> Result<BudgetReport, QueryError> {
    let t = infpdb_math::truncation::for_tolerance(pdb.supply(), eps)?;
    Ok(BudgetReport {
        eps,
        n: t.n,
        tail_mass: t.tail_mass,
        escape_probability: t.escape_probability(),
        expected_size_bound: pdb.expected_size_bound(),
    })
}

/// The `n(ε)` profile over a tolerance sweep — the data behind the
/// Section 6 complexity remark (bench E11).
pub fn n_of_eps_profile(
    pdb: &CountableTiPdb,
    tolerances: &[f64],
) -> Result<Vec<(f64, usize)>, QueryError> {
    tolerances
        .iter()
        .map(|&eps| plan(pdb, eps).map(|r| (eps, r.n)))
        .collect()
}

/// Additive-ε approximation of `P′(Q)` on a completed PDB (mixture of a
/// finite original with an independent t.i. tail).
pub fn approx_prob_completed(
    completed: &CompletedPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
) -> Result<crate::approx::Approximation, QueryError> {
    let tail_plan = TruncationPlan::new(completed.tail(), eps)?;
    let original = completed.original();
    let mut acc = KahanSum::new();
    for (world, pw) in original.space().outcomes() {
        if *pw == 0.0 {
            continue;
        }
        // conditional table: the world's facts are certain, the tail keeps
        // its truncated probabilities
        let mut table = TiTable::new(original.schema().clone());
        for id in world.iter() {
            table
                .add_fact(original.interner().resolve(id).clone(), 1.0)
                .map_err(|e| QueryError::Finite(e.to_string()))?;
        }
        for (_, fact, p) in tail_plan.table.iter() {
            table
                .add_fact(fact.clone(), p)
                .map_err(|e| QueryError::Finite(e.to_string()))?;
        }
        let cond = engine::prob_boolean(query, &table, finite_engine)?;
        acc.add(pw * cond);
    }
    Ok(crate::approx::Approximation {
        estimate: acc.value().min(1.0),
        eps,
        n: tail_plan.n(),
        tail_mass: tail_plan.truncation.tail_mass,
    })
}

/// Approximate marginal answers on a completed PDB: for each valuation of
/// the free variables over the combined active domain (original worlds ∪
/// truncated tail ∪ query constants), evaluate the ground sentence through
/// [`approx_prob_completed`]'s mixture decomposition. Each marginal is
/// within additive ε.
pub fn approx_answers_completed(
    completed: &CompletedPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
) -> Result<Vec<(Vec<infpdb_core::value::Value>, f64)>, QueryError> {
    use infpdb_core::value::Value;
    let fv: Vec<String> = infpdb_logic::vars::free_vars(query).into_iter().collect();
    if fv.is_empty() {
        let a = approx_prob_completed(completed, query, eps, finite_engine)?;
        return Ok(if a.estimate > 0.0 {
            vec![(vec![], a.estimate)]
        } else {
            vec![]
        });
    }
    let tail_plan = TruncationPlan::new(completed.tail(), eps)?;
    let mut domain: Vec<Value> = completed.original().active_domain().into_iter().collect();
    for v in tail_plan.table.active_domain() {
        if !domain.contains(&v) {
            domain.push(v);
        }
    }
    for c in infpdb_logic::vars::constants(query) {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let mut out = Vec::new();
    let mut assignment: Vec<(String, Value)> = Vec::with_capacity(fv.len());
    answers_rec(
        completed,
        query,
        eps,
        finite_engine,
        &fv,
        &domain,
        0,
        &mut assignment,
        &mut out,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn answers_rec(
    completed: &CompletedPdb,
    query: &Formula,
    eps: f64,
    finite_engine: Engine,
    fv: &[String],
    domain: &[infpdb_core::value::Value],
    i: usize,
    assignment: &mut Vec<(String, infpdb_core::value::Value)>,
    out: &mut Vec<(Vec<infpdb_core::value::Value>, f64)>,
) -> Result<(), QueryError> {
    if i == fv.len() {
        let sentence = infpdb_logic::vars::ground(query, assignment);
        let a = approx_prob_completed(completed, &sentence, eps, finite_engine)?;
        if a.estimate > 0.0 {
            out.push((
                assignment.iter().map(|(_, v)| v.clone()).collect(),
                a.estimate,
            ));
        }
        return Ok(());
    }
    for v in domain {
        assignment.push((fv[i].clone(), v.clone()));
        answers_rec(
            completed,
            query,
            eps,
            finite_engine,
            fv,
            domain,
            i + 1,
            assignment,
            out,
        )?;
        assignment.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::value::Value;
    use infpdb_finite::FinitePdb;
    use infpdb_logic::parse;
    use infpdb_math::series::{GeometricSeries, ZetaSeries};
    use infpdb_openworld::independent_facts::complete_pdb;
    use infpdb_ti::enumerator::FactSupply;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn rfact(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    fn ti_pdb(
        series: impl infpdb_math::series::ProbSeries + Send + Sync + 'static,
    ) -> CountableTiPdb {
        CountableTiPdb::new(FactSupply::unary_over_naturals(schema(), RelId(0), series)).unwrap()
    }

    #[test]
    fn budget_report_fields() {
        let p = ti_pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let r = plan(&p, 0.01).unwrap();
        assert_eq!(r.eps, 0.01);
        assert!(r.n >= 7);
        assert!(r.tail_mass <= (2.0 / 3.0) * 0.01f64.ln_1p());
        assert!(r.escape_probability <= 0.01);
        assert!(r.expected_size_bound >= 1.0);
    }

    #[test]
    fn n_of_eps_growth_rates() {
        // the §6 complexity remark, quantified: geometric grows ~log(1/ε),
        // zeta grows ~1/ε
        let g = ti_pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let z = ti_pdb(ZetaSeries::basel());
        let eps = [0.1, 0.01, 0.001];
        let gp = n_of_eps_profile(&g, &eps).unwrap();
        let zp = n_of_eps_profile(&z, &eps).unwrap();
        // geometric: roughly constant increments
        let gd1 = gp[1].1 - gp[0].1;
        let gd2 = gp[2].1 - gp[1].1;
        assert!((2..=5).contains(&gd1) && (2..=5).contains(&gd2));
        // zeta: roughly constant *ratios* near 10
        let zr1 = zp[1].1 as f64 / zp[0].1 as f64;
        let zr2 = zp[2].1 as f64 / zp[1].1 as f64;
        assert!(zr1 > 5.0 && zr1 < 20.0, "{zr1}");
        assert!(zr2 > 5.0 && zr2 < 20.0, "{zr2}");
    }

    #[test]
    fn completed_pdb_evaluation_matches_decomposition() {
        // original: exactly one of R(1), R(2); tail: geometric on R(100+)
        let original =
            FinitePdb::from_worlds(schema(), [(vec![rfact(1)], 0.6), (vec![rfact(2)], 0.4)])
                .unwrap();
        let tail = FactSupply::from_fn(
            schema(),
            |i| rfact(100 + i as i64),
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        let completed = complete_pdb(original, tail).unwrap();
        // Q = ∃x R(x): true in every world (original part is nonempty)
        let q = parse("exists x. R(x)", &schema()).unwrap();
        let a = approx_prob_completed(&completed, &q, 0.01, Engine::Auto).unwrap();
        assert!((a.estimate - 1.0).abs() <= 0.01);
        // Q = R(1): probability 0.6 — original correlation intact
        let q1 = parse("R(1)", &schema()).unwrap();
        let a1 = approx_prob_completed(&completed, &q1, 0.01, Engine::Auto).unwrap();
        assert!((a1.estimate - 0.6).abs() <= 0.01);
        // Q = R(100): the open-world tail fact
        let q2 = parse("R(100)", &schema()).unwrap();
        let a2 = approx_prob_completed(&completed, &q2, 0.01, Engine::Auto).unwrap();
        assert!((a2.estimate - 0.25).abs() <= 0.01);
        // Q = R(1) ∧ R(2): impossible in the original, still impossible
        let q3 = parse("R(1) /\\ R(2)", &schema()).unwrap();
        let a3 = approx_prob_completed(&completed, &q3, 0.01, Engine::Auto).unwrap();
        assert!(a3.estimate <= 0.01);
    }

    #[test]
    fn completed_evaluation_open_world_join() {
        // Open-world effect on a join query: R(1) certain-ish original plus
        // a tail that can supply R(2); Q = R(1) ∧ R(2) mixes the two parts.
        let original =
            FinitePdb::from_worlds(schema(), [(vec![rfact(1)], 0.9), (vec![], 0.1)]).unwrap();
        let tail = FactSupply::from_fn(
            schema(),
            |i| rfact(2 + i as i64),
            GeometricSeries::new(0.2, 0.5).unwrap(),
        );
        let completed = complete_pdb(original, tail).unwrap();
        let q = parse("R(1) /\\ R(2)", &schema()).unwrap();
        let a = approx_prob_completed(&completed, &q, 0.005, Engine::Auto).unwrap();
        // truth: 0.9 × 0.2
        assert!((a.estimate - 0.18).abs() <= 0.005);
    }

    #[test]
    fn completed_answer_marginals() {
        let original =
            FinitePdb::from_worlds(schema(), [(vec![rfact(1)], 0.6), (vec![rfact(2)], 0.4)])
                .unwrap();
        let tail = FactSupply::from_fn(
            schema(),
            |i| rfact(100 + i as i64),
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        let completed = complete_pdb(original, tail).unwrap();
        let q = parse("R(x)", &schema()).unwrap();
        let ans = approx_answers_completed(&completed, &q, 0.01, Engine::Auto).unwrap();
        let find = |n: i64| {
            ans.iter()
                .find(|(t, _)| t[0] == Value::int(n))
                .map(|(_, p)| *p)
        };
        assert!((find(1).unwrap() - 0.6).abs() <= 0.01);
        assert!((find(2).unwrap() - 0.4).abs() <= 0.01);
        assert!((find(100).unwrap() - 0.25).abs() <= 0.01);
        assert_eq!(find(50), None);
        // boolean degenerate
        let b = parse("exists x. R(x)", &schema()).unwrap();
        let bans = approx_answers_completed(&completed, &b, 0.01, Engine::Auto).unwrap();
        assert_eq!(bans.len(), 1);
        assert!(bans[0].1 > 0.99);
    }

    #[test]
    fn bad_tolerance_rejected() {
        let p = ti_pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        assert!(plan(&p, 0.5).is_err());
        assert!(plan(&p, 0.0).is_err());
    }
}

//! Truncation planning for Proposition 6.1.
//!
//! "Choose `n` large enough such that for all `i > n` we have `p_i ≤ 1/2`
//! and `e^{α_n} ≤ 1 + ε` and `e^{−α_n} ≥ 1 − ε` … an appropriate `n` can be
//! found algorithmically by systematically listing facts until the
//! remaining probability mass is small enough."
//!
//! The search itself lives in `infpdb_math::truncation`; this module binds
//! it to a PDB and materializes the `Ω_n` prefix table.

use crate::QueryError;
use infpdb_finite::TiTable;
use infpdb_math::truncation::{self, Truncation};
use infpdb_ti::construction::CountableTiPdb;

/// A planned truncation: the Proposition 6.1 certificates plus the
/// materialized prefix table.
#[derive(Debug)]
pub struct TruncationPlan {
    /// The certificates (`n`, tail mass, `α_n`).
    pub truncation: Truncation,
    /// The finite table over `f₁ … f_n`.
    pub table: TiTable,
    /// The tolerance the plan was built for.
    pub eps: f64,
}

impl TruncationPlan {
    /// Builds the Proposition 6.1 truncation for tolerance
    /// `ε ∈ (0, 1/2)`.
    pub fn new(pdb: &CountableTiPdb, eps: f64) -> Result<Self, QueryError> {
        let truncation = truncation::for_tolerance(pdb.supply(), eps)?;
        let table = pdb.truncate(truncation.n)?;
        Ok(Self {
            truncation,
            table,
            eps,
        })
    }

    /// `n(ε)`: the prefix length.
    pub fn n(&self) -> usize {
        self.truncation.n
    }

    /// Certified bound on `P(¬Ω_n)` — the mass escaping the truncation.
    pub fn escape_probability(&self) -> f64 {
        self.truncation.escape_probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_math::series::{GeometricSeries, ZetaSeries};
    use infpdb_ti::enumerator::FactSupply;

    fn pdb(series: impl infpdb_math::series::ProbSeries + Send + Sync + 'static) -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(schema, RelId(0), series)).unwrap()
    }

    #[test]
    fn plan_materializes_prefix() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let plan = TruncationPlan::new(&p, 0.1).unwrap();
        assert_eq!(plan.table.len(), plan.n());
        assert!(plan.n() >= 4);
        assert!(plan.escape_probability() <= 0.1);
        assert_eq!(plan.eps, 0.1);
    }

    #[test]
    fn plan_rejects_bad_tolerances() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        for eps in [0.0, 0.5, 0.7, -0.1] {
            assert!(TruncationPlan::new(&p, eps).is_err(), "eps = {eps}");
        }
    }

    #[test]
    fn slow_series_get_long_plans() {
        let g = TruncationPlan::new(&pdb(GeometricSeries::new(0.5, 0.5).unwrap()), 0.01).unwrap();
        let z = TruncationPlan::new(&pdb(ZetaSeries::basel()), 0.01).unwrap();
        assert!(z.n() > 10 * g.n());
    }

    #[test]
    fn proof_conditions_hold() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        for eps in [0.3, 0.1, 0.01] {
            let plan = TruncationPlan::new(&p, eps).unwrap();
            let alpha = plan.truncation.alpha;
            assert!(alpha.exp() <= 1.0 + eps + 1e-12);
            assert!((-alpha).exp() >= 1.0 - eps - 1e-12);
            assert!(plan.truncation.tail_mass <= 0.5);
        }
    }
}

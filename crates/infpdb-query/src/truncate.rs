//! Truncation planning for Proposition 6.1.
//!
//! "Choose `n` large enough such that for all `i > n` we have `p_i ≤ 1/2`
//! and `e^{α_n} ≤ 1 + ε` and `e^{−α_n} ≥ 1 − ε` … an appropriate `n` can be
//! found algorithmically by systematically listing facts until the
//! remaining probability mass is small enough."
//!
//! The search itself lives in `infpdb_math::truncation`; this module binds
//! it to a PDB and materializes the `Ω_n` prefix table.

use crate::cancel::{CancelKind, CancelToken, CHECK_EVERY};
use crate::QueryError;
use infpdb_finite::TiTable;
use infpdb_math::truncation::{self, Truncation};
use infpdb_ti::construction::CountableTiPdb;

/// A planned truncation: the Proposition 6.1 certificates plus the
/// materialized prefix table.
#[derive(Debug)]
pub struct TruncationPlan {
    /// The certificates (`n`, tail mass, `α_n`).
    pub truncation: Truncation,
    /// The finite table over `f₁ … f_n`.
    pub table: TiTable,
    /// The tolerance the plan was built for.
    pub eps: f64,
}

/// The outcome of a cancellable truncation build: either the full plan,
/// or the state at the moment a [`CancelToken`] checkpoint fired.
#[derive(Debug)]
pub enum PlannedTruncation {
    /// The loop ran to completion.
    Complete(TruncationPlan),
    /// A checkpoint stopped the loop mid-materialization.
    Cancelled {
        /// What fired the checkpoint.
        kind: CancelKind,
        /// Facts materialized before the stop.
        facts_processed: usize,
        /// The partial prefix table — `facts_processed` facts of `Ω_n`.
        /// Sound to evaluate against at the tolerance certified by
        /// [`partial_certificate`], when one exists.
        partial_table: TiTable,
    },
}

impl TruncationPlan {
    /// Builds the Proposition 6.1 truncation for tolerance
    /// `ε ∈ (0, 1/2)`.
    pub fn new(pdb: &CountableTiPdb, eps: f64) -> Result<Self, QueryError> {
        let truncation = truncation::for_tolerance(pdb.supply(), eps)?;
        let table = pdb.truncate(truncation.n)?;
        Ok(Self {
            truncation,
            table,
            eps,
        })
    }

    /// Like [`TruncationPlan::new`], but materializes the prefix table
    /// fact by fact with a [`CancelToken`] checkpoint every
    /// [`CHECK_EVERY`] facts, so deadline-expired or client-cancelled
    /// requests stop mid-loop instead of paying the full `n(ε)`.
    pub fn new_cancellable(
        pdb: &CountableTiPdb,
        eps: f64,
        cancel: &CancelToken,
    ) -> Result<PlannedTruncation, QueryError> {
        if let Err(kind) = cancel.check() {
            return Ok(PlannedTruncation::Cancelled {
                kind,
                facts_processed: 0,
                partial_table: TiTable::new(pdb.schema().clone()),
            });
        }
        let truncation = truncation::for_tolerance(pdb.supply(), eps)?;
        let supply = pdb.supply();
        let cap = supply.support_len().unwrap_or(usize::MAX).min(truncation.n);
        let mut table = TiTable::new(pdb.schema().clone());
        for i in 0..cap {
            if i % CHECK_EVERY == 0 {
                if let Err(kind) = cancel.check() {
                    return Ok(PlannedTruncation::Cancelled {
                        kind,
                        facts_processed: i,
                        partial_table: table,
                    });
                }
            }
            table
                .add_fact(supply.fact(i), supply.prob(i))
                .map_err(|e| QueryError::Finite(e.to_string()))?;
        }
        Ok(PlannedTruncation::Complete(Self {
            truncation,
            table,
            eps,
        }))
    }

    /// `n(ε)`: the prefix length.
    pub fn n(&self) -> usize {
        self.truncation.n
    }

    /// Certified bound on `P(¬Ω_n)` — the mass escaping the truncation.
    pub fn escape_probability(&self) -> f64 {
        self.truncation.escape_probability()
    }
}

/// The soundness certificate of a *partial* prefix: if a cancelled loop
/// stopped after `m` facts, the `m`-fact table is itself a valid
/// Proposition 6.1 truncation at the tolerance `ε_m = e^{α_m} − 1` with
/// `α_m = (3/2)·T_m` (`T_m` the certified tail bound at `m`), because the
/// proof of Prop 6.1 only uses `e^{α} ≤ 1 + ε` and `e^{−α} ≥ 1 − ε`, and
/// `e^α − 1 ≥ 1 − e^{−α}` makes `ε_m` cover both directions.
///
/// Returns `(truncation-at-m, ε_m)`, or `None` when the prefix is too
/// short to certify anything: the tail bound is infinite/unknown, exceeds
/// `1/2` (claim (∗) needs every remaining term `≤ 1/2`), or yields
/// `ε_m ≥ 1/2` (outside Prop 6.1's tolerance range, vacuous anyway).
pub fn partial_certificate(pdb: &CountableTiPdb, m: usize) -> Option<(Truncation, f64)> {
    let tail_mass = match pdb.supply().tail_upper(m) {
        infpdb_math::series::TailBound::Finite(t) => t,
        _ => return None,
    };
    // range check written to also reject NaN tail bounds
    if !(0.0..=0.5).contains(&tail_mass) {
        return None;
    }
    let alpha = 1.5 * tail_mass;
    let eps_m = alpha.exp_m1();
    if eps_m >= 0.5 {
        return None;
    }
    Some((
        Truncation {
            n: m,
            tail_mass,
            alpha,
        },
        eps_m,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_math::series::{GeometricSeries, ZetaSeries};
    use infpdb_ti::enumerator::FactSupply;

    fn pdb(series: impl infpdb_math::series::ProbSeries + Send + Sync + 'static) -> CountableTiPdb {
        let schema = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        CountableTiPdb::new(FactSupply::unary_over_naturals(schema, RelId(0), series)).unwrap()
    }

    #[test]
    fn plan_materializes_prefix() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let plan = TruncationPlan::new(&p, 0.1).unwrap();
        assert_eq!(plan.table.len(), plan.n());
        assert!(plan.n() >= 4);
        assert!(plan.escape_probability() <= 0.1);
        assert_eq!(plan.eps, 0.1);
    }

    #[test]
    fn plan_rejects_bad_tolerances() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        for eps in [0.0, 0.5, 0.7, -0.1] {
            assert!(TruncationPlan::new(&p, eps).is_err(), "eps = {eps}");
        }
    }

    #[test]
    fn slow_series_get_long_plans() {
        let g = TruncationPlan::new(&pdb(GeometricSeries::new(0.5, 0.5).unwrap()), 0.01).unwrap();
        let z = TruncationPlan::new(&pdb(ZetaSeries::basel()), 0.01).unwrap();
        assert!(z.n() > 10 * g.n());
    }

    #[test]
    fn cancellable_plan_completes_when_token_never_fires() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        let token = CancelToken::new();
        match TruncationPlan::new_cancellable(&p, 0.1, &token).unwrap() {
            PlannedTruncation::Complete(plan) => {
                let direct = TruncationPlan::new(&p, 0.1).unwrap();
                assert_eq!(plan.n(), direct.n());
                assert_eq!(plan.table.len(), direct.table.len());
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_fact() {
        let p = pdb(ZetaSeries::basel());
        let token = CancelToken::new();
        token.cancel();
        match TruncationPlan::new_cancellable(&p, 0.01, &token).unwrap() {
            PlannedTruncation::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => {
                assert_eq!(kind, crate::cancel::CancelKind::Explicit);
                assert_eq!(facts_processed, 0);
                assert_eq!(partial_table.len(), 0);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_stops_mid_loop_with_partial_table() {
        // ζ(2) at ε = 0.01 needs thousands of facts; an already-expired
        // deadline must stop at the first checkpoint after the plan
        let p = pdb(ZetaSeries::basel());
        let token = CancelToken::with_deadline(std::time::Duration::ZERO);
        match TruncationPlan::new_cancellable(&p, 0.01, &token).unwrap() {
            PlannedTruncation::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => {
                assert_eq!(kind, crate::cancel::CancelKind::Deadline);
                assert_eq!(partial_table.len(), facts_processed);
                let full = TruncationPlan::new(&p, 0.01).unwrap();
                assert!(facts_processed < full.n());
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn partial_certificate_is_sound_and_monotone() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        // m = 0: tail mass 1.0 > 1/2 ⇒ nothing certifiable
        assert!(partial_certificate(&p, 0).is_none());
        // larger prefixes certify tighter tolerances
        let (t4, e4) = partial_certificate(&p, 4).unwrap();
        let (t8, e8) = partial_certificate(&p, 8).unwrap();
        assert_eq!(t4.n, 4);
        assert_eq!(t8.n, 8);
        assert!(e8 < e4);
        assert!(e4 < 0.5 && e4 > 0.0);
        // the certificate satisfies both Prop 6.1 proof conditions
        for (t, e) in [(t4, e4), (t8, e8)] {
            assert!(t.alpha.exp() <= 1.0 + e + 1e-12);
            assert!((-t.alpha).exp() >= 1.0 - e - 1e-12);
            assert!(t.tail_mass <= 0.5);
        }
    }

    #[test]
    fn proof_conditions_hold() {
        let p = pdb(GeometricSeries::new(0.5, 0.5).unwrap());
        for eps in [0.3, 0.1, 0.01] {
            let plan = TruncationPlan::new(&p, eps).unwrap();
            let alpha = plan.truncation.alpha;
            assert!(alpha.exp() <= 1.0 + eps + 1e-12);
            assert!((-alpha).exp() >= 1.0 - eps - 1e-12);
            assert!(plan.truncation.tail_mass <= 0.5);
        }
    }
}

//! Durable snapshots of the prepared-query pipeline's grounded prefix.
//!
//! [`PreparedPdb::persist`] serializes the shared catalog into an
//! [`infpdb_store::Store`]; [`PreparedPdb::open`] restores it on the
//! next start so the enumeration cost is skipped. Opening is **total**:
//! every failure mode — no snapshot, torn segments, checksum damage, a
//! store written by a different database — degrades to a smaller (or
//! empty) verified prefix plus an honest [`StoreStatus`], never an
//! error and never silently wrong answers.
//!
//! Two layers of verification keep restored answers bit-for-bit equal
//! to freshly grounded ones:
//!
//! 1. the store's own checksums and fingerprints (detect damage), and
//! 2. a fact-by-fact comparison of the restored prefix against the live
//!    [`FactSupply`](infpdb_ti::enumerator::FactSupply) — id, fact, and
//!    exact probability bits. Only facts the supply would enumerate
//!    identically are adopted, so the catalog after `open` is
//!    indistinguishable from one built by [`PreparedPdb::warm`].
//!
//! Layer 2 is skipped — the reopen **fast path**,
//! [`OpenReport::supply_check_skipped`] — when layer 1 already proves
//! identity: a clean recovery whose manifest carries the PDB fingerprint
//! the caller expects over the same schema. That makes reopening a
//! 10⁷-fact store O(shards) of checksum scanning instead of O(n) supply
//! re-enumeration on top.
//!
//! Dropping a damaged tail is sound by Proposition 6.1: the kept
//! `m`-fact prefix still answers queries at the widened tolerance
//! `ε_m = e^{1.5·T_m} − 1` ([`partial_certificate`] computes it), which
//! [`StoreStatus::Recovered`] reports as the ε floor.

use crate::prepared::PreparedPdb;
use crate::truncate::partial_certificate;
use infpdb_core::fact::Fact;
use infpdb_core::json::Json;
use infpdb_store::{Recovered, RecoveryReport, SnapshotInfo, Store, StoreError};
use infpdb_ti::catalog::FactCatalog;
use infpdb_ti::construction::CountableTiPdb;

/// The health of the durable store behind a prepared PDB, as
/// established by [`PreparedPdb::open`]. Mirrors the `/healthz`
/// `store` field of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreStatus {
    /// The store directory holds no snapshot yet.
    Fresh,
    /// The snapshot restored completely and verified bit-for-bit.
    Ok {
        /// Facts restored into the catalog.
        facts: usize,
    },
    /// Damage was detected; a verified prefix was recovered.
    Recovered {
        /// Facts restored (the verified prefix).
        facts_kept: usize,
        /// Facts lost to damage.
        facts_dropped: u64,
        /// Checksum failures encountered while scanning.
        checksum_failures: u64,
        /// The widened tolerance the kept prefix re-certifies at
        /// (Proposition 6.1), when one exists below 1/2. Queries at
        /// looser ε are still served warm; tighter ones re-ground.
        eps_floor: Option<f64>,
    },
    /// The snapshot was unusable (corrupt manifest, wrong database);
    /// the catalog starts empty. The reason says why.
    Degraded {
        /// Human-readable cause.
        reason: String,
    },
}

impl StoreStatus {
    /// The wire label used by `/healthz` and the CLI:
    /// `fresh | ok | recovered | degraded`.
    pub fn label(&self) -> &'static str {
        match self {
            StoreStatus::Fresh => "fresh",
            StoreStatus::Ok { .. } => "ok",
            StoreStatus::Recovered { .. } => "recovered",
            StoreStatus::Degraded { .. } => "degraded",
        }
    }
}

/// Everything [`PreparedPdb::open`] established about the store.
#[derive(Debug, Clone)]
pub struct OpenReport {
    /// The verdict.
    pub status: StoreStatus,
    /// The raw recovery accounting, when a snapshot was loaded.
    pub recovery: Option<RecoveryReport>,
    /// Whether the fact-by-fact supply comparison was skipped because
    /// the snapshot already proved its identity: a clean recovery whose
    /// manifest carries the same PDB fingerprint the caller expects and
    /// the same schema the live supply declares. This is the reopen
    /// fast path — O(1) instead of O(n) supply enumerations.
    pub supply_check_skipped: bool,
}

impl PreparedPdb {
    /// Opens a prepared PDB against a durable store: restores the
    /// persisted prefix (verified fact-by-fact against the live
    /// supply) and reports what happened. Total — never fails; the
    /// worst outcome is an empty catalog with a
    /// [`StoreStatus::Degraded`] explanation.
    ///
    /// `expected_fingerprint` is the caller's identity for the supply
    /// (e.g. the serving layer's PDB fingerprint); when both it and the
    /// manifest carry one and they disagree, the snapshot is rejected
    /// as belonging to a different database.
    pub fn open(
        pdb: CountableTiPdb,
        store: &Store,
        expected_fingerprint: Option<u64>,
    ) -> (PreparedPdb, OpenReport) {
        let prepared = PreparedPdb::new(pdb);
        let recovered = match store.load() {
            Ok(None) => {
                return (
                    prepared,
                    OpenReport {
                        status: StoreStatus::Fresh,
                        recovery: None,
                        supply_check_skipped: false,
                    },
                )
            }
            Ok(Some(r)) => r,
            Err(e) => {
                return (
                    prepared,
                    OpenReport {
                        status: StoreStatus::Degraded {
                            reason: e.to_string(),
                        },
                        recovery: None,
                        supply_check_skipped: false,
                    },
                )
            }
        };
        let report = recovered.report;
        let fingerprints_match = match (expected_fingerprint, recovered.manifest.pdb_fingerprint) {
            (Some(expect), Some(got)) => {
                if expect != got {
                    return (
                        prepared,
                        OpenReport {
                            status: StoreStatus::Degraded {
                                reason: format!(
                                    "snapshot belongs to a different database \
                                     (fingerprint {got:016x}, expected {expect:016x})"
                                ),
                            },
                            recovery: Some(report),
                            supply_check_skipped: false,
                        },
                    );
                }
                true
            }
            _ => false,
        };

        // reopen fast path: a clean recovery whose manifest proved the
        // supply's identity (matching PDB fingerprint) over the same
        // schema needs no fact-by-fact re-enumeration — the store's
        // fingerprints already guarantee bit-equality with what
        // `persist` was handed, and the PDB fingerprint guarantees
        // `persist` was handed *this* supply's prefix
        let fast = fingerprints_match
            && report.clean()
            && schemas_identical(recovered.catalog.schema(), prepared.pdb().schema());
        let (catalog, diverged, supply_check_skipped) = if fast {
            (recovered.catalog, false, true)
        } else {
            let (catalog, diverged) = verify_against_supply(&prepared, &recovered);
            (catalog, diverged, false)
        };
        let facts_kept = catalog.len();
        if !prepared.adopt_catalog(catalog) {
            unreachable!("a just-created prepared PDB is empty");
        }

        let status = if diverged {
            StoreStatus::Degraded {
                reason: format!(
                    "restored facts diverge from the live supply after {facts_kept} facts \
                     (database changed since the snapshot?)"
                ),
            }
        } else if report.clean() {
            StoreStatus::Ok { facts: facts_kept }
        } else {
            StoreStatus::Recovered {
                facts_kept,
                facts_dropped: report.facts_dropped,
                checksum_failures: report.checksum_failures,
                eps_floor: partial_certificate(prepared.pdb(), facts_kept).map(|(_, eps_m)| eps_m),
            }
        };
        (
            prepared,
            OpenReport {
                status,
                recovery: Some(report),
                supply_check_skipped,
            },
        )
    }

    /// Writes the current grounded prefix to the store. The snapshot is
    /// a point-in-time copy; concurrent executions keep running against
    /// the shared catalog while it is written.
    pub fn persist(
        &self,
        store: &Store,
        pdb_fingerprint: Option<u64>,
        descriptor: Option<Json>,
    ) -> Result<SnapshotInfo, StoreError> {
        store.snapshot(&self.catalog_snapshot(), pdb_fingerprint, descriptor)
    }
}

/// Whether two schemas declare the same relations (name and arity) in
/// the same id order — the precondition for adopting a stored catalog
/// without remapping relation ids.
fn schemas_identical(a: &infpdb_core::schema::Schema, b: &infpdb_core::schema::Schema) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|((ia, ra), (ib, rb))| {
            ia == ib && ra.name() == rb.name() && ra.arity() == rb.arity()
        })
}

/// Re-checks every restored fact against the live supply, remapping
/// relation ids by name (the snapshot's schema may order relations
/// differently). Returns the verified catalog and whether verification
/// stopped early on a divergence.
fn verify_against_supply(prepared: &PreparedPdb, recovered: &Recovered) -> (FactCatalog, bool) {
    let supply = prepared.pdb().supply();
    let live_schema = prepared.pdb().schema();
    let stored_schema = recovered.catalog.schema();
    let limit = supply
        .support_len()
        .unwrap_or(usize::MAX)
        .min(recovered.catalog.len());
    let mut catalog = FactCatalog::new(live_schema.clone());
    let mut diverged = recovered.catalog.len() > limit;
    for (id, fact, prob) in recovered.catalog.iter().take(limit) {
        let i = id.0 as usize;
        // remap the stored relation id into the live schema by name
        let Some(mapped) = stored_schema
            .get(fact.rel())
            .and_then(|r| live_schema.rel_id(r.name()))
            .map(|rel| Fact::new(rel, fact.args().iter().cloned()))
        else {
            diverged = true;
            break;
        };
        if mapped != *supply.fact_at(i) || prob.to_bits() != supply.prob(i).to_bits() {
            diverged = true;
            break;
        }
        catalog
            .push(mapped, prob)
            .expect("verified facts mirror the injective supply prefix");
    }
    (catalog, diverged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::PartialOnCancel;
    use crate::cancel::CancelToken;
    use crate::prepared::PreparedQuery;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_finite::engine::Engine;
    use infpdb_logic::parse;
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::enumerator::FactSupply;
    use std::path::PathBuf;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn geometric() -> CountableTiPdb {
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.5, 0.5).unwrap(),
        ))
        .unwrap()
    }

    fn tempdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("infpdb-persist-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn open_on_empty_dir_is_fresh() {
        let dir = tempdir("fresh");
        let store = Store::open_dir(&dir);
        let (prepared, report) = PreparedPdb::open(geometric(), &store, None);
        assert_eq!(report.status, StoreStatus::Fresh);
        assert_eq!(prepared.materialized_len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persist_open_round_trip_serves_identical_answers() {
        let dir = tempdir("roundtrip");
        let store = Store::open_dir(&dir);
        let pdb = geometric();
        let q = parse("exists x. R(x)", pdb.schema()).unwrap();

        let prepared = PreparedPdb::new(pdb.clone());
        prepared.warm(0.001).unwrap();
        let baseline = PreparedQuery::prepare(prepared.clone(), &q, Engine::Lineage)
            .execute(0.001, &CancelToken::new())
            .unwrap();
        prepared
            .persist(&store, Some(7), Some(Json::obj([("tail", Json::Int(1))])))
            .unwrap();

        let (reopened, report) = PreparedPdb::open(pdb, &store, Some(7));
        assert_eq!(
            report.status,
            StoreStatus::Ok {
                facts: prepared.materialized_len()
            }
        );
        assert!(
            report.supply_check_skipped,
            "clean + matching fingerprints + same schema must take the fast path"
        );
        assert_eq!(reopened.materialized_len(), prepared.materialized_len());
        let replay = PreparedQuery::prepare(reopened, &q, Engine::Lineage)
            .execute(0.001, &CancelToken::new())
            .unwrap();
        assert_eq!(replay.0, baseline.0, "answers must be bit-for-bit equal");
        assert_eq!(replay.1, baseline.1, "work counters must agree");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_without_fingerprints_takes_the_verified_slow_path() {
        // no pdb fingerprint on either side ⇒ identity unproven ⇒ the
        // fact-by-fact supply comparison must run (and still verify)
        let dir = tempdir("slowpath");
        let store = Store::open_dir(&dir);
        let pdb = geometric();
        let prepared = PreparedPdb::new(pdb.clone());
        prepared.warm(0.01).unwrap();
        prepared.persist(&store, None, None).unwrap();
        let (reopened, report) = PreparedPdb::open(pdb, &store, None);
        assert!(!report.supply_check_skipped);
        assert_eq!(
            report.status,
            StoreStatus::Ok {
                facts: prepared.materialized_len()
            }
        );
        assert_eq!(reopened.materialized_len(), prepared.materialized_len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_store_recovers_with_eps_floor() {
        let dir = tempdir("recover");
        let store = Store::open_dir(&dir);
        let pdb = geometric();
        let prepared = PreparedPdb::new(pdb.clone());
        prepared.warm(0.001).unwrap();
        prepared.persist(&store, None, None).unwrap();
        // tear the tail off the single segment file
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .find(|p| p.extension().is_some_and(|x| x == "seg"))
            .unwrap();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() * 2 / 3]).unwrap();

        let (reopened, report) = PreparedPdb::open(pdb.clone(), &store, None);
        match report.status {
            StoreStatus::Recovered {
                facts_kept,
                facts_dropped,
                eps_floor,
                ..
            } => {
                assert_eq!(facts_kept, reopened.materialized_len());
                assert!(facts_dropped > 0);
                // geometric tails vanish fast: the kept prefix certifies
                let floor = eps_floor.expect("geometric prefix certifies");
                assert!(floor > 0.0 && floor < 0.5);
                // a query at a tolerance looser than the floor is warm
                let q = parse("exists x. R(x)", pdb.schema()).unwrap();
                let fresh = PreparedPdb::new(pdb.clone());
                let a = PreparedQuery::prepare(reopened, &q, Engine::Lineage)
                    .execute(0.01, &CancelToken::new())
                    .unwrap();
                let b = PreparedQuery::prepare(fresh, &q, Engine::Lineage)
                    .execute(0.01, &CancelToken::new())
                    .unwrap();
                assert_eq!(a.0, b.0, "recovered prefix answers match fresh");
            }
            other => panic!("expected Recovered, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_degrades_instead_of_lying() {
        let dir = tempdir("wrongdb");
        let store = Store::open_dir(&dir);
        let prepared = PreparedPdb::new(geometric());
        prepared.warm(0.01).unwrap();
        prepared.persist(&store, Some(111), None).unwrap();
        let (reopened, report) = PreparedPdb::open(geometric(), &store, Some(222));
        assert!(matches!(report.status, StoreStatus::Degraded { .. }));
        assert_eq!(reopened.materialized_len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supply_divergence_is_detected_fact_by_fact() {
        let dir = tempdir("diverge");
        let store = Store::open_dir(&dir);
        let prepared = PreparedPdb::new(geometric());
        prepared.warm(0.01).unwrap();
        prepared.persist(&store, None, None).unwrap();
        // reopen against a *different* distribution: same facts, other probs
        let other = CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(0.25, 0.5).unwrap(),
        ))
        .unwrap();
        let (reopened, report) = PreparedPdb::open(other, &store, None);
        assert!(
            matches!(report.status, StoreStatus::Degraded { .. }),
            "{:?}",
            report.status
        );
        assert_eq!(reopened.materialized_len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_prefix_still_cancels_soundly() {
        // sanity: an adopted catalog behaves exactly like a warmed one
        // under the cancellation path
        let dir = tempdir("cancel");
        let store = Store::open_dir(&dir);
        let pdb = geometric();
        let prepared = PreparedPdb::new(pdb.clone());
        prepared.warm(0.01).unwrap();
        prepared.persist(&store, None, None).unwrap();
        let (reopened, _) = PreparedPdb::open(pdb.clone(), &store, None);
        let q = parse("exists x. R(x)", pdb.schema()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = PreparedQuery::prepare(reopened, &q, Engine::Auto)
            .execute_with_policy(0.01, &token, PartialOnCancel::Evaluate)
            .unwrap_err();
        assert!(matches!(err, crate::QueryError::Cancelled(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}

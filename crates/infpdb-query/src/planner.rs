//! The cost-based plan optimizer: volcano-style strategy selection per
//! relation-disjoint query component.
//!
//! Proposition 6.1 reduces infinite-PDB evaluation to a finite engine on
//! the truncation `Ω_n` — but the *choice* of finite engine was a static
//! two-way fallback. This module replaces it for `Engine::Auto`: per
//! component of the compiled query (see
//! [`infpdb_logic::compile::CompiledQuery::components`]) it prices the
//! four strategies the finite layer offers and picks the cheapest:
//!
//! * **Lifted** — `C = atoms · (n+1)`, available when the component has a
//!   hierarchical safe plan;
//! * **Shannon** — the measured cost of a *budgeted trial run* on the
//!   small profile prefix, extrapolated by `scale^γ` with
//!   `scale = (n_eval+1)/(n_profile+1)`; a trial that exhausts its budget
//!   gets a large (but finite — Shannon is the always-available exact
//!   fallback) pessimistic cost;
//! * **Monte-Carlo** — Hoeffding sample count for the component's share
//!   of the sampling error budget, times the per-sample cost of drawing
//!   a whole world and evaluating the lineage DAG;
//! * **Karp–Luby** — for syntactically monotone components whose profile
//!   lineage converts to a bounded DNF: the Karp–Luby–Madras sample
//!   count (multiplicative ε implies additive ε for probabilities),
//!   times a per-sample cost that touches only the DNF's own variables.
//!
//! **Determinism contract.** A plan is a pure function of (PDB
//! fingerprint, query fingerprint, ε, [`PlanKnobs`]) — never runtime
//! load, thread count, or scheduler. Profiling always runs on the prefix
//! at the *canonical* `knobs.profile_eps` (not the request ε), so the
//! same query planned at different tolerances, in any order, from any
//! process, produces the same profile; sampling seeds are derived by
//! fingerprinting `(seed, pdb_fp, query_fp, ε, component index)`.
//!
//! **Error budget.** An all-exact plan evaluates on the truncation at the
//! requested ε, exactly like the static path. When any component
//! samples, the budget splits: the truncation runs at
//! `ε·(1−σ)` (σ = `knobs.sampling_fraction`) and each of the `k`
//! components may spend `ε·σ/k` of sampling error, so the total additive
//! error stays ≤ ε (component errors sum across an independent
//! `And`/`Or` combination of probabilities in `[0,1]`). Sampling
//! guarantees hold with probability `1 − δ` per sampled component.
//!
//! **Re-planning.** ε-refinement re-derives the plan (sample counts
//! change with ε), but only a change of the *strategy vector* — the cost
//! crossover actually moving — counts as a re-plan in [`PlanEvent`] and
//! the serve layer's `serve_replans_total`.

use crate::prepared::{PreparedPdb, PreparedPrefix};
use crate::truncate::{PlannedTruncation, TruncationPlan};
use crate::QueryError;
use infpdb_core::fingerprint::Fingerprinter;
use infpdb_finite::arena::LineageArena;
use infpdb_finite::lineage::lineage_of_arena;
use infpdb_finite::plan::{ChosenPlan, ComponentPlan, Strategy};
use infpdb_finite::{karp_luby, monte_carlo, shannon, TiTable};
use infpdb_logic::compile::{CompiledQuery, Connective};
use infpdb_math::truncation;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::fingerprint::countable_pdb_fingerprint;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The planner's tuning parameters. All fields participate in the plan's
/// identity (see [`PlanKnobs::fingerprint`]) — the serve layer folds the
/// fingerprint into its answer-cache key so a knob change can never alias
/// a stale cached answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanKnobs {
    /// The canonical tolerance the profile prefix is built at. Planning
    /// stays a pure function of (pdb, query, ε, knobs) because this — not
    /// the request ε — decides what the cost model measures.
    pub profile_eps: f64,
    /// Fraction σ of the error budget granted to sampling when any
    /// component samples; the truncation keeps `ε·(1−σ)`.
    pub sampling_fraction: f64,
    /// Per-component confidence parameter δ for sampling strategies.
    pub delta: f64,
    /// Expansion budget of the Shannon trial run on the profile prefix.
    pub shannon_trial_budget: usize,
    /// Clause cap for DNF conversion (profiling and evaluation).
    pub max_dnf_clauses: usize,
    /// Hard ceiling on any sampling strategy's sample count; costlier
    /// sampling plans are disqualified rather than scheduled.
    pub max_samples: usize,
    /// Master seed folded into every component's sampling seed.
    pub seed: u64,
    /// Growth exponent γ for extrapolating the Shannon trial cost from
    /// the profile prefix to the evaluation prefix.
    pub shannon_growth: f64,
}

impl Default for PlanKnobs {
    fn default() -> Self {
        PlanKnobs {
            profile_eps: 0.05,
            sampling_fraction: 0.5,
            delta: 0.01,
            shannon_trial_budget: 20_000,
            max_dnf_clauses: 4096,
            max_samples: 50_000_000,
            seed: 0x109f_dbb5,
            shannon_growth: 1.5,
        }
    }
}

impl PlanKnobs {
    /// Stable digest of every knob — part of every cache key that stores
    /// planner-derived answers.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_f64(self.profile_eps)
            .write_f64(self.sampling_fraction)
            .write_f64(self.delta)
            .write_u64(self.shannon_trial_budget as u64)
            .write_u64(self.max_dnf_clauses as u64)
            .write_u64(self.max_samples as u64)
            .write_u64(self.seed)
            .write_f64(self.shannon_growth);
        fp.finish()
    }
}

/// What profiling measured for one query component on the profile prefix.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ProfileRow {
    /// Component has a hierarchical safe plan.
    safe: bool,
    /// Relational atoms in the component formula.
    atoms: usize,
    /// Interned lineage nodes after grounding on the profile prefix.
    nodes: usize,
    /// Distinct fact variables in the profile lineage.
    vars: usize,
    /// Work units of the completed Shannon trial (`None`: budget blown).
    shannon_ops: Option<u64>,
    /// `(clauses, total literal count, distinct DNF variables)` when the
    /// profile lineage converts to a monotone DNF within the clause cap.
    dnf: Option<(usize, usize, usize)>,
}

/// The reusable profiling artifact: per-component measurements on the
/// canonical profile prefix, plus the identities that make plans pure.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanProfile {
    rows: Vec<ProfileRow>,
    connective: Connective,
    profile_n: usize,
    pdb_fp: u64,
    query_fp: u64,
    knobs_fp: u64,
}

/// Profiling against a cancellable prefix either completes or reports
/// the cancellation state for the caller's partial-answer path.
#[derive(Debug)]
pub enum ProfileOutcome {
    /// Profiling completed.
    Ready(PlanProfile),
    /// A cancellation checkpoint fired while materializing the profile
    /// prefix.
    Cancelled {
        /// What fired.
        kind: crate::cancel::CancelKind,
        /// Facts materialized before the checkpoint.
        facts_processed: usize,
        /// The partial prefix over those facts.
        partial_table: TiTable,
    },
}

impl PlanProfile {
    /// Profiles every component of `compiled` on `profile_table` (the
    /// prefix at [`PlanKnobs::profile_eps`]).
    pub fn build(
        compiled: &CompiledQuery,
        profile_table: &TiTable,
        pdb_fp: u64,
        knobs: &PlanKnobs,
    ) -> Result<PlanProfile, QueryError> {
        let mut rows = Vec::with_capacity(compiled.components().len());
        for comp in compiled.components() {
            let mut arena = LineageArena::new();
            let root = lineage_of_arena(comp.formula(), profile_table, &mut arena)
                .map_err(QueryError::from)?;
            let nodes = arena.stats().nodes;
            let vars = arena.vars(root).len();
            let dnf = if comp.is_monotone() {
                karp_luby::to_dnf_arena(&arena, root, knobs.max_dnf_clauses).map(|d| {
                    let clauses = d.len();
                    let literals: usize = d.iter().map(|c| c.len()).sum();
                    let mut dv: Vec<_> = d.into_iter().flatten().collect();
                    dv.sort_unstable();
                    dv.dedup();
                    (clauses, literals, dv.len())
                })
            } else {
                None
            };
            let shannon_ops = shannon::probability_dag_with_budget(
                &mut arena,
                root,
                &|id| profile_table.prob(id),
                knobs.shannon_trial_budget,
            )
            .map(|(_, stats)| {
                (stats.expansions * 8 + stats.decompositions * 2 + stats.cache_hits + nodes) as u64
            });
            rows.push(ProfileRow {
                safe: comp.is_safe(),
                atoms: comp.profile().atoms.max(1),
                nodes,
                vars,
                shannon_ops,
                dnf,
            });
        }
        Ok(PlanProfile {
            rows,
            connective: compiled.connective(),
            profile_n: profile_table.len(),
            pdb_fp,
            query_fp: compiled.fingerprint(),
            knobs_fp: knobs.fingerprint(),
        })
    }

    /// Profiles on the one-shot truncation at `knobs.profile_eps`,
    /// checkpointing `cancel` during prefix materialization.
    pub fn build_oneshot(
        pdb: &CountableTiPdb,
        compiled: &CompiledQuery,
        knobs: &PlanKnobs,
        cancel: &crate::cancel::CancelToken,
    ) -> Result<ProfileOutcome, QueryError> {
        match TruncationPlan::new_cancellable(pdb, knobs.profile_eps, cancel)? {
            PlannedTruncation::Complete(plan) => {
                let fp = countable_pdb_fingerprint(pdb);
                Ok(ProfileOutcome::Ready(Self::build(
                    compiled,
                    &plan.table,
                    fp,
                    knobs,
                )?))
            }
            PlannedTruncation::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => Ok(ProfileOutcome::Cancelled {
                kind,
                facts_processed,
                partial_table,
            }),
        }
    }

    /// Profiles on a [`PreparedPdb`]'s shared prefix at
    /// `knobs.profile_eps` — byte-identical to the one-shot profile, so
    /// prepared and one-shot planning agree bit-for-bit.
    pub fn build_prepared(
        prepared: &PreparedPdb,
        compiled: &CompiledQuery,
        knobs: &PlanKnobs,
        cancel: &crate::cancel::CancelToken,
    ) -> Result<ProfileOutcome, QueryError> {
        match prepared.prefix_for(knobs.profile_eps, cancel)? {
            PreparedPrefix::Complete { table, .. } => {
                let fp = countable_pdb_fingerprint(prepared.pdb());
                Ok(ProfileOutcome::Ready(Self::build(
                    compiled, &table, fp, knobs,
                )?))
            }
            PreparedPrefix::Cancelled {
                kind,
                facts_processed,
                partial_table,
            } => Ok(ProfileOutcome::Cancelled {
                kind,
                facts_processed,
                partial_table,
            }),
        }
    }

    /// The PDB fingerprint the profile (and its seeds) are bound to.
    pub fn pdb_fingerprint(&self) -> u64 {
        self.pdb_fp
    }

    /// Chooses the cheapest strategy per component at tolerance `eps`,
    /// with `n_eval` the evaluation-prefix length (see
    /// [`eval_prefix_len`]). Pure: no measurement happens here.
    pub fn choose(&self, eps: f64, n_eval: usize, knobs: &PlanKnobs) -> ChosenPlan {
        debug_assert_eq!(
            self.knobs_fp,
            knobs.fingerprint(),
            "knobs changed under profile"
        );
        let k = self.rows.len().max(1) as f64;
        let scale = (n_eval as f64 + 1.0) / (self.profile_n as f64 + 1.0);
        let eps_i = eps * knobs.sampling_fraction / k;
        let components: Vec<ComponentPlan> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                // Shannon first (the always-available exact fallback),
                // then lifted, Karp–Luby, Monte-Carlo, each replacing the
                // incumbent only when strictly cheaper — the order is part
                // of the determinism contract (ties keep the earlier
                // strategy).
                let mut best = candidate(row, StrategyKind::Shannon, eps_i, scale, n_eval, knobs)
                    .expect("Shannon is always available");
                for kind in [
                    StrategyKind::Lifted,
                    StrategyKind::KarpLuby,
                    StrategyKind::MonteCarlo,
                ] {
                    if let Some(c) = candidate(row, kind, eps_i, scale, n_eval, knobs) {
                        if c.1 < best.1 {
                            best = c;
                        }
                    }
                }
                let seed = component_seed(knobs.seed, self.pdb_fp, self.query_fp, eps, i);
                ComponentPlan {
                    strategy: best.0,
                    cost: best.1,
                    seed,
                }
            })
            .collect();
        self.assemble(components, eps, knobs)
    }

    /// Builds the plan that uses `kind` for **every** component, with the
    /// same sample counts, costs, and seeds [`choose`](Self::choose)
    /// would assign — the bench harness's forced-strategy baseline.
    /// Returns `None` when any component is ineligible (no safe plan for
    /// lifted, no bounded monotone DNF for Karp–Luby, sampling
    /// disqualified at this ε).
    pub fn force(
        &self,
        kind: StrategyKind,
        eps: f64,
        n_eval: usize,
        knobs: &PlanKnobs,
    ) -> Option<ChosenPlan> {
        debug_assert_eq!(
            self.knobs_fp,
            knobs.fingerprint(),
            "knobs changed under profile"
        );
        let k = self.rows.len().max(1) as f64;
        let scale = (n_eval as f64 + 1.0) / (self.profile_n as f64 + 1.0);
        let eps_i = eps * knobs.sampling_fraction / k;
        let components: Option<Vec<ComponentPlan>> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                candidate(row, kind, eps_i, scale, n_eval, knobs).map(|(strategy, cost)| {
                    ComponentPlan {
                        strategy,
                        cost,
                        seed: component_seed(knobs.seed, self.pdb_fp, self.query_fp, eps, i),
                    }
                })
            })
            .collect();
        Some(self.assemble(components?, eps, knobs))
    }

    fn assemble(&self, components: Vec<ComponentPlan>, eps: f64, knobs: &PlanKnobs) -> ChosenPlan {
        let sampling = components.iter().any(|c| c.strategy.is_sampling());
        let eps_trunc = if sampling {
            eps * (1.0 - knobs.sampling_fraction)
        } else {
            eps
        };
        ChosenPlan {
            connective: self.connective,
            components,
            eps,
            eps_trunc,
        }
    }
}

/// A strategy choice without its per-plan parameters — the axis the
/// bench harness forces plans along (sample counts and clause caps are
/// derived per plan by [`PlanProfile::force`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Hierarchical safe-plan evaluation.
    Lifted,
    /// Exact Shannon expansion on the lineage DAG.
    Shannon,
    /// World-sampling Monte-Carlo.
    MonteCarlo,
    /// Karp–Luby–Madras DNF coverage sampling.
    KarpLuby,
}

impl StrategyKind {
    /// The name shared with [`Strategy::name`].
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Lifted => "lifted",
            StrategyKind::Shannon => "shannon",
            StrategyKind::MonteCarlo => "mc",
            StrategyKind::KarpLuby => "kl",
        }
    }
}

/// Prices one strategy for one profiled component: `Some((strategy,
/// cost))` when eligible, `None` otherwise. Shared verbatim by
/// [`PlanProfile::choose`] and [`PlanProfile::force`] so forced
/// baselines carry exactly the costs the optimizer compared.
fn candidate(
    row: &ProfileRow,
    kind: StrategyKind,
    eps_i: f64,
    scale: f64,
    n_eval: usize,
    knobs: &PlanKnobs,
) -> Option<(Strategy, f64)> {
    match kind {
        StrategyKind::Shannon => Some((
            Strategy::Shannon,
            match row.shannon_ops {
                Some(ops) => ops as f64 * scale.powf(knobs.shannon_growth),
                // budget blown: pessimistic but finite — Shannon stays
                // the exact strategy of last resort
                None => knobs.shannon_trial_budget as f64 * 64.0 * scale.powf(knobs.shannon_growth),
            },
        )),
        StrategyKind::Lifted => row
            .safe
            .then_some((Strategy::Lifted, row.atoms as f64 * (n_eval as f64 + 1.0))),
        StrategyKind::KarpLuby => {
            if !(eps_i > 0.0 && eps_i < 1.0) {
                return None;
            }
            let (clauses, literals, dnf_vars) = row.dnf?;
            let m_eval = ((clauses as f64 * scale).ceil() as usize).max(1);
            if m_eval > knobs.max_dnf_clauses || clauses == 0 {
                return None;
            }
            let samples = karp_luby::samples_for(m_eval, eps_i, knobs.delta);
            if samples > knobs.max_samples {
                return None;
            }
            let avg_width = literals as f64 / clauses as f64;
            let per_sample = dnf_vars as f64 * scale + avg_width + 8.0;
            Some((
                Strategy::KarpLuby {
                    samples,
                    max_clauses: knobs.max_dnf_clauses,
                },
                samples as f64 * per_sample,
            ))
        }
        StrategyKind::MonteCarlo => {
            if !(eps_i > 0.0 && eps_i < 1.0) {
                return None;
            }
            let samples = monte_carlo::samples_for(eps_i, knobs.delta);
            if samples > knobs.max_samples {
                return None;
            }
            let per_sample = n_eval as f64 + row.nodes as f64 * scale;
            Some((
                Strategy::MonteCarlo { samples },
                samples as f64 * per_sample,
            ))
        }
    }
}

fn component_seed(seed: u64, pdb_fp: u64, query_fp: u64, eps: f64, index: usize) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write_u64(seed)
        .write_u64(pdb_fp)
        .write_u64(query_fp)
        .write_u64(eps.to_bits())
        .write_u64(index as u64);
    fp.finish()
}

/// The evaluation-prefix length at tolerance `eps`: the Proposition 6.1
/// `n(ε)` capped by a finite support. Mirrors exactly what the
/// truncation/prepared paths materialize.
pub fn eval_prefix_len(pdb: &CountableTiPdb, eps: f64) -> Result<usize, QueryError> {
    let supply = pdb.supply();
    let t = truncation::for_tolerance(supply, eps)?;
    Ok(supply.support_len().unwrap_or(usize::MAX).min(t.n))
}

/// Derives the plan the optimizer would run for `query` at tolerance
/// `eps` without executing it — the `--explain` entry point. Returns the
/// compiled query (components carry the safety/monotonicity verdicts),
/// the chosen plan, and the evaluation-prefix length it was costed for.
pub fn explain(
    pdb: &CountableTiPdb,
    query: &infpdb_logic::ast::Formula,
    eps: f64,
    knobs: &PlanKnobs,
) -> Result<(CompiledQuery, ChosenPlan, usize), QueryError> {
    let n_eval = eval_prefix_len(pdb, eps)?;
    let compiled = CompiledQuery::compile(pdb.schema(), query);
    let cancel = crate::cancel::CancelToken::new();
    let profile = match PlanProfile::build_oneshot(pdb, &compiled, knobs, &cancel)? {
        ProfileOutcome::Ready(profile) => profile,
        ProfileOutcome::Cancelled { .. } => unreachable!("a fresh token never fires"),
    };
    let plan = profile.choose(eps, n_eval, knobs);
    Ok((compiled, plan, n_eval))
}

/// What [`Planner::plan_at`] did: served from the per-ε memo, or freshly
/// derived — and whether the fresh derivation changed the strategy
/// vector (a true re-plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEvent {
    /// The plan came from the per-ε memo.
    pub cached: bool,
    /// A fresh derivation picked different strategies than the previous
    /// one for this query (the cost crossover moved).
    pub replanned: bool,
}

/// The per-ε plan memo plus the strategy vector of the last derivation
/// (for re-plan detection on ε refinement).
type PlanMemo = (HashMap<u64, Arc<ChosenPlan>>, Option<Vec<u8>>);

/// A cached profile plus the per-ε plan memo — the artifact the serve
/// layer stores in its plan cache and [`crate::PreparedQuery`] keeps
/// alongside its compiled query.
#[derive(Debug)]
pub struct Planner {
    profile: PlanProfile,
    memo: Mutex<PlanMemo>,
}

impl Planner {
    /// Wraps a completed profile.
    pub fn new(profile: PlanProfile) -> Self {
        Planner {
            profile,
            memo: Mutex::new((HashMap::new(), None)),
        }
    }

    /// The profile.
    pub fn profile(&self) -> &PlanProfile {
        &self.profile
    }

    /// The plan for tolerance `eps`, memoized per ε-bit-pattern.
    pub fn plan_at(
        &self,
        eps: f64,
        n_eval: usize,
        knobs: &PlanKnobs,
    ) -> (Arc<ChosenPlan>, PlanEvent) {
        let mut memo = self
            .memo
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(plan) = memo.0.get(&eps.to_bits()) {
            return (
                Arc::clone(plan),
                PlanEvent {
                    cached: true,
                    replanned: false,
                },
            );
        }
        let plan = Arc::new(self.profile.choose(eps, n_eval, knobs));
        let vector = plan.strategy_vector();
        let replanned = memo.1.as_ref().is_some_and(|last| *last != vector);
        memo.1 = Some(vector);
        memo.0.insert(eps.to_bits(), Arc::clone(&plan));
        (
            plan,
            PlanEvent {
                cached: false,
                replanned,
            },
        )
    }
}

#![warn(missing_docs)]
//! Approximate query evaluation on countably infinite tuple-independent
//! PDBs — Section 6 of Grohe & Lindner (PODS 2019).
//!
//! Proposition 6.1: for every `0 < ε < 1/2` there is an algorithm that,
//! given a Boolean FO query and oracle access to the PDB (the expected size
//! and the fact probabilities — our
//! [`infpdb_ti::enumerator::FactSupply`]), computes `p` with
//! `P(Q) − ε ≤ p ≤ P(Q) + ε`:
//!
//! 1. choose `n` so that the discarded tail satisfies both
//!    `e^{α_n} ≤ 1 + ε` and `e^{−α_n} ≥ 1 − ε` with
//!    `α_n = (3/2)·∑_{i>n} p_i` ([`truncate`]);
//! 2. evaluate `p := P(Q | Ω_n)` with a traditional closed-world finite
//!    engine — by tuple-independence this is exactly the query probability
//!    on the prefix table ([`approx`]);
//! 3. the claim (∗) bound `∏_{i>n}(1−p_i) ≥ e^{−α_n}` turns the
//!    conditioning error into the additive guarantee.
//!
//! Free-variable queries are handled per Section 6's closing remark: every
//! valuation over `adom(Ω_n)` is evaluated as a Boolean query
//! ([`marginal`]). [`budget`] plans truncation sizes and extends the
//! algorithm to completed PDBs (mixtures of an arbitrary finite original
//! with an independent tail); [`conditional`] adds conditional
//! probabilities and expected answer counts on top.
//!
//! The paper also proves (Proposition 6.2) that the *additive* guarantee
//! cannot be improved to a multiplicative one — see `infpdb-tm` for the
//! executable reduction.

pub mod approx;
pub mod budget;
pub mod cancel;
pub mod conditional;
pub mod marginal;
pub mod persist;
pub mod planner;
pub mod prepared;
pub mod sampling;
pub mod truncate;

pub use approx::{approx_prob_boolean, Approximation};
pub use cancel::{CancelInfo, CancelKind, CancelToken};
pub use persist::{OpenReport, StoreStatus};
pub use planner::{PlanKnobs, Planner};
pub use prepared::{PreparedPdb, PreparedQuery};

/// Errors of the approximate-evaluation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// Propagated infinite-PDB error (divergence, lookup failures, …).
    Ti(infpdb_ti::TiError),
    /// Propagated finite-engine error.
    Finite(String),
    /// Propagated logic error.
    Logic(infpdb_logic::LogicError),
    /// Propagated numerics error (includes tolerance validation:
    /// Proposition 6.1 requires `ε ∈ (0, 1/2)`).
    Math(infpdb_math::MathError),
    /// The evaluation was stopped by a [`cancel::CancelToken`] checkpoint
    /// (explicit cancellation or an expired deadline), possibly carrying
    /// a sound partial answer from the facts processed so far.
    Cancelled(cancel::CancelInfo),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Ti(e) => write!(f, "{e}"),
            QueryError::Finite(e) => write!(f, "{e}"),
            QueryError::Logic(e) => write!(f, "{e}"),
            QueryError::Math(e) => write!(f, "{e}"),
            QueryError::Cancelled(info) => {
                let what = match info.kind {
                    cancel::CancelKind::Explicit => "cancelled",
                    cancel::CancelKind::Deadline => "deadline exceeded",
                };
                write!(f, "{what} after {} facts", info.facts_processed)?;
                if let Some(p) = &info.partial {
                    write!(f, " (partial: {} ± {})", p.estimate, p.eps)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<infpdb_ti::TiError> for QueryError {
    fn from(e: infpdb_ti::TiError) -> Self {
        QueryError::Ti(e)
    }
}

impl From<infpdb_logic::LogicError> for QueryError {
    fn from(e: infpdb_logic::LogicError) -> Self {
        QueryError::Logic(e)
    }
}

impl From<infpdb_math::MathError> for QueryError {
    fn from(e: infpdb_math::MathError) -> Self {
        QueryError::Math(e)
    }
}

impl From<infpdb_finite::FiniteError> for QueryError {
    fn from(e: infpdb_finite::FiniteError) -> Self {
        QueryError::Finite(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        let e: QueryError = infpdb_ti::TiError::UnboundedEvent.into();
        assert!(e.to_string().contains("finite"));
        let l: QueryError = infpdb_logic::LogicError::UnknownRelation("R".into()).into();
        assert!(l.to_string().contains("R"));
        let m: QueryError = infpdb_math::MathError::BadTolerance(0.9).into();
        assert!(m.to_string().contains("0.9"));
        assert!(QueryError::Finite("x".into()).to_string().contains("x"));
    }
}

//! Cooperative cancellation for Proposition 6.1 evaluations.
//!
//! Evaluation cost is dominated by the truncation loop that materializes
//! the `Ω_n` prefix table fact by fact. A [`CancelToken`] — an atomic
//! flag plus an optional wall-clock deadline — is threaded through that
//! loop and consulted every [`CHECK_EVERY`] facts, so a client
//! cancellation or an expired deadline stops the evaluation *mid-loop*
//! instead of after the full `n(ε)` facts have been paid for.
//!
//! Cancellation is *cooperative*: the token never interrupts a thread; it
//! is only observed at checkpoints. The finite-engine stage that follows
//! the loop is not checkpointed (it is a black box per the paper), so a
//! deadline can overshoot by one engine run — the token is checked once
//! more right before the engine starts to bound that overshoot.
//!
//! A cancelled evaluation may still carry a *sound* partial result: if
//! the loop stopped after `m` facts and the series' certified tail bound
//! at `m` is small enough, the `m`-fact prefix is itself a valid
//! Proposition 6.1 truncation at some wider tolerance `ε_m`, and the
//! engine's answer on it carries the usual additive certificate (see
//! [`crate::truncate::partial_certificate`]).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::approx::Approximation;

/// Facts materialized between two token checks in the truncation loop.
pub const CHECK_EVERY: usize = 16;

/// Why an evaluation stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// [`CancelToken::cancel`] was called (client-initiated).
    Explicit,
    /// The token's wall-clock deadline passed.
    Deadline,
}

/// Details of a cancelled evaluation, carried by
/// [`QueryError::Cancelled`](crate::QueryError::Cancelled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CancelInfo {
    /// What triggered the stop.
    pub kind: CancelKind,
    /// Facts materialized before the checkpoint fired.
    pub facts_processed: usize,
    /// A sound anytime answer from the facts processed so far, when one
    /// exists: a full [`Approximation`] at the (wider) tolerance the
    /// partial prefix certifies. `None` when the prefix was too short to
    /// certify anything non-vacuous, or partial evaluation was not
    /// requested.
    pub partial: Option<Approximation>,
}

#[derive(Debug, Default)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle: an atomic flag plus an optional
/// deadline. Clones share state; any clone can cancel all of them.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline that only cancels explicitly.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that auto-cancels `d` from now.
    pub fn with_deadline(d: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + d)
    }

    /// A token that auto-cancels at `at`.
    pub fn with_deadline_at(at: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(at),
            }),
        }
    }

    /// Requests cancellation. Idempotent; observed at the next checkpoint.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// The deadline, if the token has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Whether a checkpoint would stop now, and why. Explicit
    /// cancellation wins over an expired deadline when both hold.
    pub fn cancelled_kind(&self) -> Option<CancelKind> {
        if self.inner.flag.load(Ordering::Acquire) {
            return Some(CancelKind::Explicit);
        }
        match self.inner.deadline {
            Some(at) if Instant::now() >= at => Some(CancelKind::Deadline),
            _ => None,
        }
    }

    /// Whether the token has been cancelled (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        self.cancelled_kind().is_some()
    }

    /// The checkpoint: `Err(kind)` once the token has fired. The caller
    /// attaches `facts_processed` and any partial result.
    pub fn check(&self) -> Result<(), CancelKind> {
        match self.cancelled_kind() {
            None => Ok(()),
            Some(kind) => Err(kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_passes_checkpoints() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.check(), Ok(()));
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert_eq!(t.check(), Err(CancelKind::Explicit));
        assert_eq!(t.cancelled_kind(), Some(CancelKind::Explicit));
    }

    #[test]
    fn deadline_fires_without_anyone_calling_cancel() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(t.check(), Err(CancelKind::Deadline));
        let far = CancelToken::with_deadline(Duration::from_secs(3600));
        assert_eq!(far.check(), Ok(()));
        assert!(far.deadline().is_some());
    }

    #[test]
    fn explicit_cancel_wins_over_expired_deadline() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        t.cancel();
        assert_eq!(t.cancelled_kind(), Some(CancelKind::Explicit));
    }
}

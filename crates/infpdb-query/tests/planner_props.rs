//! Property tests for the cost-based plan optimizer.
//!
//! Three contracts:
//!
//! * **Certified accuracy** — whatever strategy mix the optimizer picks
//!   for `Engine::Auto`, the answer stays within the certified additive
//!   tolerance of the exact `Engine::Lineage` evaluation (both are
//!   ε-approximations of the same true probability, so they may differ
//!   by at most the sum of their certificates).
//! * **Determinism** — the plan choice and the answer bits are a pure
//!   function of (PDB, query, ε, knobs): identical across repeated
//!   derivations and across intra-query thread counts {1, 2, 4}. (The
//!   fixed-vs-stealing scheduler half of this contract lives at the
//!   serve layer, where schedulers exist: the saturation stage and
//!   `infpdb-serve`'s scheduler tests pin bit-equal answers there.)
//! * **α-invariance** — a bound-variable renaming of the query produces
//!   the *identical* plan: same strategies, costs, sample counts, and
//!   seeds (plans key on the normalized query fingerprint, so the plan
//!   cache may serve either spelling from one entry).

use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_core::value::Value;
use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;
use infpdb_query::approx::approx_prob_boolean_par;
use infpdb_query::planner::{self, PlanKnobs};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).expect("static schema")
}

/// A random PDB over `{R/1, S/2}`: a geometric unary supply or a finite
/// mixed supply, so safe, unsafe, and multi-relation plans all occur.
fn random_pdb(rng: &mut SplitMix64) -> CountableTiPdb {
    if rng.next_u64().is_multiple_of(2) {
        let first = 0.1 + (rng.next_u64() % 700) as f64 / 1000.0;
        let ratio = 0.2 + (rng.next_u64() % 500) as f64 / 1000.0;
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(first, ratio).expect("parameters in range"),
        ))
        .expect("geometric series converges")
    } else {
        let n = 4 + (rng.next_u64() % 16) as i64;
        let mut pairs: Vec<(Fact, f64)> = Vec::new();
        for i in 1..=n {
            pairs.push((
                Fact::new(RelId(0), [Value::int(i)]),
                (rng.next_u64() % 999 + 1) as f64 / 1000.0,
            ));
            if rng.next_u64().is_multiple_of(3) {
                pairs.push((
                    Fact::new(RelId(1), [Value::int(i), Value::int((i % 4) + 1)]),
                    (rng.next_u64() % 999 + 1) as f64 / 1000.0,
                ));
            }
        }
        CountableTiPdb::new(FactSupply::from_vec(schema(), pairs).expect("distinct facts"))
            .expect("finite supplies converge")
    }
}

/// Queries spanning every planner verdict: safe, unsafe self-join,
/// negated (Karp–Luby-ineligible), and multi-relation joins.
const QUERIES: [&str; 6] = [
    "exists x. R(x)",
    "R(1)",
    "exists x, y. R(x) /\\ R(y) /\\ x != y",
    "exists x, y. R(x) /\\ S(x,y)",
    "exists x, y. R(x) /\\ S(x,y) /\\ !R(y)",
    "R(1) /\\ !R(2)",
];

const EPS: [f64; 3] = [0.3, 0.05, 0.005];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `Engine::Auto` (the optimizer) answers within the certified
    /// additive tolerance of the exact lineage engine. Both runs carry
    /// an ε certificate against the true probability, so their gap is
    /// bounded by the certificate sum.
    #[test]
    fn auto_stays_within_certified_eps_of_exact(
        seed in 0u64..u64::MAX,
        qi in 0usize..QUERIES.len(),
        ei in 0usize..EPS.len(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let pdb = random_pdb(&mut rng);
        let query = parse(QUERIES[qi], pdb.schema()).expect("static query");
        let eps = EPS[ei];

        let auto = approx_prob_boolean_par(&pdb, &query, eps, Engine::Auto, 1)
            .expect("auto evaluation succeeds");
        let exact = approx_prob_boolean_par(&pdb, &query, eps, Engine::Lineage, 1)
            .expect("lineage evaluation succeeds");
        let gap = (auto.estimate - exact.estimate).abs();
        prop_assert!(
            gap <= 2.0 * eps + 1e-12,
            "auto {} vs exact {} differ by {} > 2ε = {} for {:?}",
            auto.estimate, exact.estimate, gap, 2.0 * eps, QUERIES[qi]
        );
    }

    /// Plan choice and answer bits are reproducible: repeated
    /// derivations yield the identical choice fingerprint, and the
    /// executed answer is bit-for-bit identical across runs and across
    /// intra-query thread counts {1, 2, 4}.
    #[test]
    fn plan_choice_and_answer_bits_are_deterministic(
        seed in 0u64..u64::MAX,
        qi in 0usize..QUERIES.len(),
        ei in 0usize..EPS.len(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let pdb = random_pdb(&mut rng);
        let query = parse(QUERIES[qi], pdb.schema()).expect("static query");
        let eps = EPS[ei];
        let knobs = PlanKnobs::default();

        let (_, plan1, n1) = planner::explain(&pdb, &query, eps, &knobs)
            .expect("planning succeeds");
        let (_, plan2, n2) = planner::explain(&pdb, &query, eps, &knobs)
            .expect("planning succeeds");
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(plan1.choice_fingerprint(), plan2.choice_fingerprint());
        prop_assert_eq!(&plan1, &plan2);

        let base = approx_prob_boolean_par(&pdb, &query, eps, Engine::Auto, 1)
            .expect("auto evaluation succeeds");
        for threads in [1usize, 2, 4] {
            let run = approx_prob_boolean_par(&pdb, &query, eps, Engine::Auto, threads)
                .expect("auto evaluation succeeds");
            prop_assert!(
                base.estimate.to_bits() == run.estimate.to_bits(),
                "threads {}: {} vs {}", threads, base.estimate, run.estimate
            );
            prop_assert_eq!(&base, &run);
        }
    }

    /// α-renaming the query's bound variables produces the identical
    /// `ChosenPlan` — strategies, costs, sample counts, seeds, and the
    /// choice fingerprint all match, because planning keys on the
    /// normalized query fingerprint.
    #[test]
    fn alpha_renamed_queries_plan_identically(
        seed in 0u64..u64::MAX,
        ei in 0usize..EPS.len(),
    ) {
        // original / renamed spellings of the same formulas
        const PAIRS: [(&str, &str); 3] = [
            ("exists x. R(x)", "exists q. R(q)"),
            (
                "exists x, y. R(x) /\\ R(y) /\\ x != y",
                "exists u, v. R(u) /\\ R(v) /\\ u != v",
            ),
            (
                "exists x, y. R(x) /\\ S(x,y) /\\ !R(y)",
                "exists a, b. R(a) /\\ S(a,b) /\\ !R(b)",
            ),
        ];
        let mut rng = SplitMix64::new(seed);
        let pdb = random_pdb(&mut rng);
        let eps = EPS[ei];
        let knobs = PlanKnobs::default();
        for (original, renamed) in PAIRS {
            let q1 = parse(original, pdb.schema()).expect("static query");
            let q2 = parse(renamed, pdb.schema()).expect("static query");
            let (_, plan1, _) = planner::explain(&pdb, &q1, eps, &knobs)
                .expect("planning succeeds");
            let (_, plan2, _) = planner::explain(&pdb, &q2, eps, &knobs)
                .expect("planning succeeds");
            prop_assert!(
                plan1.choice_fingerprint() == plan2.choice_fingerprint(),
                "plans diverge between {:?} and {:?}", original, renamed
            );
            prop_assert_eq!(&plan1, &plan2);
        }
    }
}

//! Differential tests: the prepared-query pipeline against the one-shot
//! evaluation path.
//!
//! `PreparedQuery::execute` promises *bit-for-bit* equality with
//! `approx_prob_boolean_cancellable_traced` — identical `f64` estimates
//! (by bit pattern, not approximate agreement), identical Proposition 6.1
//! certificates, and identical engine work counters (Shannon expansions,
//! memo hits, arena interning statistics). These properties pin that
//! contract across random PDBs, queries, tolerances, and engines, and
//! across the reuse patterns the pipeline exists for: repeat execution,
//! ε-refinement on a shared catalog, and many queries over one prepared
//! PDB.

use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_core::value::Value;
use infpdb_finite::engine::Engine;
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;
use infpdb_query::approx::{approx_prob_boolean_cancellable_traced, PartialOnCancel};
use infpdb_query::cancel::CancelToken;
use infpdb_query::prepared::{PreparedPdb, PreparedQuery};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::from_relations([Relation::new("R", 1)]).expect("static schema")
}

fn rfact(n: i64) -> Fact {
    Fact::new(RelId(0), [Value::int(n)])
}

/// A random PDB: either an infinite geometric supply (closure-backed) or
/// a finite explicit supply (vec-backed), so both `FactSupply` storage
/// modes are exercised.
fn random_pdb(rng: &mut SplitMix64) -> CountableTiPdb {
    if rng.next_u64().is_multiple_of(2) {
        let first = 0.1 + (rng.next_u64() % 700) as f64 / 1000.0;
        let ratio = 0.2 + (rng.next_u64() % 500) as f64 / 1000.0;
        CountableTiPdb::new(FactSupply::unary_over_naturals(
            schema(),
            RelId(0),
            GeometricSeries::new(first, ratio).expect("parameters in range"),
        ))
        .expect("geometric series converges")
    } else {
        let n = 4 + (rng.next_u64() % 20) as i64;
        let pairs: Vec<(Fact, f64)> = (1..=n)
            .map(|i| (rfact(i), (rng.next_u64() % 999 + 1) as f64 / 1000.0))
            .collect();
        CountableTiPdb::new(FactSupply::from_vec(schema(), pairs).expect("distinct facts"))
            .expect("finite supplies converge")
    }
}

/// Boolean queries over `{R/1}`, including unsafe (self-join) shapes so
/// the lineage/Shannon path does real work, and a double negation so the
/// original-vs-normalized distinction matters.
const QUERIES: [&str; 6] = [
    "exists x. R(x)",
    "R(1)",
    "R(1) /\\ !R(2)",
    "exists x, y. R(x) /\\ R(y) /\\ x != y",
    "!(!(exists x. R(x)))",
    "forall x. R(x) -> R(1)",
];

const EPS: [f64; 3] = [0.2, 0.05, 0.005];
const ENGINES: [Engine; 2] = [Engine::Auto, Engine::Lineage];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A fresh prepared pipeline returns exactly what the one-shot path
    /// returns — estimate bits, certificates, and work counters — and a
    /// repeat execution (served from the memoized snapshot, zero
    /// grounding) returns it again.
    #[test]
    fn prepared_execute_is_bit_for_bit_one_shot(
        seed in 0u64..u64::MAX,
        qi in 0usize..QUERIES.len(),
        ei in 0usize..EPS.len(),
        gi in 0usize..ENGINES.len(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let pdb = random_pdb(&mut rng);
        let query = parse(QUERIES[qi], pdb.schema()).expect("static query");
        let eps = EPS[ei];
        let engine = ENGINES[gi];

        let (a0, t0) = approx_prob_boolean_cancellable_traced(
            &pdb, &query, eps, engine, &CancelToken::new(), PartialOnCancel::Evaluate,
        ).expect("one-shot path succeeds");

        let prepared = PreparedPdb::new(pdb);
        let pq = PreparedQuery::prepare(prepared.clone(), &query, engine);
        let (a1, t1) = pq.execute(eps, &CancelToken::new()).expect("prepared path succeeds");

        prop_assert!(a0.estimate.to_bits() == a1.estimate.to_bits(),
            "estimates differ: {} vs {} for {:?}", a0.estimate, a1.estimate, QUERIES[qi]);
        prop_assert_eq!(a0, a1);
        prop_assert_eq!(t0, t1);

        // repeat: the memoized snapshot answers, nothing re-grounds
        let grounded = prepared.materialized_len();
        let (a2, t2) = pq.execute(eps, &CancelToken::new()).expect("repeat succeeds");
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(prepared.materialized_len(), grounded);
    }

    /// ε-refinement on a shared catalog: executing loose-then-tight (and
    /// loose again) matches the corresponding fresh one-shot runs at
    /// every step, even though the catalog is extended in place and the
    /// loose prefix is re-sliced from the longer catalog.
    #[test]
    fn refinement_reuses_catalog_bit_for_bit(
        seed in 0u64..u64::MAX,
        qi in 0usize..QUERIES.len(),
        gi in 0usize..ENGINES.len(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let pdb = random_pdb(&mut rng);
        let query = parse(QUERIES[qi], pdb.schema()).expect("static query");
        let engine = ENGINES[gi];

        let prepared = PreparedPdb::new(pdb.clone());
        let pq = PreparedQuery::prepare(prepared.clone(), &query, engine);
        for eps in [0.2, 0.005, 0.2] {
            let (a1, t1) = pq.execute(eps, &CancelToken::new()).expect("prepared path succeeds");
            let (a0, t0) = approx_prob_boolean_cancellable_traced(
                &pdb, &query, eps, engine, &CancelToken::new(), PartialOnCancel::Evaluate,
            ).expect("one-shot path succeeds");
            prop_assert_eq!(a0, a1);
            prop_assert_eq!(t0, t1);
        }
    }

    /// The parallel executor is bit-for-bit the sequential one through
    /// the prepared pipeline: same estimates, same certificates, same
    /// work counters (the trace's `parallel` report is the only field
    /// allowed to differ). Also under cancellation mid-evaluation: a
    /// pre-cancelled token must yield the identical `CancelInfo` —
    /// including the partial answer's estimate bits — at every thread
    /// count.
    #[test]
    fn parallel_execution_is_bit_for_bit_sequential(
        seed in 0u64..u64::MAX,
        qi in 0usize..QUERIES.len(),
        ei in 0usize..EPS.len(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let pdb = random_pdb(&mut rng);
        let query = parse(QUERIES[qi], pdb.schema()).expect("static query");
        let eps = EPS[ei];

        let prepared = PreparedPdb::new(pdb);
        let seq = PreparedQuery::prepare(prepared.clone(), &query, Engine::Lineage);
        let (a1, t1) = seq.execute(eps, &CancelToken::new()).expect("sequential succeeds");
        for threads in [2usize, 4] {
            let par = PreparedQuery::prepare(prepared.clone(), &query, Engine::Lineage)
                .with_parallelism(threads);
            let (ap, tp) = par.execute(eps, &CancelToken::new()).expect("parallel succeeds");
            prop_assert!(a1.estimate.to_bits() == ap.estimate.to_bits(),
                "threads {}: {} vs {}", threads, a1.estimate, ap.estimate);
            prop_assert_eq!(a1, ap);
            prop_assert_eq!(t1.shannon, tp.shannon);
            prop_assert_eq!(t1.arena, tp.arena);

            // cancellation mid-evaluation: the partial-answer path must
            // agree at every thread count too
            let cancelled = CancelToken::new();
            cancelled.cancel();
            let e1 = seq.execute(eps, &cancelled).expect_err("cancelled");
            let ep = par.execute(eps, &cancelled).expect_err("cancelled");
            match (e1, ep) {
                (
                    infpdb_query::QueryError::Cancelled(i1),
                    infpdb_query::QueryError::Cancelled(ip),
                ) => {
                    prop_assert_eq!(i1.kind, ip.kind);
                    prop_assert_eq!(i1.facts_processed, ip.facts_processed);
                    match (i1.partial, ip.partial) {
                        (Some(p1), Some(pp)) => {
                            prop_assert!(p1.estimate.to_bits() == pp.estimate.to_bits());
                            prop_assert_eq!(p1, pp);
                        }
                        (None, None) => {}
                        other => prop_assert!(false, "partial mismatch: {:?}", other),
                    }
                }
                other => prop_assert!(false, "expected Cancelled, got {:?}", other),
            }
        }
    }

    /// One prepared PDB serves every query in the pool: the catalog is
    /// grounded once per prefix length, and each query's answer matches
    /// its one-shot evaluation bit for bit.
    #[test]
    fn one_prepared_pdb_serves_many_queries(seed in 0u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        let pdb = random_pdb(&mut rng);
        let prepared = PreparedPdb::new(pdb.clone());
        let eps = 0.05;
        let mut grounded_after_first = None;
        for qs in QUERIES {
            let query = parse(qs, pdb.schema()).expect("static query");
            let pq = PreparedQuery::prepare(prepared.clone(), &query, Engine::Auto);
            let (a1, t1) = pq.execute(eps, &CancelToken::new()).expect("prepared path succeeds");
            let (a0, t0) = approx_prob_boolean_cancellable_traced(
                &pdb, &query, eps, Engine::Auto, &CancelToken::new(), PartialOnCancel::Evaluate,
            ).expect("one-shot path succeeds");
            prop_assert_eq!(a0, a1);
            prop_assert_eq!(t0, t1);
            match grounded_after_first {
                None => grounded_after_first = Some(prepared.materialized_len()),
                Some(g) => prop_assert_eq!(prepared.materialized_len(), g),
            }
        }
    }
}

//! The OpenPDB baseline of Ceylan, Darwiche & Van den Broeck (KR'16).
//!
//! The paper positions its infinite completions as the generalization of
//! OpenPDBs: there, the universe is a *fixed finite* set, and every fact
//! not listed in the t.i. table may have any probability in `[0, λ]`. A
//! query then gets an interval of probabilities over all λ-completions.
//! For *monotone* queries (UCQs) the extremes are attained at the endpoint
//! completions: all-new-facts-at-0 (the original closed world) and
//! all-new-facts-at-λ.
//!
//! The paper's Section 5 recovers this model exactly when the universe is
//! finite, and generalizes it by replacing the constant bound λ with "the
//! summands of a fixed convergent series".

use crate::OpenWorldError;
use infpdb_core::fact::Fact;
use infpdb_core::schema::Schema;
use infpdb_core::universe::Universe;
use infpdb_core::value::Value;
use infpdb_finite::engine::{self, Engine};
use infpdb_finite::TiTable;
use infpdb_logic::ast::Formula;
use infpdb_logic::normal::as_ucq;
use infpdb_math::ProbInterval;

/// Cap on the number of candidate facts a finite universe may induce.
pub const MAX_CANDIDATES: usize = 100_000;

/// An OpenPDB: a t.i. table plus the λ-bounded candidate facts of a finite
/// universe.
#[derive(Debug, Clone)]
pub struct LambdaCompletion {
    base: TiTable,
    candidates: Vec<Fact>,
    lambda: f64,
}

impl LambdaCompletion {
    /// Builds the λ-completion of `base` over the finite universe:
    /// candidates are **all** facts of the schema over the universe's
    /// values that are not already in the table.
    pub fn new<U: Universe>(
        base: TiTable,
        universe: &U,
        lambda: f64,
    ) -> Result<Self, OpenWorldError> {
        infpdb_math::check_probability(lambda).map_err(OpenWorldError::Math)?;
        let n = universe.cardinality().ok_or_else(|| {
            OpenWorldError::Finite(
                "OpenPDB λ-completions need a finite universe; use the convergent-series \
                 completions of Section 5 for infinite ones"
                    .to_string(),
            )
        })?;
        let values: Vec<Value> = (0..n)
            .map(|i| universe.enumerate(i).expect("within cardinality"))
            .collect();
        let mut candidates = Vec::new();
        let schema = base.schema().clone();
        for (rel, r) in schema.iter() {
            let k = r.arity();
            let mut count = 1usize;
            for _ in 0..k {
                count = count.saturating_mul(values.len());
            }
            if candidates.len().saturating_add(count) > MAX_CANDIDATES {
                return Err(OpenWorldError::TooManyCombinations(count));
            }
            let mut idx = vec![0usize; k];
            loop {
                let fact = Fact::new(rel, idx.iter().map(|&i| values[i].clone()));
                if base.fact_id(&fact).is_none() {
                    candidates.push(fact);
                }
                // odometer
                let mut pos = k;
                loop {
                    if pos == 0 {
                        break;
                    }
                    pos -= 1;
                    idx[pos] += 1;
                    if idx[pos] < values.len() {
                        break;
                    }
                    idx[pos] = 0;
                    if pos == 0 {
                        pos = usize::MAX;
                        break;
                    }
                }
                if k == 0 || pos == usize::MAX {
                    break;
                }
            }
        }
        Ok(Self {
            base,
            candidates,
            lambda,
        })
    }

    /// The base table (the lower-endpoint completion).
    pub fn base(&self) -> &TiTable {
        &self.base
    }

    /// The candidate facts (unlisted facts of the finite universe).
    pub fn candidates(&self) -> &[Fact] {
        &self.candidates
    }

    /// The threshold λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The upper-endpoint completion: every candidate at probability λ.
    pub fn upper_table(&self) -> Result<TiTable, OpenWorldError> {
        let mut t = self.base.clone();
        for f in &self.candidates {
            t.add_fact(f.clone(), self.lambda)?;
        }
        Ok(t)
    }

    /// The probability interval of a **monotone** Boolean query (a UCQ)
    /// over all λ-completions: `[P_{p=0}(Q), P_{p=λ}(Q)]`. Non-UCQ queries
    /// are rejected — for them the endpoint completions need not be
    /// extremal.
    pub fn prob_interval(&self, query: &Formula) -> Result<ProbInterval, OpenWorldError> {
        if let Err(e) = as_ucq(query) {
            return Err(OpenWorldError::NotMonotone(e.to_string()));
        }
        let lo = engine::prob_boolean(query, &self.base, Engine::Auto)?;
        let upper = self.upper_table()?;
        let hi = engine::prob_boolean(query, &upper, Engine::Auto)?;
        ProbInterval::new(lo, hi).map_err(OpenWorldError::Math)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.base.schema()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation};
    use infpdb_core::universe::FiniteUniverse;
    use infpdb_logic::parse;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 1)]).unwrap()
    }

    fn rfact(rel: u32, n: i64) -> Fact {
        Fact::new(RelId(rel), [Value::int(n)])
    }

    fn universe() -> FiniteUniverse {
        FiniteUniverse::new((1..=3).map(Value::int))
    }

    fn base() -> TiTable {
        TiTable::from_facts(schema(), [(rfact(0, 1), 0.8), (rfact(1, 2), 0.5)]).unwrap()
    }

    #[test]
    fn candidates_are_all_unlisted_facts() {
        let l = LambdaCompletion::new(base(), &universe(), 0.1).unwrap();
        // 3 values × 2 unary relations = 6 facts, 2 listed → 4 candidates
        assert_eq!(l.candidates().len(), 4);
        assert!(l.candidates().contains(&rfact(0, 2)));
        assert!(!l.candidates().contains(&rfact(0, 1)));
        assert_eq!(l.lambda(), 0.1);
    }

    #[test]
    fn upper_table_adds_lambda_facts() {
        let l = LambdaCompletion::new(base(), &universe(), 0.1).unwrap();
        let up = l.upper_table().unwrap();
        assert_eq!(up.len(), 6);
        assert!((up.marginal(&rfact(0, 3)) - 0.1).abs() < 1e-12);
        assert!((up.marginal(&rfact(0, 1)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn interval_semantics_for_monotone_queries() {
        let l = LambdaCompletion::new(base(), &universe(), 0.1).unwrap();
        let q = parse("exists x. R(x) /\\ S(x)", l.schema()).unwrap();
        let iv = l.prob_interval(&q).unwrap();
        // closed world: R and S share no element → P = 0… wait: R(1) at .8,
        // S(2) at .5 — no common x, so lower bound is 0.
        assert_eq!(iv.lo(), 0.0);
        assert!(iv.hi() > 0.0);
        assert!(iv.hi() < 0.5);
        // wider λ ⇒ wider interval
        let l2 = LambdaCompletion::new(base(), &universe(), 0.3).unwrap();
        let iv2 = l2.prob_interval(&q).unwrap();
        assert!(iv2.hi() > iv.hi());
    }

    #[test]
    fn monotone_query_with_nonzero_lower_bound() {
        let l = LambdaCompletion::new(base(), &universe(), 0.1).unwrap();
        let q = parse("exists x. R(x)", l.schema()).unwrap();
        let iv = l.prob_interval(&q).unwrap();
        assert!((iv.lo() - 0.8).abs() < 1e-12);
        assert!(iv.hi() > 0.8);
    }

    #[test]
    fn non_monotone_queries_rejected() {
        let l = LambdaCompletion::new(base(), &universe(), 0.1).unwrap();
        let q = parse("exists x. !R(x)", l.schema()).unwrap();
        assert!(matches!(
            l.prob_interval(&q),
            Err(OpenWorldError::NotMonotone(_))
        ));
        let q2 = parse("forall x. R(x)", l.schema()).unwrap();
        assert!(l.prob_interval(&q2).is_err());
    }

    #[test]
    fn infinite_universes_rejected() {
        let l = LambdaCompletion::new(base(), &infpdb_core::universe::Naturals, 0.1);
        assert!(matches!(l, Err(OpenWorldError::Finite(_))));
    }

    #[test]
    fn bad_lambda_rejected() {
        assert!(LambdaCompletion::new(base(), &universe(), 1.5).is_err());
    }

    #[test]
    fn candidate_explosion_guarded() {
        let schema = Schema::from_relations([Relation::new("W", 3)]).unwrap();
        let t = TiTable::new(schema);
        let u = FiniteUniverse::new((0..100).map(Value::int));
        // 100³ = 10⁶ > cap
        assert!(matches!(
            LambdaCompletion::new(t, &u, 0.1),
            Err(OpenWorldError::TooManyCombinations(_))
        ));
    }

    #[test]
    fn zero_ary_relation_candidates() {
        let schema = Schema::from_relations([Relation::new("Flag", 0)]).unwrap();
        let t = TiTable::new(schema);
        let l = LambdaCompletion::new(t, &universe(), 0.2).unwrap();
        assert_eq!(l.candidates().len(), 1); // the single 0-ary fact
    }
}

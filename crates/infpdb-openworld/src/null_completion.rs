//! Probabilistic completion of incomplete databases (Example 3.2).
//!
//! An incomplete database specifies relations with null values `⊥`; the
//! paper describes completing each null according to a distribution over
//! the universe (a normal for a missing height, a name-frequency model for
//! a missing first name), independently per null, "giving us a probability
//! distribution on the possible completions of our incomplete database and
//! hence a probabilistic database".
//!
//! [`complete_nulls`] materializes that PDB: the product space over the
//! per-null distributions (guarded against combinatorial explosion). For
//! countably-infinite null distributions, truncate them first and account
//! for the remainder — or use the open-world machinery end-to-end.

use crate::OpenWorldError;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Schema};
use infpdb_core::space::DiscreteSpace;
use infpdb_core::value::Value;
use infpdb_finite::FinitePdb;

/// Cap on the number of completions materialized.
pub const MAX_COMPLETIONS: usize = 1 << 20;

/// A row that may contain nulls.
#[derive(Debug, Clone)]
pub struct NullableRow {
    /// The relation.
    pub rel: RelId,
    /// Arguments; `None` is the null `⊥`.
    pub args: Vec<Option<Value>>,
}

impl NullableRow {
    /// Builds a row.
    pub fn new(rel: RelId, args: Vec<Option<Value>>) -> Self {
        Self { rel, args }
    }

    /// Number of nulls in the row.
    pub fn null_count(&self) -> usize {
        self.args.iter().filter(|a| a.is_none()).count()
    }
}

/// Completes an incomplete database into a finite PDB: null `j` (in
/// row-major, left-to-right order) is filled independently according to
/// `distributions[j]` (values with probabilities summing to 1).
pub fn complete_nulls(
    schema: Schema,
    rows: Vec<NullableRow>,
    distributions: Vec<Vec<(Value, f64)>>,
) -> Result<FinitePdb, OpenWorldError> {
    let total_nulls: usize = rows.iter().map(NullableRow::null_count).sum();
    assert_eq!(
        total_nulls,
        distributions.len(),
        "need exactly one distribution per null"
    );
    let mut combinations: usize = 1;
    for d in &distributions {
        combinations = combinations.saturating_mul(d.len().max(1));
        if combinations > MAX_COMPLETIONS {
            return Err(OpenWorldError::TooManyCombinations(combinations));
        }
    }
    // Build the joint space over null assignments as an iterated product.
    let mut space: DiscreteSpace<Vec<Value>> = DiscreteSpace::dirac(vec![]);
    for dist in &distributions {
        let next = DiscreteSpace::new(dist.clone())?;
        space = space
            .pushforward(|v| v.clone())
            .product(&next)
            .pushforward(|(prefix, v)| {
                let mut out = prefix.clone();
                out.push(v.clone());
                out
            });
    }
    // Map each assignment to the completed instance.
    let worlds: Vec<(Vec<Fact>, f64)> = space
        .outcomes()
        .iter()
        .map(|(assignment, p)| {
            let mut facts = Vec::with_capacity(rows.len());
            let mut next = 0usize;
            for row in &rows {
                let args: Vec<Value> = row
                    .args
                    .iter()
                    .map(|a| match a {
                        Some(v) => v.clone(),
                        None => {
                            let v = assignment[next].clone();
                            next += 1;
                            v
                        }
                    })
                    .collect();
                facts.push(Fact::new(row.rel, args));
            }
            (facts, *p)
        })
        .collect();
    FinitePdb::from_worlds(schema, worlds).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::Relation;
    use infpdb_logic::parse;

    /// Example 3.2's 5-ary Person relation, abridged to 3 columns.
    fn schema() -> Schema {
        Schema::from_relations([Relation::with_attributes(
            "Person",
            ["LastName", "Nationality", "HeightMm"],
        )])
        .unwrap()
    }

    #[test]
    fn single_null_completion_is_the_value_distribution() {
        let s = schema();
        let rel = s.rel_id("Person").unwrap();
        let rows = vec![NullableRow::new(
            rel,
            vec![
                Some(Value::str("Lindner")),
                Some(Value::str("German")),
                None,
            ],
        )];
        let heights =
            crate::distributions::discretized_normal(1800.0, 70.0, 10.0, 0, 4.0, 1.0).unwrap();
        let pdb = complete_nulls(s, rows, vec![heights.clone()]).unwrap();
        assert_eq!(pdb.space().support_size(), heights.len());
        // each world is a single completed fact with the height's mass
        let (v0, p0) = &heights[0];
        let f = Fact::new(
            rel,
            [Value::str("Lindner"), Value::str("German"), v0.clone()],
        );
        assert!((pdb.marginal(&f) - p0).abs() < 1e-12);
    }

    #[test]
    fn two_nulls_complete_independently() {
        let s = schema();
        let rel = s.rel_id("Person").unwrap();
        let rows = vec![NullableRow::new(
            rel,
            vec![None, Some(Value::str("German")), None],
        )];
        let names = vec![(Value::str("Grohe"), 0.7), (Value::str("Lindner"), 0.3)];
        let heights = vec![(Value::int(1780), 0.4), (Value::int(1830), 0.6)];
        let pdb = complete_nulls(s, rows, vec![names, heights]).unwrap();
        assert_eq!(pdb.space().support_size(), 4);
        let f = Fact::new(
            rel,
            [Value::str("Grohe"), Value::str("German"), Value::int(1830)],
        );
        // independence: 0.7 × 0.6
        assert!((pdb.marginal(&f) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn queries_over_completions() {
        let s = schema();
        let rel = s.rel_id("Person").unwrap();
        let rows = vec![
            NullableRow::new(
                rel,
                vec![Some(Value::str("Grohe")), Some(Value::str("German")), None],
            ),
            NullableRow::new(
                rel,
                vec![
                    Some(Value::str("Lindner")),
                    Some(Value::str("German")),
                    Some(Value::int(1810)),
                ],
            ),
        ];
        let heights = vec![(Value::int(1790), 0.5), (Value::int(1830), 0.5)];
        let pdb = complete_nulls(s, rows, vec![heights]).unwrap();
        // P(Grohe listed at 1830)
        let q = parse("Person('Grohe', 'German', 1830)", pdb.schema()).unwrap();
        assert!((pdb.prob_boolean(&q).unwrap() - 0.5).abs() < 1e-12);
        // the certain row holds in every world
        let q2 = parse("Person('Lindner', 'German', 1810)", pdb.schema()).unwrap();
        assert!((pdb.prob_boolean(&q2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_count_and_mismatched_distributions_panic() {
        let s = schema();
        let rel = s.rel_id("Person").unwrap();
        let row = NullableRow::new(rel, vec![None, None, Some(Value::int(1))]);
        assert_eq!(row.null_count(), 2);
        let result = std::panic::catch_unwind(|| {
            complete_nulls(schema(), vec![row], vec![]) // 2 nulls, 0 dists
        });
        assert!(result.is_err());
    }

    #[test]
    fn explosion_guard() {
        let s = schema();
        let rel = s.rel_id("Person").unwrap();
        let rows: Vec<NullableRow> = (0..8)
            .map(|i| NullableRow::new(rel, vec![Some(Value::int(i)), Some(Value::str("x")), None]))
            .collect();
        // 8 nulls × 40 values each = 40^8 combinations
        let dist: Vec<(Value, f64)> = (0..40).map(|k| (Value::int(k), 1.0 / 40.0)).collect();
        let dists = vec![dist; 8];
        assert!(matches!(
            complete_nulls(s, rows, dists),
            Err(OpenWorldError::TooManyCombinations(_))
        ));
    }

    #[test]
    fn no_nulls_gives_a_dirac_pdb() {
        let s = schema();
        let rel = s.rel_id("Person").unwrap();
        let rows = vec![NullableRow::new(
            rel,
            vec![
                Some(Value::str("Grohe")),
                Some(Value::str("German")),
                Some(Value::int(1830)),
            ],
        )];
        let pdb = complete_nulls(s, rows, vec![]).unwrap();
        assert_eq!(pdb.space().support_size(), 1);
        assert!((pdb.space().total_mass() - 1.0).abs() < 1e-12);
    }
}

//! Open-world completions of block-independent-disjoint PDBs.
//!
//! The paper's abstract: "The construction can also be extended to
//! so-called block-independent-disjoint probabilistic databases." This
//! module implements that extension for b.i.d. originals: a finite
//! [`BidTable`] (e.g. a key-constrained registry) is spliced in front of a
//! countable [`BlockSupply`] of fresh blocks, yielding the countable
//! b.i.d. PDB of Proposition 4.13 whose restriction to the original blocks
//! is the original measure — the (CC)-analogue at block granularity:
//! conditioning on "no new block contributes a fact" divides out the
//! constant `∏_{new} p_⊥^B > 0`.

use crate::OpenWorldError;
use infpdb_finite::BidTable;
use infpdb_math::series::{ConcatSeries, FiniteSeries};
use infpdb_ti::bid::{BlockSupply, CountableBidPdb};

/// How many tail blocks are eagerly validated.
pub const TAIL_VALIDATION_PREFIX: usize = 1024;

/// Completes a finite b.i.d. table with an infinite tail of fresh blocks.
///
/// Tail blocks must be disjoint from the original facts (validated over
/// [`TAIL_VALIDATION_PREFIX`] blocks), each must leave positive bottom
/// mass (`∑ p < 1`, so the original sample space keeps positive
/// probability), and the block-mass series must converge (Theorem 4.15).
pub fn complete_bid_table(
    table: &BidTable,
    tail: BlockSupply,
) -> Result<CountableBidPdb, OpenWorldError> {
    let check = tail
        .support_len_hint()
        .unwrap_or(TAIL_VALIDATION_PREFIX)
        .min(TAIL_VALIDATION_PREFIX);
    for b in 0..check {
        let mut mass = 0.0;
        for (fact, p) in tail.block(b) {
            if table.interner().get(&fact).is_some() {
                return Err(OpenWorldError::TailCollision(
                    fact.display(table.schema()).to_string(),
                ));
            }
            mass += p;
        }
        if mass >= 1.0 {
            return Err(OpenWorldError::CertainNewFact(format!(
                "tail block {b} has mass {mass} ≥ 1 (no bottom probability left)"
            )));
        }
    }
    // head: the original table's blocks
    let head_blocks: Vec<Vec<(infpdb_core::fact::Fact, f64)>> = table
        .blocks()
        .iter()
        .map(|b| {
            b.alternatives()
                .iter()
                .map(|(id, p)| (table.interner().resolve(*id).clone(), *p))
                .collect()
        })
        .collect();
    let head_masses: Vec<f64> = head_blocks
        .iter()
        .map(|alts| alts.iter().map(|(_, p)| *p).sum::<f64>().min(1.0))
        .collect();
    let k = head_blocks.len();
    let head_series = FiniteSeries::new(head_masses).map_err(OpenWorldError::Math)?;
    let mass_series = ConcatSeries::new(
        head_series,
        MassView {
            supply: tail.clone(),
        },
    );
    let schema = table.schema().clone();
    let supply = BlockSupply::from_fn(
        schema,
        move |i| {
            if i < k {
                head_blocks[i].clone()
            } else {
                tail.block(i - k)
            }
        },
        mass_series,
    );
    // validate the spliced prefix (original blocks + a few tail blocks)
    CountableBidPdb::new(supply, k + 8).map_err(OpenWorldError::Ti)
}

/// Adapter exposing a `BlockSupply`'s mass series.
#[derive(Clone)]
struct MassView {
    supply: BlockSupply,
}

impl infpdb_math::series::ProbSeries for MassView {
    fn term(&self, i: usize) -> f64 {
        self.supply.mass(i)
    }

    fn tail_upper(&self, i: usize) -> infpdb_math::series::TailBound {
        self.supply.mass_tail(i)
    }

    fn support_len(&self) -> Option<usize> {
        self.supply.support_len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::value::Value;
    use infpdb_math::series::GeometricSeries;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("KV", 2)]).unwrap()
    }

    fn kv(k: i64, v: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(k), Value::int(v)])
    }

    fn base() -> BidTable {
        BidTable::from_blocks(
            schema(),
            [
                vec![(kv(1, 10), 0.5), (kv(1, 11), 0.3)],
                vec![(kv(2, 20), 0.9)],
            ],
        )
        .unwrap()
    }

    fn fresh_tail() -> BlockSupply {
        BlockSupply::from_fn(
            schema(),
            |i| {
                let m = 0.25 * 0.5f64.powi(i as i32);
                vec![(kv(100 + i as i64, 0), m)]
            },
            GeometricSeries::new(0.25, 0.5).unwrap(),
        )
    }

    #[test]
    fn completion_preserves_original_blocks() {
        let open = complete_bid_table(&base(), fresh_tail()).unwrap();
        // original alternatives keep their conditional probabilities
        let t = open.truncate(2).unwrap();
        assert!((t.marginal(&kv(1, 10)) - 0.5).abs() < 1e-12);
        assert!((t.marginal(&kv(1, 11)) - 0.3).abs() < 1e-12);
        assert!((t.marginal(&kv(2, 20)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn completion_makes_new_blocks_possible() {
        let open = complete_bid_table(&base(), fresh_tail()).unwrap();
        let t = open.truncate(4).unwrap();
        assert!((t.marginal(&kv(100, 0)) - 0.25).abs() < 1e-12);
        assert!((t.marginal(&kv(101, 0)) - 0.125).abs() < 1e-12);
        // while the closed-world table says 0
        assert_eq!(base().marginal(&kv(100, 0)), 0.0);
    }

    #[test]
    fn completion_expected_size_adds_tail_mass() {
        let open = complete_bid_table(&base(), fresh_tail()).unwrap();
        // 0.8 + 0.9 (original) + 0.5 (tail) — the bound uses the series
        assert!((open.expected_size_bound() - 2.2).abs() < 1e-6);
    }

    #[test]
    fn cc_analogue_via_instance_probabilities() {
        // P'(original choices | no new block) = P(original choices):
        // conditioning divides out ∏_{new}(1 − m) which is a constant.
        let open = complete_bid_table(&base(), fresh_tail()).unwrap();
        // choices over original blocks only
        let joint = open.instance_prob(&[(0, kv(1, 10))]).unwrap();
        let base_p = base().instance_prob(&infpdb_core::instance::Instance::from_ids([base()
            .interner()
            .get(&kv(1, 10))
            .unwrap()]));
        // divide out the new-blocks-empty factor: joint / ∏_{i≥2}(1 − m_i)
        let mut new_empty = 1.0;
        for i in 0..300 {
            new_empty *= 1.0 - 0.25 * 0.5f64.powi(i);
        }
        let conditioned = joint.midpoint() / new_empty;
        assert!(
            (conditioned - base_p).abs() < 1e-6,
            "conditioned {conditioned} vs original {base_p}"
        );
    }

    #[test]
    fn rejects_colliding_tails() {
        let bad = BlockSupply::from_fn(
            schema(),
            |i| vec![(kv(1, 10 + i as i64), 0.25 * 0.5f64.powi(i as i32))],
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        // block 0 reuses kv(1,10)
        assert!(matches!(
            complete_bid_table(&base(), bad),
            Err(OpenWorldError::TailCollision(_))
        ));
    }

    #[test]
    fn rejects_full_mass_tail_blocks() {
        let bad = BlockSupply::from_fn(
            schema(),
            |i| {
                vec![(
                    kv(100 + i as i64, 0),
                    if i == 0 {
                        1.0
                    } else {
                        0.1 * 0.5f64.powi(i as i32)
                    },
                )]
            },
            GeometricSeries::new(1.0, 0.5).unwrap(),
        );
        assert!(matches!(
            complete_bid_table(&base(), bad),
            Err(OpenWorldError::CertainNewFact(_))
        ));
    }

    #[test]
    fn rejects_divergent_tails() {
        let divergent = BlockSupply::from_fn(
            schema(),
            |i| vec![(kv(100 + i as i64, 0), 0.9 / (i + 1) as f64)],
            infpdb_math::series::HarmonicSeries::new(0.9).unwrap(),
        );
        assert!(matches!(
            complete_bid_table(&base(), divergent),
            Err(OpenWorldError::Ti(_))
        ));
    }

    #[test]
    fn sampling_the_completed_bid_pdb() {
        use infpdb_core::space::rand_core::SplitMix64;
        let open = complete_bid_table(&base(), fresh_tail()).unwrap();
        let s = open.sampler(1e-4).unwrap();
        let mut rng = SplitMix64::new(9);
        let id10 = s.table().interner().get(&kv(1, 10)).unwrap();
        let id11 = s.table().interner().get(&kv(1, 11)).unwrap();
        let n = 20_000;
        let mut hits10 = 0usize;
        for _ in 0..n {
            let d = s.sample(&mut rng);
            assert!(!(d.contains(id10) && d.contains(id11)));
            hits10 += d.contains(id10) as usize;
        }
        assert!((hits10 as f64 / n as f64 - 0.5).abs() < 0.02);
    }
}

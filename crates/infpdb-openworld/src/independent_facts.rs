//! Completion by independent facts (Theorem 5.5).
//!
//! Given a PDB `D` and probabilities `(p_f)_{f ∈ F[τ,U] − F(D)}` with
//! `p_f ∈ [0, 1)` and `∑ p_f < ∞`, the paper constructs the completion
//! `D′` whose instances decompose uniquely as `D ⊎ C` with `D` original and
//! `C` an instance of the fresh tuple-independent PDB `C`, and
//! `P′({D ⊎ C}) = P({D}) · P₁({C})` — a product measure satisfying (CC).
//!
//! Two constructors:
//!
//! * [`complete_ti_table`] — when the original is itself a finite
//!   tuple-independent table, the completion *is* a countable t.i. PDB:
//!   splice the table's probabilities in front of the tail supply
//!   (`ConcatSeries`) and reuse the whole Section 4 construction.
//! * [`complete_pdb`] — arbitrary finite original (any correlations):
//!   the generic product-measure [`CompletedPdb`].

use crate::completion::CompletedPdb;
use crate::OpenWorldError;
use infpdb_core::fact::Fact;
use infpdb_finite::{FinitePdb, TiTable};
use infpdb_math::series::{ConcatSeries, FiniteSeries};
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;

/// How many tail entries are eagerly checked for collisions with original
/// facts and for `p = 1` violations.
pub const TAIL_VALIDATION_PREFIX: usize = 4096;

/// Completes a finite tuple-independent table with an infinite tail of
/// independent fresh facts, yielding the countable t.i. PDB of
/// Theorem 5.5 (specialized as discussed after the theorem: for t.i.
/// originals no closure repair is needed, Remark 5.6).
///
/// The `tail` supply must enumerate facts disjoint from the table's
/// (checked over [`TAIL_VALIDATION_PREFIX`] entries) with probabilities
/// strictly below 1 and a convergent series.
///
/// ```
/// use infpdb_core::{fact::Fact, schema::{RelId, Relation, Schema}, value::Value};
/// use infpdb_finite::TiTable;
/// use infpdb_math::series::GeometricSeries;
/// use infpdb_openworld::independent_facts::complete_ti_table;
/// use infpdb_ti::enumerator::FactSupply;
///
/// let schema = Schema::from_relations([Relation::new("Person", 1)])?;
/// let person = |n: i64| Fact::new(RelId(0), [Value::int(n)]);
/// let table = TiTable::from_facts(schema.clone(), [(person(1), 0.9)])?;
///
/// // open world: unknown people 100, 101, … become possible
/// let tail = FactSupply::from_fn(schema, move |i| person(100 + i as i64),
///     GeometricSeries::new(0.2, 0.5)?);
/// let open = complete_ti_table(&table, tail)?;
/// assert_eq!(open.marginal(&person(1), 10)?, 0.9);    // unchanged
/// assert_eq!(open.marginal(&person(100), 10)?, 0.2);  // now possible
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn complete_ti_table(
    table: &TiTable,
    tail: FactSupply,
) -> Result<CountableTiPdb, OpenWorldError> {
    let check = tail
        .support_len()
        .unwrap_or(TAIL_VALIDATION_PREFIX)
        .min(TAIL_VALIDATION_PREFIX);
    for i in 0..check {
        let f = tail.fact(i);
        if table.fact_id(&f).is_some() {
            return Err(OpenWorldError::TailCollision(
                f.display(table.schema()).to_string(),
            ));
        }
        if tail.prob(i) >= 1.0 {
            return Err(OpenWorldError::CertainNewFact(
                f.display(table.schema()).to_string(),
            ));
        }
    }
    let head_probs: Vec<f64> = table.iter().map(|(_, _, p)| p).collect();
    let head_facts: Vec<Fact> = table.iter().map(|(_, f, _)| f.clone()).collect();
    let head = FiniteSeries::new(head_probs).map_err(OpenWorldError::Math)?;
    let k = head.len();
    let series = ConcatSeries::new(
        head,
        TailView {
            supply: tail.clone(),
        },
    );
    let supply = FactSupply::from_fn(
        table.schema().clone(),
        move |i| {
            if i < k {
                head_facts[i].clone()
            } else {
                tail.fact(i - k)
            }
        },
        series,
    );
    CountableTiPdb::new(supply).map_err(OpenWorldError::Ti)
}

/// Adapter presenting a `FactSupply`'s series side.
#[derive(Debug, Clone)]
struct TailView {
    supply: FactSupply,
}

impl infpdb_math::series::ProbSeries for TailView {
    fn term(&self, i: usize) -> f64 {
        self.supply.prob(i)
    }

    fn tail_upper(&self, i: usize) -> infpdb_math::series::TailBound {
        self.supply.tail_upper(i)
    }

    fn support_len(&self) -> Option<usize> {
        self.supply.support_len()
    }
}

/// Completes an arbitrary finite PDB (whose sample space should be closed
/// under subsets and unions — use [`crate::closure`] first otherwise) with
/// an independent tail, yielding the product-measure [`CompletedPdb`] of
/// Theorem 5.5.
pub fn complete_pdb(original: FinitePdb, tail: FactSupply) -> Result<CompletedPdb, OpenWorldError> {
    let check = tail
        .support_len()
        .unwrap_or(TAIL_VALIDATION_PREFIX)
        .min(TAIL_VALIDATION_PREFIX);
    let originals: std::collections::HashSet<Fact> =
        original.possible_facts().into_iter().collect();
    for i in 0..check {
        let f = tail.fact(i);
        if originals.contains(&f) {
            return Err(OpenWorldError::TailCollision(
                f.display(original.schema()).to_string(),
            ));
        }
        if tail.prob(i) >= 1.0 {
            return Err(OpenWorldError::CertainNewFact(
                f.display(original.schema()).to_string(),
            ));
        }
    }
    let tail_pdb = CountableTiPdb::new(tail).map_err(OpenWorldError::Ti)?;
    Ok(CompletedPdb::new(original, tail_pdb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::value::Value;
    use infpdb_math::series::{GeometricSeries, HarmonicSeries};

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn rfact(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    fn base_table() -> TiTable {
        TiTable::from_facts(schema(), [(rfact(1), 0.8), (rfact(2), 0.4)]).unwrap()
    }

    /// Tail facts R(100), R(101), …, geometric probabilities.
    fn tail() -> FactSupply {
        FactSupply::from_fn(
            schema(),
            |i| rfact(100 + i as i64),
            GeometricSeries::new(0.25, 0.5).unwrap(),
        )
    }

    #[test]
    fn ti_completion_preserves_original_marginals() {
        // The (CC)-relevant part for t.i. originals: marginals of original
        // facts are untouched.
        let pdb = complete_ti_table(&base_table(), tail()).unwrap();
        assert_eq!(pdb.marginal_at(0), 0.8);
        assert_eq!(pdb.marginal_at(1), 0.4);
        // and new facts got their assigned probabilities
        assert_eq!(pdb.marginal_at(2), 0.25);
        assert_eq!(pdb.marginal_at(3), 0.125);
        assert_eq!(pdb.marginal(&rfact(100), 100).unwrap(), 0.25);
    }

    #[test]
    fn ti_completion_open_world_facts_are_possible() {
        // The whole point of open world: an unlisted fact has positive
        // probability in the completion.
        let pdb = complete_ti_table(&base_table(), tail()).unwrap();
        let p = pdb.marginal(&rfact(101), 100).unwrap();
        assert!(p > 0.0);
        // while the closed-world table says 0
        assert_eq!(base_table().marginal(&rfact(101)), 0.0);
    }

    #[test]
    fn ti_completion_rejects_colliding_tails() {
        let bad_tail = FactSupply::from_fn(
            schema(),
            |i| rfact(i as i64 + 1), // R(1) collides
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        assert!(matches!(
            complete_ti_table(&base_table(), bad_tail),
            Err(OpenWorldError::TailCollision(_))
        ));
    }

    #[test]
    fn ti_completion_rejects_certain_new_facts() {
        let certain = FactSupply::from_vec(schema(), vec![(rfact(100), 1.0)]).unwrap();
        assert!(matches!(
            complete_ti_table(&base_table(), certain),
            Err(OpenWorldError::CertainNewFact(_))
        ));
    }

    #[test]
    fn ti_completion_rejects_divergent_tails() {
        let divergent = FactSupply::from_fn(
            schema(),
            |i| rfact(100 + i as i64),
            HarmonicSeries::new(0.5).unwrap(),
        );
        assert!(matches!(
            complete_ti_table(&base_table(), divergent),
            Err(OpenWorldError::Ti(_))
        ));
    }

    #[test]
    fn ti_completion_expected_size_adds_tail_mass() {
        // E = 0.8 + 0.4 (original) + 0.5 (geometric tail total)
        let pdb = complete_ti_table(&base_table(), tail()).unwrap();
        let (lo, hi) = pdb.expected_size_bounds(200).unwrap();
        assert!(lo <= 1.7 + 1e-9 && 1.7 <= hi + 1e-9, "1.7 ∉ [{lo}, {hi}]");
    }

    #[test]
    fn generic_completion_construction() {
        // correlated original (not t.i.): exactly one of R(1), R(2)
        let original =
            FinitePdb::from_worlds(schema(), [(vec![rfact(1)], 0.6), (vec![rfact(2)], 0.4)])
                .unwrap();
        let completed = complete_pdb(original, tail()).unwrap();
        // original correlation preserved (checked in completion.rs tests);
        // here: new facts possible
        assert!(completed.tail().marginal(&rfact(100), 10).unwrap() > 0.0);
    }

    #[test]
    fn generic_completion_rejects_collisions() {
        let original =
            FinitePdb::from_worlds(schema(), [(vec![rfact(1)], 0.6), (vec![rfact(2)], 0.4)])
                .unwrap();
        let bad_tail = FactSupply::from_fn(
            schema(),
            |i| rfact(2 + i as i64), // R(2) collides
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        assert!(matches!(
            complete_pdb(original, bad_tail),
            Err(OpenWorldError::TailCollision(_))
        ));
    }

    #[test]
    fn finite_tail_support_validation_caps() {
        // finite tails are validated fully without touching the 4096 limit
        let fin_tail = FactSupply::from_vec(schema(), vec![(rfact(100), 0.3)]).unwrap();
        let pdb = complete_ti_table(&base_table(), fin_tail).unwrap();
        assert_eq!(pdb.supply().support_len(), Some(3));
    }
}

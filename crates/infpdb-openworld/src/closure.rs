//! Closure repair for sample spaces not closed under subsets and unions.
//!
//! Theorem 5.5's decomposition `D′ = D ⊎ C` needs the original sample
//! space `Ω` to be closed under subsets and unions. The paper's remedy
//! (discussion after the proof): extend `Ω₀` to all finite subsets of
//! `F(D₀)`, scaling the original measure by a chosen `c ∈ (0, 1]` and
//! distributing the remaining mass `1 − c` over the missing instances.
//! (CC)-style faithfulness then holds relative to `Ω₀`:
//! `P({D} | Ω₀) = P₀({D})`.

use crate::OpenWorldError;
use infpdb_core::fact::FactId;
use infpdb_core::instance::Instance;
use infpdb_core::space::DiscreteSpace;
use infpdb_finite::FinitePdb;

/// Maximum number of possible facts for explicit closure (2^n instances).
pub const MAX_CLOSE_FACTS: usize = 20;

/// Whether a PDB's sample space is closed under subsets and pairwise
/// unions.
pub fn is_closed(pdb: &FinitePdb) -> bool {
    let worlds: Vec<&Instance> = pdb.space().outcomes().iter().map(|(d, _)| d).collect();
    let contains = |d: &Instance| worlds.contains(&d);
    for d in &worlds {
        // subsets: remove one fact at a time suffices (downward closure by
        // induction)
        for id in d.iter() {
            let mut smaller = (*d).clone();
            smaller.remove(id);
            if !contains(&smaller) {
                return false;
            }
        }
    }
    for a in &worlds {
        for b in &worlds {
            if !contains(&a.union(b)) {
                return false;
            }
        }
    }
    true
}

/// Extends the sample space to **all** subsets of `F(D₀)`: original
/// instances keep `c · P₀`, and the `1 − c` remainder is spread uniformly
/// over the missing instances. With `c = 1` the missing instances get
/// probability 0 (still present in the space, which restores closure).
pub fn close_space(pdb: &FinitePdb, c: f64) -> Result<FinitePdb, OpenWorldError> {
    if !(c > 0.0 && c <= 1.0) {
        return Err(OpenWorldError::Math(
            infpdb_math::MathError::NotAProbability(c),
        ));
    }
    let fact_ids: Vec<FactId> = {
        let mut ids: std::collections::BTreeSet<FactId> = Default::default();
        for (d, p) in pdb.space().outcomes() {
            if *p > 0.0 {
                ids.extend(d.iter());
            }
        }
        ids.into_iter().collect()
    };
    if fact_ids.len() > MAX_CLOSE_FACTS {
        return Err(OpenWorldError::TooManyCombinations(
            1usize << fact_ids.len().min(60),
        ));
    }
    let n = fact_ids.len();
    let mut outcomes: Vec<(Instance, f64)> = Vec::with_capacity(1 << n);
    let mut missing = Vec::new();
    for mask in 0u64..(1u64 << n) {
        let inst = Instance::from_ids((0..n).filter(|i| mask & (1 << i) != 0).map(|i| fact_ids[i]));
        let p0 = pdb.space().prob_outcome(&inst);
        if p0 > 0.0 {
            outcomes.push((inst, c * p0));
        } else {
            missing.push(inst);
        }
    }
    if missing.is_empty() {
        // space was already full: rescale back to mass 1
        for (_, p) in &mut outcomes {
            *p /= c;
        }
    } else {
        let share = (1.0 - c) / missing.len() as f64;
        outcomes.extend(missing.into_iter().map(|d| (d, share)));
    }
    let space = DiscreteSpace::new(outcomes)?;
    Ok(FinitePdb::from_parts(
        pdb.schema().clone(),
        pdb.interner().clone(),
        space,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::value::Value;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn rfact(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    /// Not closed: {R(1), R(2)} has positive mass but {R(1)} doesn't exist.
    fn open_pdb() -> FinitePdb {
        FinitePdb::from_worlds(schema(), [(vec![rfact(1), rfact(2)], 0.7), (vec![], 0.3)]).unwrap()
    }

    /// Closed: full powerset of {R(1)} with positive mass.
    fn closed_pdb() -> FinitePdb {
        FinitePdb::from_worlds(schema(), [(vec![rfact(1)], 0.4), (vec![], 0.6)]).unwrap()
    }

    #[test]
    fn closure_detection() {
        assert!(!is_closed(&open_pdb()));
        assert!(is_closed(&closed_pdb()));
    }

    #[test]
    fn union_violations_detected() {
        // subsets present but union missing
        let pdb = FinitePdb::from_worlds(
            schema(),
            [(vec![rfact(1)], 0.4), (vec![rfact(2)], 0.4), (vec![], 0.2)],
        )
        .unwrap();
        assert!(!is_closed(&pdb));
    }

    #[test]
    fn close_space_restores_closure_and_faithfulness() {
        let pdb = open_pdb();
        let closed = close_space(&pdb, 0.9).unwrap();
        assert!(is_closed(&closed));
        assert_eq!(closed.space().support_size(), 4);
        // faithfulness: P(D | Ω₀) = P₀(D)
        let omega0: f64 = pdb
            .space()
            .outcomes()
            .iter()
            .map(|(d, _)| closed.space().prob_outcome(d))
            .sum();
        for (d, p0) in pdb.space().outcomes() {
            let cond = closed.space().prob_outcome(d) / omega0;
            assert!((cond - p0).abs() < 1e-12);
        }
        // missing instances share the 0.1 remainder
        let d1 = Instance::from_ids([pdb.interner().get(&rfact(1)).unwrap()]);
        assert!((closed.space().prob_outcome(&d1) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn close_space_with_c_one_keeps_measure() {
        let pdb = open_pdb();
        let closed = close_space(&pdb, 1.0).unwrap();
        assert!(is_closed(&closed));
        for (d, p0) in pdb.space().outcomes() {
            assert!((closed.space().prob_outcome(d) - p0).abs() < 1e-12);
        }
    }

    #[test]
    fn close_space_idempotent_on_full_spaces() {
        let pdb = closed_pdb();
        let closed = close_space(&pdb, 0.5).unwrap();
        // space was already the full powerset: measure unchanged
        for (d, p0) in pdb.space().outcomes() {
            assert!((closed.space().prob_outcome(d) - p0).abs() < 1e-12);
        }
    }

    #[test]
    fn close_space_validates_c() {
        assert!(close_space(&open_pdb(), 0.0).is_err());
        assert!(close_space(&open_pdb(), 1.5).is_err());
    }

    #[test]
    fn close_space_guards_fact_explosion() {
        let facts: Vec<Fact> = (0..MAX_CLOSE_FACTS as i64 + 1).map(rfact).collect();
        let pdb = FinitePdb::from_worlds(schema(), [(facts, 0.5), (vec![], 0.5)]).unwrap();
        assert!(matches!(
            close_space(&pdb, 0.9),
            Err(OpenWorldError::TooManyCombinations(_))
        ));
    }

    #[test]
    fn closed_pdb_completes_end_to_end() {
        // closure → completion → (CC) still verifiable
        use infpdb_math::series::GeometricSeries;
        use infpdb_ti::enumerator::FactSupply;
        let closed = close_space(&open_pdb(), 0.9).unwrap();
        let tail = FactSupply::from_fn(
            schema(),
            |i| rfact(100 + i as i64),
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        let completed = crate::independent_facts::complete_pdb(closed, tail).unwrap();
        assert!(completed.verify_cc(32, 1e-9).is_ok());
    }
}

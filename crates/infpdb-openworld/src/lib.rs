#![warn(missing_docs)]
//! Open-world completions of probabilistic databases — Section 5 of Grohe
//! & Lindner (PODS 2019).
//!
//! A *completion* (Definition 5.1) expands a PDB's sample space to **all**
//! finite instances over the (infinite) universe while faithfully
//! preserving the original measure: conditioned on the original sample
//! space, nothing changes (the completion condition (CC)). This is the
//! paper's "infinite open-world assumption": facts never mentioned by the
//! database get small positive probabilities instead of the closed-world 0.
//!
//! * [`independent_facts`] — Theorem 5.5: completion by independent fresh
//!   facts. For a finite t.i. original this produces a countable
//!   *tuple-independent* PDB directly (finite table spliced in front of a
//!   convergent tail supply); for arbitrary finite originals it produces
//!   the product-measure [`completion::CompletedPdb`].
//! * [`completion`] — the `CompletedPdb` object and machinery to *verify*
//!   (CC) on concrete events.
//! * [`closure`] — the `c`-mass repair for sample spaces not closed under
//!   subsets/unions (the discussion after Theorem 5.5).
//! * [`closed_world`] — Remark 5.2: the closed-world assumption is the
//!   degenerate completion with all new probabilities 0.
//! * [`lambda`] — the OpenPDB baseline of Ceylan et al. (KR'16): finite
//!   universe, new facts bounded by a threshold `λ`, interval semantics
//!   for monotone queries. Included as the paper's point of comparison.
//! * [`distributions`] — concrete tail suppliers: geometric and ζ(2)
//!   decay over ℕ, word-length decay over `Σ*` (Example 2.4), discretized
//!   normal and name-frequency-with-decay distributions (Example 3.2).
//! * [`null_completion`] — Example 3.2: completing an incomplete database
//!   with null values into a PDB, one distribution per null.
//! * [`bid_completion`] — the abstract's extension: completions of
//!   block-independent-disjoint originals with fresh blocks.

pub mod bid_completion;
pub mod closed_world;
pub mod closure;
pub mod completion;
pub mod distributions;
pub mod independent_facts;
pub mod lambda;
pub mod null_completion;

pub use completion::CompletedPdb;
pub use lambda::LambdaCompletion;

/// Errors of the open-world layer.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenWorldError {
    /// Propagated infinite-PDB error.
    Ti(infpdb_ti::TiError),
    /// Propagated finite-engine error.
    Finite(String),
    /// Propagated core error.
    Core(infpdb_core::CoreError),
    /// Propagated numerics error.
    Math(infpdb_math::MathError),
    /// A tail fact collides with an original fact — the tail must supply
    /// facts from `F[τ,U] − F(D)`.
    TailCollision(String),
    /// A new fact was given probability 1, which forces `P′(Ω) = 0` and
    /// breaks the completion condition (remark before Theorem 5.5).
    CertainNewFact(String),
    /// The requested operation would enumerate too many combinations.
    TooManyCombinations(usize),
    /// A query is not monotone (not a UCQ), so λ-interval semantics does
    /// not apply.
    NotMonotone(String),
}

impl std::fmt::Display for OpenWorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenWorldError::Ti(e) => write!(f, "{e}"),
            OpenWorldError::Finite(e) => write!(f, "{e}"),
            OpenWorldError::Core(e) => write!(f, "{e}"),
            OpenWorldError::Math(e) => write!(f, "{e}"),
            OpenWorldError::TailCollision(s) => {
                write!(
                    f,
                    "tail supplies fact {s} that already belongs to the original PDB"
                )
            }
            OpenWorldError::CertainNewFact(s) => write!(
                f,
                "new fact {s} has probability 1; completions require new facts with p < 1"
            ),
            OpenWorldError::TooManyCombinations(n) => {
                write!(f, "operation would enumerate {n} combinations")
            }
            OpenWorldError::NotMonotone(s) => {
                write!(f, "query is not a UCQ, λ-interval semantics undefined: {s}")
            }
        }
    }
}

impl std::error::Error for OpenWorldError {}

impl From<infpdb_ti::TiError> for OpenWorldError {
    fn from(e: infpdb_ti::TiError) -> Self {
        OpenWorldError::Ti(e)
    }
}

impl From<infpdb_core::CoreError> for OpenWorldError {
    fn from(e: infpdb_core::CoreError) -> Self {
        OpenWorldError::Core(e)
    }
}

impl From<infpdb_math::MathError> for OpenWorldError {
    fn from(e: infpdb_math::MathError) -> Self {
        OpenWorldError::Math(e)
    }
}

impl From<infpdb_finite::FiniteError> for OpenWorldError {
    fn from(e: infpdb_finite::FiniteError) -> Self {
        OpenWorldError::Finite(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversions() {
        assert!(OpenWorldError::TailCollision("R(1)".into())
            .to_string()
            .contains("R(1)"));
        assert!(OpenWorldError::CertainNewFact("S(2)".into())
            .to_string()
            .contains("p < 1"));
        assert!(OpenWorldError::TooManyCombinations(1 << 30)
            .to_string()
            .contains("combinations"));
        assert!(OpenWorldError::NotMonotone("neg".into())
            .to_string()
            .contains("UCQ"));
        let e: OpenWorldError = infpdb_ti::TiError::UnboundedEvent.into();
        assert!(e.to_string().contains("finite"));
        let c: OpenWorldError = infpdb_core::CoreError::EmptySpace.into();
        assert!(c.to_string().contains("sample"));
        let m: OpenWorldError = infpdb_math::MathError::UnknownTail.into();
        assert!(m.to_string().contains("tail"));
    }
}

//! The closed-world assumption as a degenerate completion (Remark 5.2).
//!
//! "Applying the closed-world assumption to a PDB corresponds to
//! considering the completion that sets all probabilities of new instances
//! to 0." This module makes that comparison executable: the closed-world
//! completion of a t.i. table is the countable t.i. PDB whose tail is
//! identically zero, and [`open_vs_closed_gap`] quantifies how the two
//! semantics disagree on a fact — the paper's introduction in one number.

use crate::OpenWorldError;
use infpdb_core::fact::Fact;
use infpdb_finite::TiTable;
use infpdb_math::series::FiniteSeries;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;

/// The closed-world completion: the PDB is extended to all of `D[τ,U]` but
/// every new instance has probability 0 (zero tail).
pub fn closed_world_completion(table: &TiTable) -> Result<CountableTiPdb, OpenWorldError> {
    let pairs: Vec<(Fact, f64)> = table.iter().map(|(_, f, p)| (f.clone(), p)).collect();
    let facts: Vec<Fact> = pairs.iter().map(|(f, _)| f.clone()).collect();
    let series =
        FiniteSeries::new(pairs.iter().map(|(_, p)| *p).collect()).map_err(OpenWorldError::Math)?;
    let fallback = facts
        .first()
        .cloned()
        .unwrap_or_else(|| Fact::new(infpdb_core::schema::RelId(0), []));
    let supply = FactSupply::from_fn(
        table.schema().clone(),
        move |i| facts.get(i).cloned().unwrap_or_else(|| fallback.clone()),
        series,
    );
    CountableTiPdb::new(supply).map_err(OpenWorldError::Ti)
}

/// The probability gap a single unlisted fact suffers between closed- and
/// open-world semantics: under the closed world it is 0; under the given
/// open-world completion it is its tail probability. Returns
/// `(closed, open)`.
pub fn open_vs_closed_gap(
    table: &TiTable,
    open: &CountableTiPdb,
    fact: &Fact,
    locate_limit: usize,
) -> (f64, f64) {
    let closed = table.marginal(fact);
    let open_p = open.marginal(fact, locate_limit).unwrap_or(0.0);
    (closed, open_p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::value::Value;
    use infpdb_math::series::GeometricSeries;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn rfact(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    fn table() -> TiTable {
        TiTable::from_facts(schema(), [(rfact(1), 0.8), (rfact(2), 0.4)]).unwrap()
    }

    #[test]
    fn closed_world_completion_has_zero_tail() {
        let cw = closed_world_completion(&table()).unwrap();
        assert_eq!(cw.supply().support_len(), Some(2));
        assert_eq!(cw.marginal_at(0), 0.8);
        assert_eq!(cw.marginal_at(5), 0.0);
        // expected size = original expected size exactly
        let (lo, hi) = cw.expected_size_bounds(10).unwrap();
        assert!(lo <= 1.2 + 1e-12 && 1.2 <= hi + 1e-12);
        assert!(hi - lo < 1e-12);
    }

    #[test]
    fn gap_between_open_and_closed_semantics() {
        let t = table();
        let tail = FactSupply::from_fn(
            schema(),
            |i| rfact(100 + i as i64),
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        let open = crate::independent_facts::complete_ti_table(&t, tail).unwrap();
        let (closed, open_p) = open_vs_closed_gap(&t, &open, &rfact(100), 1000);
        assert_eq!(closed, 0.0);
        assert_eq!(open_p, 0.25);
        // listed facts agree in both semantics
        let (c1, o1) = open_vs_closed_gap(&t, &open, &rfact(1), 1000);
        assert_eq!(c1, 0.8);
        assert_eq!(o1, 0.8);
    }

    #[test]
    fn intro_example_ranking_of_unlikely_vs_impossible() {
        // The paper's introduction: under open-world semantics, a "nearby"
        // unlisted fact should be *more likely* than a "far-fetched" one,
        // while the closed world assigns both exactly 0. Model nearness by
        // enumeration order with decaying probabilities.
        let t = table();
        let tail = FactSupply::from_fn(
            schema(),
            |i| rfact(100 + i as i64),
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        let open = crate::independent_facts::complete_ti_table(&t, tail).unwrap();
        let near = open.marginal(&rfact(100), 1000).unwrap();
        let far = open.marginal(&rfact(110), 1000).unwrap();
        assert!(near > far);
        assert!(far > 0.0);
        // the closed world cannot rank them
        assert_eq!(t.marginal(&rfact(100)), t.marginal(&rfact(110)));
    }

    #[test]
    fn empty_table_closed_world() {
        let t = TiTable::new(schema());
        let cw = closed_world_completion(&t).unwrap();
        assert_eq!(cw.supply().support_len(), Some(0));
        let enc = cw.prob_empty(4).unwrap();
        assert!(enc.contains(1.0));
    }
}

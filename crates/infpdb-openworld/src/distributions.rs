//! Concrete tail distributions for open-world completions.
//!
//! The paper's examples motivate several shapes of "small positive
//! probability for everything imaginable":
//!
//! * geometric decay over an integer-indexed fact family (Example 5.7's
//!   `2^{-i}` tail);
//! * the Basel distribution `6/(π²n²)` (Examples 2.4 and 3.3);
//! * word-length decay over `Σ*` (Example 2.4's string distribution —
//!   "a small positive probability to all strings not occurring in the
//!   list, decaying with increasing length", Example 3.2);
//! * a **discretized normal** for numeric attributes (Example 3.2's height
//!   column: the paper uses `N(180, σ)` on ℝ; our countable stand-in puts
//!   the same mass on a fixed-point grid — see DESIGN.md "Substitutions");
//! * a **name-frequency list with decaying remainder** (Example 3.2's
//!   first-name column).

use crate::OpenWorldError;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Schema};
use infpdb_core::value::Value;
use infpdb_math::series::{GeometricSeries, ScaledSeries, WordLengthSeries, ZetaSeries};
use infpdb_math::KahanSum;
use infpdb_ti::enumerator::FactSupply;

/// Geometric tail over a unary relation: fact `i` is `rel(start + i)` with
/// probability `first · ratio^i`. Mirrors Example 5.7's `2^{-i}` choice.
pub fn geometric_unary_tail(
    schema: Schema,
    rel: RelId,
    start: i64,
    first: f64,
    ratio: f64,
) -> Result<FactSupply, OpenWorldError> {
    let series = GeometricSeries::new(first, ratio).map_err(OpenWorldError::Math)?;
    Ok(FactSupply::from_fn(
        schema,
        move |i| Fact::new(rel, [Value::int(start + i as i64)]),
        series,
    ))
}

/// Basel tail `scale · 6/(π² n²)` over a unary relation (Example 2.4's
/// integer part): slow convergence — the regime where truncation indexes
/// grow polynomially in `1/ε` (end of Section 6).
pub fn zeta_unary_tail(
    schema: Schema,
    rel: RelId,
    start: i64,
    scale: f64,
) -> Result<FactSupply, OpenWorldError> {
    let series = ScaledSeries::new(ZetaSeries::basel(), scale).map_err(OpenWorldError::Math)?;
    Ok(FactSupply::from_fn(
        schema,
        move |i| Fact::new(rel, [Value::int(start + i as i64)]),
        series,
    ))
}

/// Word-length-decay tail over all binary strings (Example 2.4): fact `i`
/// is `rel(w_i)` for the `i`-th string in shortlex order, with total tail
/// mass `mass`.
pub fn string_tail(schema: Schema, rel: RelId, mass: f64) -> Result<FactSupply, OpenWorldError> {
    let series = ScaledSeries::new(
        WordLengthSeries::new(2).map_err(OpenWorldError::Math)?,
        mass,
    )
    .map_err(OpenWorldError::Math)?;
    Ok(FactSupply::from_fn(
        schema,
        move |i| {
            Fact::new(
                rel,
                [Value::str(infpdb_math::pairing::nat_to_string(
                    i as u64 + 1,
                ))],
            )
        },
        series,
    ))
}

/// A discretized normal distribution on a fixed-point grid: value
/// `mean + k·step` for `k ∈ [−cutoff, cutoff]` gets mass proportional to
/// the normal density, normalized to total `mass`. `decimals` is the grid's
/// fixed-point precision. This is the countable stand-in for Example 3.2's
/// height attribute.
pub fn discretized_normal(
    mean: f64,
    std_dev: f64,
    step: f64,
    decimals: u8,
    cutoff_sigmas: f64,
    mass: f64,
) -> Result<Vec<(Value, f64)>, OpenWorldError> {
    infpdb_math::check_probability(mass).map_err(OpenWorldError::Math)?;
    assert!(std_dev > 0.0 && step > 0.0 && cutoff_sigmas > 0.0);
    let k_max = (cutoff_sigmas * std_dev / step).ceil() as i64;
    let scale = 10f64.powi(decimals as i32);
    let mut weights = Vec::with_capacity((2 * k_max + 1) as usize);
    let mut total = KahanSum::new();
    for k in -k_max..=k_max {
        let x = mean + k as f64 * step;
        let z = (x - mean) / std_dev;
        let w = (-0.5 * z * z).exp();
        let v = Value::fixed((x * scale).round() as i64, decimals);
        weights.push((v, w));
        total.add(w);
    }
    let norm = mass / total.value();
    Ok(weights.into_iter().map(|(v, w)| (v, w * norm)).collect())
}

/// Example 3.2's first-name model: a frequency list covering mass
/// `1 − tail_mass`, plus word-length decay over all other strings carrying
/// `tail_mass`. Returns the *distribution over values* as a supply of
/// unary facts `rel(name)`.
///
/// The listed names keep their relative frequencies; unlisted strings get
/// the Example 2.4 decay, skipping strings that appear in the list.
pub fn names_with_decay(
    schema: Schema,
    rel: RelId,
    names: Vec<(String, f64)>,
    tail_mass: f64,
) -> Result<FactSupply, OpenWorldError> {
    infpdb_math::check_probability(tail_mass).map_err(OpenWorldError::Math)?;
    let freq_total: f64 = names.iter().map(|(_, w)| w).sum();
    if freq_total <= 0.0 {
        return Err(OpenWorldError::Math(
            infpdb_math::MathError::NotAProbability(freq_total),
        ));
    }
    let head: Vec<(Fact, f64)> = names
        .iter()
        .map(|(n, w)| {
            (
                Fact::new(rel, [Value::str(n)]),
                (1.0 - tail_mass) * w / freq_total,
            )
        })
        .collect();
    let listed: std::collections::HashSet<String> = names.iter().map(|(n, _)| n.clone()).collect();
    // Tail over binary-alphabet strings not in the list. (The listed names
    // are typically over a different alphabet, but we skip them anyway.)
    let tail_series = ScaledSeries::new(
        WordLengthSeries::new(2).map_err(OpenWorldError::Math)?,
        tail_mass,
    )
    .map_err(OpenWorldError::Math)?;
    let head_len = head.len();
    let head_series =
        infpdb_math::series::FiniteSeries::new(head.iter().map(|(_, p)| *p).collect())
            .map_err(OpenWorldError::Math)?;
    let series = infpdb_math::series::ConcatSeries::new(head_series, tail_series);
    let head_facts: Vec<Fact> = head.into_iter().map(|(f, _)| f).collect();
    Ok(FactSupply::from_fn(
        schema,
        move |i| {
            if i < head_len {
                head_facts[i].clone()
            } else {
                // enumerate binary strings, skipping listed names
                let mut idx = (i - head_len) as u64;
                let mut code = 1u64;
                loop {
                    let w = infpdb_math::pairing::nat_to_string(code);
                    if !listed.contains(&w) {
                        if idx == 0 {
                            return Fact::new(rel, [Value::str(w)]);
                        }
                        idx -= 1;
                    }
                    code += 1;
                }
            }
        },
        series,
    ))
}

/// The full Example 2.4 distribution over the mixed universe `Σ* ∪ ℝ`
/// (our countable stand-in: binary strings ∪ a fixed-point grid):
/// `P = ½·P₁ + ½·P₂` with `P₁` the word-length decay over `Σ*` and `P₂`
/// a (discretized) standard normal `N(0, 1)`.
///
/// Returned as a fact supply over a unary relation: string facts and
/// numeric facts interleaved, total mass 1, certified tails.
pub fn example_2_4_mixture(
    schema: Schema,
    rel: RelId,
    grid_decimals: u8,
) -> Result<FactSupply, OpenWorldError> {
    // P₂: discretized N(0,1) carrying mass ½ — finite support
    let step = 10f64.powi(-(grid_decimals as i32));
    let normal = discretized_normal(0.0, 1.0, step, grid_decimals, 8.0, 0.5)?;
    let normal_head: Vec<(Fact, f64)> = normal
        .into_iter()
        .map(|(v, p)| (Fact::new(rel, [v]), p))
        .collect();
    // P₁: word-length decay carrying mass ½ — infinite tail
    let tail_series =
        ScaledSeries::new(WordLengthSeries::new(2).map_err(OpenWorldError::Math)?, 0.5)
            .map_err(OpenWorldError::Math)?;
    let head_series =
        infpdb_math::series::FiniteSeries::new(normal_head.iter().map(|(_, p)| *p).collect())
            .map_err(OpenWorldError::Math)?;
    let head_len = normal_head.len();
    let series = infpdb_math::series::ConcatSeries::new(head_series, tail_series);
    Ok(FactSupply::from_fn(
        schema,
        move |i| {
            if i < head_len {
                normal_head[i].0.clone()
            } else {
                Fact::new(
                    rel,
                    [Value::str(infpdb_math::pairing::nat_to_string(
                        (i - head_len) as u64 + 1,
                    ))],
                )
            }
        },
        series,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::Relation;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("Name", 1)]).unwrap()
    }

    #[test]
    fn geometric_tail_facts_and_probs() {
        let s = geometric_unary_tail(schema(), RelId(0), 100, 0.25, 0.5).unwrap();
        assert_eq!(s.fact(0), Fact::new(RelId(0), [Value::int(100)]));
        assert_eq!(s.prob(1), 0.125);
        assert!(infpdb_math::series::certify_convergent(&s).is_ok());
        s.check_injective(100).unwrap();
    }

    #[test]
    fn zeta_tail_total_mass_scales() {
        let s = zeta_unary_tail(schema(), RelId(0), 1, 0.5).unwrap();
        let bound = infpdb_math::series::certify_convergent(&s).unwrap();
        assert!((0.5..0.51).contains(&bound));
    }

    #[test]
    fn string_tail_enumerates_shortlex() {
        let s = string_tail(schema(), RelId(0), 0.2).unwrap();
        assert_eq!(s.fact(0).args()[0], Value::str(""));
        assert_eq!(s.fact(1).args()[0], Value::str("0"));
        assert_eq!(s.fact(4).args()[0], Value::str("01"));
        let bound = infpdb_math::series::certify_convergent(&s).unwrap();
        assert!((0.2..0.25).contains(&bound));
        s.check_injective(200).unwrap();
    }

    #[test]
    fn discretized_normal_mass_and_shape() {
        let d = discretized_normal(180.0, 7.0, 0.5, 1, 6.0, 1.0).unwrap();
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // mode at the mean
        let at = |x: i64| {
            d.iter()
                .find(|(v, _)| *v == Value::fixed(x, 1))
                .map(|(_, p)| *p)
                .unwrap()
        };
        assert!(at(1800) > at(1850));
        assert!(at(1850) > at(1900));
        // symmetry
        assert!((at(1750) - at(1850)).abs() < 1e-12);
        // the paper's introduction: "20.3 is more likely than 30.0 °C" —
        // closer-to-mean values dominate
        assert!(at(1805) > at(2100));
    }

    #[test]
    fn discretized_normal_partial_mass() {
        let d = discretized_normal(0.0, 1.0, 0.1, 1, 8.0, 0.25).unwrap();
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((total - 0.25).abs() < 1e-9);
    }

    #[test]
    fn names_with_decay_reserves_tail_mass() {
        let s = names_with_decay(
            schema(),
            RelId(0),
            vec![("Peter".into(), 3.0), ("Martin".into(), 1.0)],
            0.1,
        )
        .unwrap();
        // head: 0.9·(3/4), 0.9·(1/4)
        assert!((s.prob(0) - 0.675).abs() < 1e-12);
        assert!((s.prob(1) - 0.225).abs() < 1e-12);
        assert_eq!(s.fact(0).args()[0], Value::str("Peter"));
        // tail strings carry the remaining 0.1
        let bound = infpdb_math::series::certify_convergent(&s).unwrap();
        assert!((1.0 - 1e-9..1.05).contains(&bound));
        // unlisted strings have positive probability — the open world
        assert!(s.prob(2) > 0.0);
        s.check_injective(100).unwrap();
    }

    #[test]
    fn names_with_decay_skips_listed_strings_in_tail() {
        // list a *binary* string so the skip logic engages
        let s = names_with_decay(schema(), RelId(0), vec![("0".into(), 1.0)], 0.2).unwrap();
        // the tail enumeration must never produce "0" again
        for i in 1..50 {
            assert_ne!(s.fact(i).args()[0], Value::str("0"), "index {i}");
        }
        s.check_injective(50).unwrap();
    }

    #[test]
    fn example_2_4_mixture_is_a_unit_mass_supply() {
        let s = example_2_4_mixture(schema(), RelId(0), 1).unwrap();
        let bound = infpdb_math::series::certify_convergent(&s).unwrap();
        // the word-length tail bound is an integral estimate, ~11% loose at 0
        assert!((1.0 - 1e-9..1.15).contains(&bound), "total bound {bound}");
        // mixed value kinds appear
        let mut saw_fixed = false;
        let mut saw_str = false;
        for i in 0..400 {
            match &s.fact(i).args()[0] {
                Value::Fixed(_) | Value::Int(_) => saw_fixed = true,
                Value::Str(_) => saw_str = true,
            }
        }
        assert!(saw_fixed && saw_str);
        s.check_injective(400).unwrap();
        // and it constructs a countable t.i. PDB (Theorem 4.8)
        let pdb = infpdb_ti::construction::CountableTiPdb::new(s).unwrap();
        let (lo, hi) = pdb.expected_size_bounds(2000).unwrap();
        assert!(lo <= 1.0 && 1.0 <= hi + 1e-6, "1 ∉ [{lo}, {hi}]");
    }

    #[test]
    fn names_with_decay_rejects_bad_input() {
        assert!(names_with_decay(schema(), RelId(0), vec![], 0.1).is_err());
        assert!(names_with_decay(schema(), RelId(0), vec![("a".into(), 1.0)], 1.5).is_err());
    }
}

//! The completed PDB object and verification of the completion condition.
//!
//! A [`CompletedPdb`] is the product measure of Theorem 5.5's proof: every
//! instance of the completion decomposes uniquely as `D′ = D ⊎ C` with `D`
//! from the original PDB and `C` from the fresh tuple-independent tail, and
//! `P′({D′}) = P({D}) · P₁({C})`.
//!
//! The defining requirement is Definition 5.1's completion condition
//!
//! ```text
//! (CC)  P′(A | Ω) = P(A)     for all original events A,
//! ```
//!
//! which holds because conditioning on `Ω` (no new fact occurs) divides
//! out the constant factor `P₁({∅}) > 0`. [`CompletedPdb::verify_cc`]
//! checks this numerically on every original instance.

use crate::OpenWorldError;
use infpdb_core::event::Event;
use infpdb_core::fact::Fact;
use infpdb_core::instance::Instance;
use infpdb_finite::FinitePdb;
use infpdb_math::ProbInterval;
use infpdb_ti::construction::CountableTiPdb;

/// A completion `D′` of a finite PDB by an independent t.i. tail.
#[derive(Debug, Clone)]
pub struct CompletedPdb {
    original: FinitePdb,
    tail: CountableTiPdb,
}

impl CompletedPdb {
    /// Assembles a completion from its parts. Use
    /// [`crate::independent_facts::complete_pdb`] for a validated
    /// construction.
    pub fn new(original: FinitePdb, tail: CountableTiPdb) -> Self {
        Self { original, tail }
    }

    /// The original PDB `D`.
    pub fn original(&self) -> &FinitePdb {
        &self.original
    }

    /// The fresh-fact t.i. PDB `C`.
    pub fn tail(&self) -> &CountableTiPdb {
        &self.tail
    }

    /// `P′({D ⊎ C})`: probability of the completed instance whose original
    /// part is `original_part` (an instance of the original space) and
    /// whose new part is the set `new_facts` (certified interval — the new
    /// part involves the infinite product).
    pub fn instance_prob(
        &self,
        original_part: &Instance,
        new_facts: &[Fact],
        refine: usize,
    ) -> Result<ProbInterval, OpenWorldError> {
        let p_d = self.original.space().prob_outcome(original_part);
        let p_c = self.tail.instance_prob(
            new_facts,
            refine,
            infpdb_ti::construction::DEFAULT_LOCATE_LIMIT,
        )?;
        ProbInterval::new(p_d * p_c.lo(), p_d * p_c.hi()).map_err(OpenWorldError::Math)
    }

    /// `P′(Ω)`: probability that no new fact occurs — `P₁({∅})`, positive
    /// because no new fact has probability 1.
    pub fn prob_original_space(&self, refine: usize) -> Result<ProbInterval, OpenWorldError> {
        Ok(self.tail.prob_empty(refine)?)
    }

    /// `P′(A)` for an event over *original* facts only (fact ids from the
    /// original interner): by the product decomposition this equals
    /// `P(A)` directly — the original part of `D′` is distributed as `D`.
    pub fn prob_original_event(&self, event: &Event) -> f64 {
        self.original.prob_event(event)
    }

    /// Verifies the completion condition (CC) pointwise: for every
    /// original instance `D`,
    /// `P′({D} × {no new facts}) / P′(Ω) = P({D})` up to `tol`.
    /// Returns the maximum absolute deviation observed.
    pub fn verify_cc(&self, refine: usize, tol: f64) -> Result<f64, OpenWorldError> {
        let omega = self.prob_original_space(refine)?;
        let mut worst: f64 = 0.0;
        for (d, p) in self.original.space().outcomes() {
            let joint = self.instance_prob(d, &[], refine)?;
            let conditioned = joint.divide_conditional(&omega);
            let dev = (conditioned.midpoint() - p).abs();
            worst = worst.max(dev);
            if dev > tol {
                return Err(OpenWorldError::Finite(format!(
                    "completion condition violated: P'(D|Ω) = {} but P(D) = {p}",
                    conditioned.midpoint()
                )));
            }
        }
        Ok(worst)
    }

    /// Marginal of an arbitrary fact in the completion: original facts keep
    /// their original marginal, new facts get their tail probability, and
    /// everything else is 0 (but *would* be assigned a probability by a
    /// richer tail — the closed-world boundary now lies at the tail's
    /// support, infinitely far out for infinite tails).
    pub fn marginal(&self, fact: &Fact, locate_limit: usize) -> f64 {
        let original = self.original.marginal(fact);
        if original > 0.0 {
            return original;
        }
        self.tail.marginal(fact, locate_limit).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::value::Value;
    use infpdb_math::series::GeometricSeries;
    use infpdb_ti::enumerator::FactSupply;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn rfact(n: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(n)])
    }

    /// Correlated original: worlds {R(1)} (0.6), {R(2)} (0.3), {} (0.1).
    fn original() -> FinitePdb {
        FinitePdb::from_worlds(
            schema(),
            [(vec![rfact(1)], 0.6), (vec![rfact(2)], 0.3), (vec![], 0.1)],
        )
        .unwrap()
    }

    fn completed() -> CompletedPdb {
        let tail = FactSupply::from_fn(
            schema(),
            |i| rfact(100 + i as i64),
            GeometricSeries::new(0.25, 0.5).unwrap(),
        );
        crate::independent_facts::complete_pdb(original(), tail).unwrap()
    }

    #[test]
    fn completion_condition_holds() {
        // Theorem 5.5 / Definition 5.1 (CC), verified numerically.
        let c = completed();
        let worst = c.verify_cc(64, 1e-9).unwrap();
        assert!(worst < 1e-9, "max (CC) deviation {worst}");
    }

    #[test]
    fn original_space_has_positive_probability() {
        let c = completed();
        let omega = c.prob_original_space(64).unwrap();
        assert!(omega.lo() > 0.0);
        assert!(omega.hi() < 1.0);
        // ∏(1 − 0.25·0.5^i) ≈ 0.6625 (computed by long product)
        let mut truth = 1.0;
        for i in 0..300 {
            truth *= 1.0 - 0.25 * 0.5f64.powi(i);
        }
        assert!(omega.contains(truth));
    }

    #[test]
    fn product_decomposition_of_instance_probabilities() {
        let c = completed();
        let d = Instance::from_ids([infpdb_core::fact::FactId(0)]); // {R(1)} in original interner
                                                                    // P'(D ⊎ {R(100)}) = P(D) · p_100 · ∏_{other new}(1 − p)
        let joint = c.instance_prob(&d, &[rfact(100)], 64).unwrap();
        let tail_only = c.tail().instance_prob(&[rfact(100)], 64, 100).unwrap();
        assert!((joint.midpoint() - 0.6 * tail_only.midpoint()).abs() < 1e-9);
    }

    #[test]
    fn original_events_keep_their_probabilities() {
        let c = completed();
        let id1 = c.original().interner().get(&rfact(1)).unwrap();
        assert!((c.prob_original_event(&Event::fact(id1)) - 0.6).abs() < 1e-12);
        // original correlations survive: R(1) and R(2) exclusive
        let id2 = c.original().interner().get(&rfact(2)).unwrap();
        let both = Event::fact(id1).and(Event::fact(id2));
        assert_eq!(c.prob_original_event(&both), 0.0);
    }

    #[test]
    fn marginals_route_to_the_right_component() {
        let c = completed();
        assert!((c.marginal(&rfact(1), 100) - 0.6).abs() < 1e-12);
        assert!((c.marginal(&rfact(100), 100) - 0.25).abs() < 1e-12);
        assert_eq!(c.marginal(&rfact(50), 100), 0.0);
    }

    #[test]
    fn cc_violation_detected_for_broken_completion() {
        // Deliberately pair the original with a tail whose support overlaps
        // nothing (fine) but compare against a *different* original: CC
        // verification is on the object itself, so break it by assembling a
        // CompletedPdb whose "original" mass does not match what
        // instance_prob uses. Easiest concrete break: claim a different
        // original measure after construction.
        let c = completed();
        // (CC) holds for the true object…
        assert!(c.verify_cc(32, 1e-9).is_ok());
        // …and the checker reports violations when tolerances are absurd
        let err = c.verify_cc(32, -1.0);
        assert!(err.is_err());
    }
}

//! The executable content of Proposition 6.2.
//!
//! For the query `Q = ∃x R(x)` on a represented PDB,
//! `P(Q) = 1 − ∏_{k : R\text{-fact}} (1 − 2^{−k})`, and `P(Q) = 0` iff
//! `L(N) = ∅`. A multiplicative `c`-approximation would let us decide
//! emptiness (return 0 iff the true probability is 0) — undecidable by
//! Rice's theorem. The *additive* guarantee of Proposition 6.1 survives
//! because an additive approximator may simply return a small number
//! without certifying zero.
//!
//! [`prob_exists_r`] computes a certified interval for `P(Q)` from a
//! prefix: the discarded pairs `k > n` might all be `R`-facts (contributing
//! at most the tail mass) or none (contributing nothing) — exactly the gap
//! a multiplicative approximator cannot close, made visible as an interval
//! that contains 0 without being `{0}`.

use crate::represent::RepresentedPdb;
use infpdb_core::schema::RelId;
use infpdb_math::{KahanSum, MathError, ProbInterval};

/// Certified interval for `P(∃x R(x))` on the represented PDB, examining
/// pairs `k = 1 … n` explicitly. The width shrinks as `2^{−n}`.
pub fn prob_exists_r(rep: &RepresentedPdb, n: u32) -> Result<ProbInterval, MathError> {
    let supply = rep.supply();
    // explicit part: ∏ over R-facts among k ≤ n of (1 − 2^{−k})
    let mut log_acc = KahanSum::new();
    for i in 0..n as usize {
        if supply.fact(i).rel() == RelId(0) {
            log_acc.add((-supply.prob(i)).ln_1p());
        }
    }
    let explicit = log_acc.value().min(0.0).exp();
    let tail = 0.5f64.powi(n as i32); // ∑_{k>n} 2^{−k}
                                      // If no discarded pair is an R-fact: P(no R) = explicit.
                                      // If all are: P(no R) ≥ explicit · e^{−(3/2)·tail} (claim ∗).
    let no_r_hi = explicit;
    let no_r_lo = explicit * (-(1.5 * tail)).exp();
    Ok(ProbInterval::new(1.0 - no_r_hi, 1.0 - no_r_lo)?.outward(1e-12))
}

/// Whether two representations produce identical fact enumerations over
/// the first `n` indexes — the observational equivalence that defeats
/// multiplicative approximation: a machine with `L(N) = ∅` and one whose
/// first acceptance happens past every examined pair look the same.
pub fn prefixes_agree(a: &RepresentedPdb, b: &RepresentedPdb, n: usize) -> bool {
    let sa = a.supply();
    let sb = b.supply();
    (0..n).all(|i| sa.fact(i) == sb.fact(i))
}

/// The emptiness dichotomy, decided *semi*-effectively: scans pairs
/// `k ≤ n` and reports whether any is an `R`-fact (a witness that
/// `P(Q) > 0`). A `false` answer is NOT a certificate of emptiness — that
/// is the whole point.
pub fn has_r_witness(rep: &RepresentedPdb, n: u32) -> Option<u64> {
    (1..=n as u64).find(|&k| rep.is_r_fact(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::TuringMachine;

    #[test]
    fn empty_language_interval_contains_zero_only_at_lo() {
        let rep = RepresentedPdb::new(TuringMachine::rejects_all());
        let iv = prob_exists_r(&rep, 30).unwrap();
        assert_eq!(iv.lo(), 0.0);
        assert!(iv.hi() < 1e-8, "hi = {}", iv.hi());
        assert!(has_r_witness(&rep, 200).is_none());
    }

    #[test]
    fn nonempty_language_interval_excludes_zero() {
        let rep = RepresentedPdb::new(TuringMachine::accepts_all());
        let iv = prob_exists_r(&rep, 30).unwrap();
        assert!(iv.lo() > 0.4, "lo = {}", iv.lo());
        assert!(has_r_witness(&rep, 50).is_some());
    }

    #[test]
    fn intervals_tighten_with_prefix_length() {
        let rep = RepresentedPdb::new(TuringMachine::accepts_only_empty());
        let a = prob_exists_r(&rep, 5).unwrap();
        let b = prob_exists_r(&rep, 25).unwrap();
        assert!(b.width() < a.width());
        // nested enclosures of the same quantity
        assert!(a.intersect(&b).is_ok());
    }

    #[test]
    fn the_multiplicative_obstruction() {
        // rejects_all and loops_forever both have L(N) = ∅… but consider a
        // machine whose first acceptance needs more steps than any pair
        // ⟨n, t⟩ with k ≤ N provides: observationally it matches the empty
        // machine on every examined pair. Here loops_forever IS empty, so
        // the two agree everywhere — the approximator sees identical data
        // and must answer identically; a multiplicative approximator would
        // thus claim both are 0 or both positive, yet no finite scan can
        // justify "0" in general (Rice). We demonstrate the observational
        // agreement:
        let empty = RepresentedPdb::new(TuringMachine::rejects_all());
        let looper = RepresentedPdb::new(TuringMachine::loops_forever());
        assert!(prefixes_agree(&empty, &looper, 100));
        // and a machine that does accept eventually disagrees somewhere
        let scanner = RepresentedPdb::new(TuringMachine::accepts_strings_with_a_one());
        assert!(!prefixes_agree(&empty, &scanner, 100));
    }

    #[test]
    fn additive_guarantee_still_fine() {
        // the additive approximator (Prop 6.1) on the represented PDB:
        // estimate within ε of the truth, no zero-certification claimed
        use infpdb_math::truncation;
        let rep = RepresentedPdb::new(TuringMachine::accepts_all());
        let pdb = rep.pdb().unwrap();
        let t = truncation::for_tolerance(pdb.supply(), 0.01).unwrap();
        let iv = prob_exists_r(&rep, t.n as u32).unwrap();
        // true value within the certified interval, width below ε
        assert!(iv.width() < 0.01);
    }

    #[test]
    fn r_witness_reports_smallest_k() {
        let rep = RepresentedPdb::new(TuringMachine::accepts_all());
        // k = ⟨1,1⟩ = 1 accepts instantly
        assert_eq!(has_r_witness(&rep, 10), Some(1));
    }
}

//! The `M(N)` construction: a Turing machine representing a weight-1
//! tuple-independent PDB (proof of Proposition 6.2).
//!
//! Identify `Σ* = {0,1}*` with ℕ (the string `x` is the integer with
//! binary representation `1x`) and let `⟨·,·⟩` be the Cantor pairing. For
//! every `k = ⟨n, t⟩ ∈ ℕ`:
//!
//! * if `N` accepts `n` within `t` steps (`n ∈ L_{N,t}`), the fact `R(k)`
//!   gets probability `2^{−k}`;
//! * otherwise the fact `S(k)` gets probability `2^{−k}`.
//!
//! Either way exactly one fact per `k` carries mass `2^{−k}`, so
//! `∑_f p_M(f) = ∑_k 2^{−k} = 1`: a weight-1 representation satisfying the
//! oracle assumptions (i)/(ii) of Proposition 6.1. And
//! `Pr(D ⊨ ∃x R(x)) = 0` iff no `R(k)` ever carries mass iff `L(N) = ∅`.

use crate::machine::TuringMachine;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{RelId, Relation, Schema};
use infpdb_core::value::Value;
use infpdb_math::pairing;
use infpdb_math::series::GeometricSeries;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use infpdb_ti::TiError;

/// The PDB `D_{M(N)}` represented by the machine `N`.
#[derive(Debug, Clone)]
pub struct RepresentedPdb {
    schema: Schema,
    machine: TuringMachine,
}

impl RepresentedPdb {
    /// Builds the representation of machine `N`.
    pub fn new(machine: TuringMachine) -> Self {
        let schema = Schema::from_relations([Relation::new("R", 1), Relation::new("S", 1)])
            .expect("static schema");
        Self { schema, machine }
    }

    /// The schema `{R, S}` (unary).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether index `k = ⟨n, t⟩` is an `R`-fact: `n ∈ L_{N,t}`.
    pub fn is_r_fact(&self, k: u64) -> bool {
        let (n, t) = pairing::unpair(k);
        let input = pairing::nat_to_string(n);
        self.machine.accepts_within(&input, t)
    }

    /// `p_M(f)`: the probability the representation assigns to an
    /// arbitrary fact (0 for "wrong shape" facts — the closed complement).
    pub fn prob_of_fact(&self, fact: &Fact) -> f64 {
        let Some(k) = fact.args().first().and_then(Value::as_int) else {
            return 0.0;
        };
        if !(1..=60).contains(&k) || fact.args().len() != 1 {
            // 2^{-k} underflows past 60 bits of budget; treat as 0 within
            // f64 precision (the true value is positive but < 1e-18)
            return 0.0;
        }
        let k = k as u64;
        let is_r = fact.rel() == RelId(0);
        let matches = if self.is_r_fact(k) { is_r } else { !is_r };
        if matches {
            0.5f64.powi(k as i32)
        } else {
            0.0
        }
    }

    /// The fact enumeration: index `i` carries fact `R(k)` or `S(k)` for
    /// `k = i + 1`, with probability `2^{−k}` — a geometric series with
    /// exact tails, so all Section 6 oracle machinery applies.
    pub fn supply(&self) -> FactSupply {
        let this = self.clone();
        FactSupply::from_fn(
            self.schema.clone(),
            move |i| {
                let k = i as u64 + 1;
                let rel = if this.is_r_fact(k) {
                    RelId(0)
                } else {
                    RelId(1)
                };
                Fact::new(rel, [Value::int(k as i64)])
            },
            GeometricSeries::new(0.5, 0.5).expect("static series"),
        )
    }

    /// The countable t.i. PDB (always exists: weight 1 converges).
    pub fn pdb(&self) -> Result<CountableTiPdb, TiError> {
        CountableTiPdb::new(self.supply())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_math::series::ProbSeries;

    #[test]
    fn weight_is_one() {
        let rep = RepresentedPdb::new(TuringMachine::rejects_all());
        let s = rep.supply();
        let (lo, hi) = s.total_bounds(60).unwrap();
        assert!(lo <= 1.0 && 1.0 <= hi);
    }

    #[test]
    fn empty_language_yields_only_s_facts() {
        let rep = RepresentedPdb::new(TuringMachine::rejects_all());
        let s = rep.supply();
        for i in 0..50 {
            assert_eq!(s.fact(i).rel(), RelId(1), "index {i} should be S");
        }
    }

    #[test]
    fn total_language_yields_r_facts_where_budget_suffices() {
        // accepts_all accepts instantly, so n ∈ L_{N,t} for every t ≥ 1
        let rep = RepresentedPdb::new(TuringMachine::accepts_all());
        let s = rep.supply();
        let r_count = (0..50).filter(|&i| s.fact(i).rel() == RelId(0)).count();
        assert!(r_count >= 45, "only {r_count} R-facts");
    }

    #[test]
    fn prob_of_fact_matches_supply() {
        let rep = RepresentedPdb::new(TuringMachine::accepts_strings_with_a_one());
        let s = rep.supply();
        for i in 0..30usize {
            let f = s.fact(i);
            assert!(
                (rep.prob_of_fact(&f) - s.prob(i)).abs() < 1e-15,
                "index {i}"
            );
            // and the complementary-shape fact gets 0
            let other_rel = if f.rel() == RelId(0) {
                RelId(1)
            } else {
                RelId(0)
            };
            let g = Fact::new(other_rel, f.args().to_vec());
            assert_eq!(rep.prob_of_fact(&g), 0.0);
        }
    }

    #[test]
    fn prob_of_fact_rejects_wrong_shapes() {
        let rep = RepresentedPdb::new(TuringMachine::rejects_all());
        assert_eq!(
            rep.prob_of_fact(&Fact::new(RelId(0), [Value::str("x")])),
            0.0
        );
        assert_eq!(rep.prob_of_fact(&Fact::new(RelId(0), [Value::int(0)])), 0.0);
        assert_eq!(
            rep.prob_of_fact(&Fact::new(RelId(0), [Value::int(-3)])),
            0.0
        );
    }

    #[test]
    fn pdb_constructs() {
        let rep = RepresentedPdb::new(TuringMachine::accepts_only_empty());
        let pdb = rep.pdb().unwrap();
        assert!((pdb.expected_size_bound() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_acceptance_mixes_r_and_s() {
        // accepts_only_empty: n = 1 codes ε (accepted, given ≥1 step);
        // other inputs rejected. R-facts exactly at k = ⟨1, t⟩ with t ≥ 1.
        let rep = RepresentedPdb::new(TuringMachine::accepts_only_empty());
        let s = rep.supply();
        let rels: Vec<RelId> = (0..60).map(|i| s.fact(i).rel()).collect();
        assert!(rels.contains(&RelId(0)));
        assert!(rels.contains(&RelId(1)));
        // k = ⟨1,1⟩ = 1 is the first index and ε ∈ L_{N,1}
        assert_eq!(infpdb_math::pairing::pair(1, 1), 1);
        assert_eq!(s.fact(0).rel(), RelId(0));
    }
}

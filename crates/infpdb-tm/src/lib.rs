#![warn(missing_docs)]
//! Turing-machine-represented PDBs — the computability substrate of
//! Proposition 6.2 (Grohe & Lindner, PODS 2019).
//!
//! The paper's inapproximability proof needs a notion of a Turing machine
//! `M` *representing* a tuple-independent PDB of weight `w`: `M` computes
//! `p_M : F[τ, Σ*] → ℚ` with `∑_f p_M(f) = w`. Given any machine `N`, the
//! constructed machine `M(N)` represents a weight-1 PDB over the schema
//! `{R, S}` (unary) such that `Pr(D ⊨ ∃x R(x)) = 0` **iff** `L(N) = ∅` —
//! so a multiplicative approximation algorithm would decide emptiness,
//! which is undecidable by Rice's theorem.
//!
//! * [`machine`] — a deterministic single-tape Turing machine simulator
//!   over the input alphabet `{0, 1}` with step-bounded runs (`L_{N,t}`).
//! * [`represent`] — the `M(N)` construction as a `FactSupply`: fact
//!   `k = ⟨n, t⟩` is `R(k)` if `N` accepts `n` within `t` steps and `S(k)`
//!   otherwise, with probability `2^{−k}`.
//! * [`reduction`] — the executable content of the proof: additive
//!   approximation works fine on represented PDBs (Proposition 6.1
//!   applies), but any multiplicative approximator would separate
//!   `P(Q) = 0` from `P(Q) > 0`, i.e. decide emptiness.

pub mod machine;
pub mod reduction;
pub mod represent;

pub use machine::{Direction, TuringMachine};
pub use represent::RepresentedPdb;

//! A deterministic single-tape Turing machine over `{0, 1}`.
//!
//! Minimal but real: states, a sparse two-way-infinite tape, a transition
//! table, an accepting state, and step-bounded execution — exactly the
//! `L_{N,t}` ("`N` accepts `n` in at most `t` steps") the Proposition 6.2
//! construction decides. `L_{N,t}` is decidable in polynomial time and
//! `L_N = ⋃_t L_{N,t}`.

use std::collections::HashMap;

/// Tape alphabet: input symbols `0`, `1` and the blank.
pub const BLANK: u8 = b'_';

/// Head movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Move left.
    Left,
    /// Move right.
    Right,
    /// Stay put.
    Stay,
}

/// A transition: `(state, read) → (state, write, move)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Next state.
    pub next: u32,
    /// Symbol written.
    pub write: u8,
    /// Head movement.
    pub dir: Direction,
}

/// A deterministic Turing machine. Missing transitions halt (reject unless
/// in the accepting state).
#[derive(Debug, Clone)]
pub struct TuringMachine {
    transitions: HashMap<(u32, u8), Transition>,
    start: u32,
    accept: u32,
}

impl TuringMachine {
    /// Creates a machine with the given start and accepting states.
    pub fn new(start: u32, accept: u32) -> Self {
        Self {
            transitions: HashMap::new(),
            start,
            accept,
        }
    }

    /// Adds a transition.
    pub fn with_transition(
        mut self,
        state: u32,
        read: u8,
        next: u32,
        write: u8,
        dir: Direction,
    ) -> Self {
        self.transitions
            .insert((state, read), Transition { next, write, dir });
        self
    }

    /// Runs on `input` (a binary string) for at most `max_steps` steps.
    /// Returns whether the machine is in the accepting state when it halts
    /// or the budget runs out — i.e. decides `input ∈ L_{N, max_steps}`.
    pub fn accepts_within(&self, input: &str, max_steps: u64) -> bool {
        let mut tape: HashMap<i64, u8> = input
            .bytes()
            .enumerate()
            .map(|(i, b)| (i as i64, b))
            .collect();
        let mut head: i64 = 0;
        let mut state = self.start;
        for _ in 0..max_steps {
            if state == self.accept {
                return true;
            }
            let read = tape.get(&head).copied().unwrap_or(BLANK);
            match self.transitions.get(&(state, read)) {
                None => break, // halt
                Some(t) => {
                    if t.write == BLANK {
                        tape.remove(&head);
                    } else {
                        tape.insert(head, t.write);
                    }
                    state = t.next;
                    match t.dir {
                        Direction::Left => head -= 1,
                        Direction::Right => head += 1,
                        Direction::Stay => {}
                    }
                }
            }
        }
        state == self.accept
    }

    /// The machine rejecting everything: `L(N) = ∅` (the Empty side of the
    /// reduction).
    pub fn rejects_all() -> Self {
        // start state 0, accept state 1, no transitions: halts immediately
        // in a non-accepting state
        Self::new(0, 1)
    }

    /// The machine accepting everything immediately.
    pub fn accepts_all() -> Self {
        // start = accept
        Self::new(0, 0)
    }

    /// A machine accepting exactly the strings containing a `1`: scans
    /// right until it sees `1` (accept) or a blank (halt–reject).
    pub fn accepts_strings_with_a_one() -> Self {
        Self::new(0, 1)
            .with_transition(0, b'0', 0, b'0', Direction::Right)
            .with_transition(0, b'1', 1, b'1', Direction::Stay)
    }

    /// A machine accepting exactly the empty string: accepts iff the first
    /// cell is blank.
    pub fn accepts_only_empty() -> Self {
        Self::new(0, 1).with_transition(0, BLANK, 1, BLANK, Direction::Stay)
    }

    /// A machine accepting strings with an **even number of `1`s** (parity):
    /// a genuine two-state DFA-style computation exercising state changes
    /// across the whole input.
    pub fn accepts_even_parity() -> Self {
        // state 0 = even so far, state 1 = odd so far, accept = 2
        Self::new(0, 2)
            .with_transition(0, b'0', 0, b'0', Direction::Right)
            .with_transition(0, b'1', 1, b'1', Direction::Right)
            .with_transition(1, b'0', 1, b'0', Direction::Right)
            .with_transition(1, b'1', 0, b'1', Direction::Right)
            .with_transition(0, BLANK, 2, BLANK, Direction::Stay)
        // state 1 on blank: halt in a non-accepting state (odd parity)
    }

    /// A busy-wait variant of [`TuringMachine::rejects_all`]: loops forever moving right,
    /// never accepting — distinguishes "rejects by halting" from "rejects
    /// by running out of budget".
    pub fn loops_forever() -> Self {
        Self::new(0, 1)
            .with_transition(0, b'0', 0, b'0', Direction::Right)
            .with_transition(0, b'1', 0, b'1', Direction::Right)
            .with_transition(0, BLANK, 0, BLANK, Direction::Right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_all_never_accepts() {
        let m = TuringMachine::rejects_all();
        for s in ["", "0", "1", "0110"] {
            assert!(!m.accepts_within(s, 1000));
        }
    }

    #[test]
    fn accepts_all_accepts_instantly() {
        let m = TuringMachine::accepts_all();
        for s in ["", "0", "1", "0110"] {
            assert!(m.accepts_within(s, 1));
        }
    }

    #[test]
    fn scanning_machine_finds_ones() {
        let m = TuringMachine::accepts_strings_with_a_one();
        assert!(m.accepts_within("1", 10));
        assert!(m.accepts_within("0001", 10));
        assert!(!m.accepts_within("0000", 10));
        assert!(!m.accepts_within("", 10));
        // needs enough steps to reach the 1
        assert!(!m.accepts_within("0001", 3));
        assert!(m.accepts_within("0001", 6));
    }

    #[test]
    fn empty_string_acceptor() {
        let m = TuringMachine::accepts_only_empty();
        assert!(m.accepts_within("", 5));
        assert!(!m.accepts_within("0", 5));
        assert!(!m.accepts_within("1", 5));
    }

    #[test]
    fn parity_machine_counts_ones() {
        let m = TuringMachine::accepts_even_parity();
        assert!(m.accepts_within("", 5));
        assert!(m.accepts_within("0", 5));
        assert!(m.accepts_within("11", 10));
        assert!(m.accepts_within("1010", 10));
        assert!(!m.accepts_within("1", 10));
        assert!(!m.accepts_within("111", 20));
        // needs enough budget to scan the whole input
        assert!(!m.accepts_within("0000", 3));
        assert!(m.accepts_within("0000", 6));
    }

    #[test]
    fn looper_never_halts_or_accepts() {
        let m = TuringMachine::loops_forever();
        assert!(!m.accepts_within("01", 10_000));
    }

    #[test]
    fn step_budget_is_respected_monotonically() {
        // L_{N,t} ⊆ L_{N,t'} for t ≤ t'
        let m = TuringMachine::accepts_strings_with_a_one();
        for t in 0..12u64 {
            if m.accepts_within("00001", t) {
                assert!(m.accepts_within("00001", t + 1));
            }
        }
    }

    #[test]
    fn tape_writes_take_effect() {
        // flip first symbol 0→1, move back, accept on 1
        let m = TuringMachine::new(0, 9)
            .with_transition(0, b'0', 1, b'1', Direction::Stay)
            .with_transition(1, b'1', 9, b'1', Direction::Stay);
        assert!(m.accepts_within("0", 5));
        assert!(!m.accepts_within("1", 5)); // no transition on (0, '1')
    }

    #[test]
    fn blank_writes_erase_cells() {
        // erase the first cell then accept on blank
        let m = TuringMachine::new(0, 9)
            .with_transition(0, b'1', 1, BLANK, Direction::Stay)
            .with_transition(1, BLANK, 9, BLANK, Direction::Stay);
        assert!(m.accepts_within("1", 5));
    }
}

//! Engine-level flat-kernel equivalence smoke: 256 seeded cases pinning
//! the all-single-fact fast path (`var_product`, now a flat slice kernel)
//! bit-for-bit against the fused log-space reference, through both the
//! tree and DAG Shannon engines. Run by CI's kernel-equivalence step.

use infpdb_core::fact::FactId;
use infpdb_core::space::rand_core::SplitMix64;
use infpdb_finite::shannon::{probability, probability_dag};
use infpdb_finite::{Lineage, LineageArena};
use infpdb_math::KahanSum;

fn unit(rng: &mut SplitMix64) -> f64 {
    use infpdb_core::space::rand_core::RngCore;
    ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

fn fused_and(ps: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &p in ps {
        acc.add(p.ln());
    }
    acc.value().exp()
}

fn fused_or(ps: &[f64]) -> f64 {
    let mut acc = KahanSum::new();
    for &p in ps {
        acc.add((-p).ln_1p());
    }
    1.0 - acc.value().exp()
}

#[test]
fn var_product_fast_path_matches_fused_reference_on_256_seeded_cases() {
    for case in 0u64..256 {
        let mut rng = SplitMix64::new(case);
        let n = 2 + (case % 39) as usize;
        let ps: Vec<f64> = (0..n).map(|_| unit(&mut rng)).collect();
        let pr = |f: FactId| ps[f.0 as usize];
        let vars: Vec<Lineage> = (0..n as u32).map(|i| Lineage::Var(FactId(i))).collect();

        let or = Lineage::or(vars.clone());
        let and = Lineage::and(vars);
        assert_eq!(
            probability(&or, &pr).to_bits(),
            fused_or(&ps).to_bits(),
            "case {case}: tree Or, n={n}"
        );
        assert_eq!(
            probability(&and, &pr).to_bits(),
            fused_and(&ps).to_bits(),
            "case {case}: tree And, n={n}"
        );

        let mut arena = LineageArena::new();
        let or_id = arena.from_lineage(&or);
        let and_id = arena.from_lineage(&and);
        assert_eq!(
            probability_dag(&mut arena, or_id, &pr).to_bits(),
            fused_or(&ps).to_bits(),
            "case {case}: DAG Or, n={n}"
        );
        assert_eq!(
            probability_dag(&mut arena, and_id, &pr).to_bits(),
            fused_and(&ps).to_bits(),
            "case {case}: DAG And, n={n}"
        );
    }
}

//! Differential tests: the hash-consed arena engine against the boxed
//! tree engine.
//!
//! The arena is the production representation; the tree is the retained
//! reference implementation. These properties pin the contract the
//! optimisation must preserve: *bit-for-bit* identical `f64`
//! probabilities (not approximate agreement — both engines walk the
//! same canonical structure in the same order, so every intermediate
//! rounding step matches), identical Shannon work counters, and
//! identical canonicalization (flatten / sort / dedup / complementary
//! collapse) at interning time.

use infpdb_core::fact::Fact;
use infpdb_core::fact::FactId;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_core::value::Value;
use infpdb_finite::arena::LineageArena;
use infpdb_finite::lineage::{lineage_of, lineage_of_arena};
use infpdb_finite::shannon::{probability_dag_with_stats, probability_with_stats};
use infpdb_finite::{Lineage, TiTable};
use infpdb_logic::parse;
use proptest::prelude::*;

const NVARS: u64 = 6;

/// A random canonical lineage over `NVARS` fact variables.
fn random_lineage(rng: &mut SplitMix64, depth: usize) -> Lineage {
    let choice = rng.next_u64() % if depth == 0 { 2 } else { 6 };
    match choice {
        0 => Lineage::Var(FactId((rng.next_u64() % NVARS) as u32)),
        1 => Lineage::Var(FactId((rng.next_u64() % NVARS) as u32)).negate(),
        2 | 3 => {
            let width = 2 + (rng.next_u64() % 3) as usize;
            let children: Vec<Lineage> =
                (0..width).map(|_| random_lineage(rng, depth - 1)).collect();
            if choice == 2 {
                Lineage::and(children)
            } else {
                Lineage::or(children)
            }
        }
        _ => random_lineage(rng, depth - 1).negate(),
    }
}

fn random_probs(rng: &mut SplitMix64) -> Vec<f64> {
    (0..NVARS)
        .map(|_| (rng.next_u64() % 1001) as f64 / 1000.0)
        .collect()
}

/// A random t.i. table over `{R/1, S/2}` with `facts` facts.
fn random_table(rng: &mut SplitMix64, facts: usize) -> TiTable {
    let schema =
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).expect("static");
    let r = schema.rel_id("R").expect("declared");
    let s = schema.rel_id("S").expect("declared");
    let mut t = TiTable::new(schema);
    let mut added = 0;
    let mut counter = 0i64;
    while added < facts {
        counter += 1;
        let dom = |rng: &mut SplitMix64| (rng.next_u64() % 5) as i64;
        let fact = if rng.next_u64().is_multiple_of(2) {
            Fact::new(r, [Value::int(dom(rng))])
        } else {
            Fact::new(s, [Value::int(dom(rng)), Value::int(counter % 4)])
        };
        let p = (rng.next_u64() % 999 + 1) as f64 / 1000.0;
        if t.add_fact(fact, p).is_ok() {
            added += 1;
        }
    }
    t
}

/// The Boolean query pool the grounding property samples from — unsafe
/// (self-join) shapes included, so evaluation goes through Shannon
/// expansion rather than collapsing trivially.
const QUERIES: [&str; 6] = [
    "exists x. R(x)",
    "exists x, y. R(x) /\\ R(y) /\\ x != y",
    "exists x. R(x) /\\ (exists y. S(x, y))",
    "exists x. exists y. S(x, y) /\\ R(y)",
    "forall x. R(x) -> (exists y. S(x, y))",
    "(exists x. R(x)) /\\ !(exists y. S(y, y))",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// ≥500 random formula/probability pairs: the DAG engine's answer
    /// equals the tree engine's to the last bit, and it does exactly
    /// the same number of expansions and decompositions.
    #[test]
    fn dag_probability_is_bit_for_bit_equal_to_tree(seed in 0u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        let depth = 2 + (rng.next_u64() % 3) as usize;
        let l = random_lineage(&mut rng, depth);
        let ps = random_probs(&mut rng);
        let probs = |id: FactId| ps[id.0 as usize];

        let (tree_p, tree_stats) = probability_with_stats(&l, &probs);
        let mut arena = LineageArena::new();
        let root = arena.from_lineage(&l);
        let (dag_p, dag_stats) = probability_dag_with_stats(&mut arena, root, &probs);

        prop_assert!(tree_p.to_bits() == dag_p.to_bits(),
            "tree {} != dag {} on {:?}", tree_p, dag_p, l);
        prop_assert_eq!(tree_stats.expansions, dag_stats.expansions);
        prop_assert_eq!(tree_stats.decompositions, dag_stats.decompositions);
    }

    /// Interning canonicalizes exactly like the tree smart
    /// constructors: converting a canonical tree into the arena and
    /// back is the identity.
    #[test]
    fn interning_round_trips_canonical_trees(seed in 0u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        let l = random_lineage(&mut rng, 3);
        let mut arena = LineageArena::new();
        let root = arena.from_lineage(&l);
        prop_assert_eq!(arena.to_lineage(root), l);
    }

    /// Grounding through the arena agrees with tree grounding on
    /// random tables — same canonical lineage, bit-for-bit the same
    /// probability.
    #[test]
    fn arena_grounding_matches_tree_on_random_tables(
        seed in 0u64..u64::MAX,
        facts in 3usize..10,
        qi in 0usize..QUERIES.len(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let table = random_table(&mut rng, facts);
        let query = parse(QUERIES[qi], table.schema()).expect("static query");

        let tree = lineage_of(&query, &table).expect("grounds");
        let mut arena = LineageArena::new();
        let root = lineage_of_arena(&query, &table, &mut arena).expect("grounds");
        prop_assert_eq!(&arena.to_lineage(root), &tree);

        let probs = |id: FactId| table.prob(id);
        let (tree_p, _) = probability_with_stats(&tree, &probs);
        let (dag_p, _) = probability_dag_with_stats(&mut arena, root, &probs);
        prop_assert!(tree_p.to_bits() == dag_p.to_bits(),
            "tree {} != dag {} for {:?}", tree_p, dag_p, QUERIES[qi]);
    }
}

#[test]
fn interning_collapses_complementary_pairs() {
    let mut arena = LineageArena::new();
    let x = arena.var(FactId(0));
    let nx = arena.negate(x);
    let y = arena.var(FactId(1));
    // x ∧ ¬x → ⊥ (also with an unrelated sibling)
    let contradiction = arena.and([x, nx]);
    assert_eq!(arena.to_lineage(contradiction), Lineage::Bot);
    let with_sibling = arena.and([y, x, nx]);
    assert_eq!(arena.to_lineage(with_sibling), Lineage::Bot);
    // x ∨ ¬x → ⊤
    let tautology = arena.or([nx, x]);
    assert_eq!(arena.to_lineage(tautology), Lineage::Top);
    // the tree constructors agree
    let tx = Lineage::Var(FactId(0));
    assert_eq!(
        Lineage::and([tx.clone(), tx.clone().negate()]),
        Lineage::Bot
    );
    assert_eq!(Lineage::or([tx.clone(), tx.negate()]), Lineage::Top);
}

#[test]
fn interning_flattens_sorts_and_dedups_like_the_tree() {
    // a messy combination: nested same-op children, duplicates,
    // neutral and absorbing constants, arbitrary order
    let (a, b, c) = (
        Lineage::Var(FactId(2)),
        Lineage::Var(FactId(0)),
        Lineage::Var(FactId(1)),
    );
    let messy_and = |x: Lineage, y: Lineage, z: Lineage| {
        Lineage::and([Lineage::and([y.clone(), x.clone()]), Lineage::Top, z, x, y])
    };
    let tree = messy_and(a.clone(), b.clone(), c.clone());

    let mut arena = LineageArena::new();
    let (ia, ib, ic) = (
        arena.var(FactId(2)),
        arena.var(FactId(0)),
        arena.var(FactId(1)),
    );
    let inner = arena.and([ib, ia]);
    let top = arena.from_lineage(&Lineage::Top);
    let dag = arena.and([inner, top, ic, ia, ib]);

    assert_eq!(arena.to_lineage(dag), tree);
    // and the canonical form is what the tree constructors document:
    // flattened, sorted, deduplicated
    assert_eq!(
        tree,
        Lineage::And(vec![
            Lineage::Var(FactId(0)),
            Lineage::Var(FactId(1)),
            Lineage::Var(FactId(2)),
        ])
    );

    // same-shape disjunction, with Bot as the neutral element
    let tree_or = Lineage::or([
        Lineage::or([a.clone(), b.clone()]),
        Lineage::Bot,
        b.clone(),
        c.clone(),
    ]);
    let inner_or = arena.or([ia, ib]);
    let bot = arena.from_lineage(&Lineage::Bot);
    let dag_or = arena.or([inner_or, bot, ib, ic]);
    assert_eq!(arena.to_lineage(dag_or), tree_or);
}

#[test]
fn structurally_equal_sublineages_intern_to_the_same_id() {
    let mut arena = LineageArena::new();
    let x = arena.var(FactId(0));
    let y = arena.var(FactId(1));
    let first = arena.and([x, y]);
    let second = arena.and([y, x]); // different order, same canonical shape
    assert_eq!(first, second);
    assert!(arena.stats().intern_hits > 0);
}

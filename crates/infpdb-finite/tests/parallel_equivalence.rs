//! Property tests: the fork-join parallel evaluator is **bit-for-bit**
//! the sequential engine.
//!
//! [`probability_dag_parallel`] promises that for every thread count the
//! `f64` bit pattern, the Shannon work counters, and the merged arena
//! statistics are identical to `probability_dag_with_stats`. These tests
//! drive that contract over seeded random formulas shaped to exercise
//! every path: multi-component roots that actually fork, single
//! components and all-Var roots that fall back, and `Not`-chain peeling.

use infpdb_core::fact::FactId;
use infpdb_core::space::rand_core::{RngCore, SplitMix64};
use infpdb_finite::arena::LineageArena;
use infpdb_finite::shannon::{
    probability_dag_parallel, probability_dag_with_stats, ParallelPolicy,
};
use infpdb_finite::Lineage;

/// Vars of component `c` live in `[c·BLOCK, (c+1)·BLOCK)`: components
/// are variable-disjoint by construction, so the root decomposes into
/// exactly the generated blocks.
const BLOCK: u32 = 10;

/// A random sub-formula over component `c`'s var block, deep enough to
/// share variables (forcing real Shannon expansions inside the
/// component).
fn component(rng: &mut SplitMix64, c: u32, depth: usize) -> Lineage {
    let var = |rng: &mut SplitMix64| FactId(c * BLOCK + (rng.next_u64() % u64::from(BLOCK)) as u32);
    let choice = rng.next_u64() % if depth == 0 { 2 } else { 6 };
    match choice {
        0 => Lineage::Var(var(rng)),
        1 => Lineage::Var(var(rng)).negate(),
        2 | 3 => {
            let width = 2 + (rng.next_u64() % 3) as usize;
            let children: Vec<Lineage> = (0..width).map(|_| component(rng, c, depth - 1)).collect();
            if choice == 2 {
                Lineage::and(children)
            } else {
                Lineage::or(children)
            }
        }
        _ => component(rng, c, depth - 1).negate(),
    }
}

/// A root formula of `1..=5` var-disjoint components under a random
/// And/Or, wrapped in `0..=2` negations (exercising the peel path).
fn random_case(rng: &mut SplitMix64) -> Lineage {
    let k = 1 + (rng.next_u64() % 5) as u32;
    let comps: Vec<Lineage> = (0..k).map(|c| component(rng, c, 2)).collect();
    let mut root = if comps.len() == 1 {
        comps.into_iter().next().expect("k >= 1")
    } else if rng.next_u64().is_multiple_of(2) {
        Lineage::and(comps)
    } else {
        Lineage::or(comps)
    };
    for _ in 0..(rng.next_u64() % 3) {
        root = root.negate();
    }
    root
}

fn prob_of(id: FactId) -> f64 {
    // a fixed, well-spread map FactId → (0.05, 0.95)
    let h = (u64::from(id.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    0.05 + 0.9 * (h >> 11) as f64 / (1u64 << 53) as f64
}

#[test]
fn parallel_evaluation_is_bit_for_bit_sequential() {
    let probs = prob_of;
    for seed in [1u64, 20_190_625, 271_828] {
        let mut rng = SplitMix64::new(seed);
        let mut forked = 0usize;
        let mut fell_back = 0usize;
        for case in 0..256 {
            let l = random_case(&mut rng);

            let mut seq_arena = LineageArena::new();
            let seq_root = seq_arena.from_lineage(&l);
            let (p_seq, stats_seq) = probability_dag_with_stats(&mut seq_arena, seq_root, &probs);
            let arena_seq = seq_arena.stats();

            // threads = 1 goes through the same public entry point and
            // must take the plain sequential path
            let mut one_arena = LineageArena::new();
            let one_root = one_arena.from_lineage(&l);
            let (p1, stats1, arena1, report1) = probability_dag_parallel(
                &mut one_arena,
                one_root,
                &probs,
                ParallelPolicy {
                    threads: 1,
                    min_task_vars: 1,
                },
            );
            assert_eq!(p1.to_bits(), p_seq.to_bits(), "seed {seed} case {case}");
            assert_eq!(stats1, stats_seq, "seed {seed} case {case}");
            assert_eq!(arena1, arena_seq, "seed {seed} case {case}");
            assert_eq!(report1.tasks, 0);

            for threads in [2usize, 4] {
                let mut arena = LineageArena::new();
                let root = arena.from_lineage(&l);
                let (p, stats, arena_stats, report) = probability_dag_parallel(
                    &mut arena,
                    root,
                    &probs,
                    ParallelPolicy {
                        threads,
                        min_task_vars: 1,
                    },
                );
                assert_eq!(
                    p.to_bits(),
                    p_seq.to_bits(),
                    "seed {seed} case {case} threads {threads}: {p} vs {p_seq}"
                );
                assert_eq!(
                    stats, stats_seq,
                    "seed {seed} case {case} threads {threads}: trace counters diverged"
                );
                assert_eq!(
                    arena_stats, arena_seq,
                    "seed {seed} case {case} threads {threads}: arena stats diverged"
                );
                if threads == 2 {
                    if report.fallback_seq {
                        fell_back += 1;
                    } else if report.tasks >= 2 {
                        forked += 1;
                    }
                }
            }
        }
        // the generator must exercise both paths heavily, or the
        // equivalence above proves nothing
        assert!(forked >= 64, "seed {seed}: only {forked}/256 cases forked");
        assert!(
            fell_back >= 16,
            "seed {seed}: only {fell_back}/256 cases fell back"
        );
    }
}

/// The fork threshold gates task dispatch: with a huge `min_task_vars`
/// nothing is heavy enough and the evaluator reports a sequential
/// fallback, still bit-for-bit.
#[test]
fn below_threshold_subproblems_stay_sequential() {
    let probs = prob_of;
    let mut rng = SplitMix64::new(7);
    let mut checked = 0usize;
    for _ in 0..64 {
        let l = random_case(&mut rng);
        let mut seq_arena = LineageArena::new();
        let seq_root = seq_arena.from_lineage(&l);
        let (p_seq, _) = probability_dag_with_stats(&mut seq_arena, seq_root, &probs);

        let mut arena = LineageArena::new();
        let root = arena.from_lineage(&l);
        let (p, _, _, report) = probability_dag_parallel(
            &mut arena,
            root,
            &probs,
            ParallelPolicy {
                threads: 4,
                min_task_vars: usize::MAX,
            },
        );
        assert_eq!(p.to_bits(), p_seq.to_bits());
        assert_eq!(report.tasks, 0);
        if report.fallback_seq {
            checked += 1;
        }
    }
    assert!(checked >= 32, "only {checked}/64 cases reported fallback");
}

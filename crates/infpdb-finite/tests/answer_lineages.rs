//! Tests for per-answer lineage (provenance-aware answer marginals).

use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::value::Value;
use infpdb_finite::lineage::{answer_lineages, Lineage};
use infpdb_finite::{shannon, TiTable};
use infpdb_logic::parse;

fn table() -> TiTable {
    let s = Schema::from_relations([Relation::new("R", 1), Relation::new("S", 2)]).unwrap();
    let r = s.rel_id("R").unwrap();
    let s2 = s.rel_id("S").unwrap();
    TiTable::from_facts(
        s,
        [
            (Fact::new(r, [Value::int(1)]), 0.5),
            (Fact::new(r, [Value::int(2)]), 0.4),
            (Fact::new(s2, [Value::int(1), Value::int(2)]), 0.3),
            (Fact::new(s2, [Value::int(2), Value::int(2)]), 0.9),
        ],
    )
    .unwrap()
}

#[test]
fn per_answer_lineage_is_the_ground_sentence_lineage() {
    let t = table();
    let q = parse("R(x)", t.schema()).unwrap();
    let ls = answer_lineages(&q, &t).unwrap();
    assert_eq!(ls.len(), 2);
    for (tuple, l) in &ls {
        match l {
            Lineage::Var(id) => {
                let fact = t.interner().resolve(*id);
                assert_eq!(&fact.args()[0], &tuple[0]);
            }
            other => panic!("expected a bare variable, got {other:?}"),
        }
    }
}

#[test]
fn answer_probabilities_match_engine_marginals() {
    let t = table();
    let q = parse("exists y. S(x, y) /\\ R(x)", t.schema()).unwrap();
    let ls = answer_lineages(&q, &t).unwrap();
    let marginals =
        infpdb_finite::engine::answer_marginals(&q, &t, infpdb_finite::engine::Engine::Auto)
            .unwrap();
    assert_eq!(ls.len(), marginals.len());
    for ((tl, l), (tm, pm)) in ls.iter().zip(marginals.iter()) {
        assert_eq!(tl, tm);
        let p = shannon::probability(l, &|id| t.prob(id));
        assert!((p - pm).abs() < 1e-12);
    }
}

#[test]
fn boolean_query_degenerates() {
    let t = table();
    let q = parse("exists x. R(x)", t.schema()).unwrap();
    let ls = answer_lineages(&q, &t).unwrap();
    assert_eq!(ls.len(), 1);
    assert!(ls[0].0.is_empty());
    let never = parse("false", t.schema()).unwrap();
    assert!(answer_lineages(&never, &t).unwrap().is_empty());
}

#[test]
fn shared_lineage_structure_across_answers() {
    // answers of S(x, 2) share nothing; answers of
    // "R(x) /\ exists y. S(y, 2)" share the ∃-disjunct — visible in the
    // lineage as a common subformula
    let t = table();
    let q = parse("R(x) /\\ exists y. S(y, 2)", t.schema()).unwrap();
    let ls = answer_lineages(&q, &t).unwrap();
    assert_eq!(ls.len(), 2);
    let shared: Vec<Lineage> = ls
        .iter()
        .map(|(_, l)| match l {
            Lineage::And(parts) => parts
                .iter()
                .find(|p| matches!(p, Lineage::Or(_)))
                .expect("∃-disjunct present")
                .clone(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(shared[0], shared[1]);
}

//! Unified query-evaluation entry point for finite t.i. tables.
//!
//! [`prob_boolean`] dispatches between the engines of this crate:
//!
//! * [`Engine::Auto`] — safe plan if the query is a hierarchical
//!   self-join-free CQ (polynomial time), otherwise lineage + Shannon
//!   (exact but worst-case exponential).
//! * explicit engine selection for benchmarking and cross-validation.
//!
//! [`answer_marginals`] lifts Boolean evaluation to free-variable queries
//! exactly the way Section 6 of the paper does: ground the free variables
//! with every tuple over the relevant domain and evaluate each resulting
//! sentence (the marginal-probability query semantics of Section 3.1).

use crate::arena::{ArenaStats, LineageArena};
use crate::lineage::lineage_of_arena;
use crate::{lifted, monte_carlo, shannon, worlds, FiniteError, TiTable};
use infpdb_core::space::rand_core::RngCore;
use infpdb_core::value::Value;
use infpdb_logic::ast::Formula;
use infpdb_logic::vars::{free_vars, ground};

/// Engine selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Safe plan when possible, else lineage + Shannon. At the
    /// infinite-query layer (`infpdb-query` and above), `Auto` instead
    /// routes through the cost-based planner (`infpdb_query::planner`),
    /// which may additionally choose sampling strategies per component.
    Auto,
    /// Extensional safe-plan evaluation (errors on unsafe queries).
    Lifted,
    /// Intensional lineage + Shannon expansion.
    Lineage,
    /// Brute-force world enumeration (reference; exponential).
    Brute,
}

impl Engine {
    /// Stable `u8` discriminant — the single source of truth for cache
    /// keys, circuit-breaker indexing, and wire encodings.
    pub fn tag(self) -> u8 {
        match self {
            Engine::Auto => 0,
            Engine::Lifted => 1,
            Engine::Lineage => 2,
            Engine::Brute => 3,
        }
    }

    /// Number of distinct engine variants (for per-engine arrays).
    pub const COUNT: usize = 4;
}

/// What an evaluation did, for observability: Shannon compilation
/// statistics and arena interning statistics when the intensional
/// (lineage) path ran, `None` when a non-lineage engine answered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalTrace {
    /// Shannon expansion/memo/decomposition counters.
    pub shannon: Option<shannon::Stats>,
    /// Hash-consing statistics of the evaluation's arena.
    pub arena: Option<ArenaStats>,
    /// What the intra-query parallel evaluator did; `None` when
    /// evaluation ran with `parallelism ≤ 1` (or a non-lineage engine).
    pub parallel: Option<shannon::ParReport>,
    /// Per-strategy component counts and cost estimate of the plan the
    /// cost-based planner executed; `None` on the direct engine paths.
    pub plan: Option<crate::plan::PlanSummary>,
}

/// `P(Q)` for a Boolean query under the chosen engine.
pub fn prob_boolean(query: &Formula, table: &TiTable, engine: Engine) -> Result<f64, FiniteError> {
    prob_boolean_traced(query, table, engine).map(|(p, _)| p)
}

/// Like [`prob_boolean`], but also reports an [`EvalTrace`] so callers
/// (the serve layer's metrics, the bench harness) can observe memo hit
/// rates and arena sizes without re-running the query.
pub fn prob_boolean_traced(
    query: &Formula,
    table: &TiTable,
    engine: Engine,
) -> Result<(f64, EvalTrace), FiniteError> {
    prob_boolean_traced_par(query, table, engine, 1)
}

/// Like [`prob_boolean_traced`], with up to `parallelism` worker threads
/// for the intensional path's independent components
/// ([`shannon::probability_dag_parallel`]). The f64 result and the trace
/// counters are bit-for-bit identical to `parallelism = 1`; the only
/// observable difference is `EvalTrace::parallel`, filled whenever
/// `parallelism ≥ 2` reaches the lineage engine.
pub fn prob_boolean_traced_par(
    query: &Formula,
    table: &TiTable,
    engine: Engine,
    parallelism: usize,
) -> Result<(f64, EvalTrace), FiniteError> {
    prob_boolean_traced_exec(query, table, engine, parallelism, None)
        .map(|r| r.expect("default executor runs every task"))
}

/// Like [`prob_boolean_traced_par`], with a caller-supplied
/// [`shannon::TaskExecutor`] for the intensional path's component tasks.
///
/// `Ok(None)` means the executor *skipped* at least one task — the serve
/// layer's work-stealing scheduler does this when the owning request is
/// cancelled mid-flight; the query was not fully evaluated and no answer
/// exists. With `exec = None` the default fork-join executor runs and
/// the result is always `Some`, bit-for-bit [`prob_boolean_traced_par`].
pub fn prob_boolean_traced_exec(
    query: &Formula,
    table: &TiTable,
    engine: Engine,
    parallelism: usize,
    exec: Option<&dyn shannon::TaskExecutor>,
) -> Result<Option<(f64, EvalTrace)>, FiniteError> {
    match engine {
        Engine::Auto => match lifted::prob_hierarchical(query, table) {
            Ok(p) => Ok(Some((p, EvalTrace::default()))),
            Err(FiniteError::Logic(_)) => prob_by_lineage(query, table, parallelism, exec),
            Err(e) => Err(e),
        },
        Engine::Lifted => Ok(Some((
            lifted::prob_hierarchical(query, table)?,
            EvalTrace::default(),
        ))),
        Engine::Lineage => prob_by_lineage(query, table, parallelism, exec),
        Engine::Brute => Ok(Some((
            worlds::prob_boolean_brute(query, table)?,
            EvalTrace::default(),
        ))),
    }
}

/// The intensional path: ground straight into a hash-consed arena and run
/// the DAG Shannon engine over it. One arena serves the whole evaluation,
/// so the grounding's shared substructure is discovered before inference
/// starts and memo probes are id-indexed.
fn prob_by_lineage(
    query: &Formula,
    table: &TiTable,
    parallelism: usize,
    exec: Option<&dyn shannon::TaskExecutor>,
) -> Result<Option<(f64, EvalTrace)>, FiniteError> {
    let mut arena = LineageArena::new();
    let root = lineage_of_arena(query, table, &mut arena)?;
    if parallelism >= 2 {
        let policy = shannon::ParallelPolicy::with_threads(parallelism);
        let default_exec = shannon::ScopedExecutor {
            threads: policy.threads,
        };
        let exec = exec.unwrap_or(&default_exec);
        let Some((p, stats, arena_stats, report)) = shannon::probability_dag_parallel_exec(
            &mut arena,
            root,
            &|id| table.prob(id),
            policy,
            exec,
        ) else {
            return Ok(None);
        };
        return Ok(Some((
            p,
            EvalTrace {
                shannon: Some(stats),
                arena: Some(arena_stats),
                parallel: Some(report),
                plan: None,
            },
        )));
    }
    let (p, stats) = shannon::probability_dag_with_stats(&mut arena, root, &|id| table.prob(id));
    Ok(Some((
        p,
        EvalTrace {
            shannon: Some(stats),
            arena: Some(arena.stats()),
            parallel: None,
            plan: None,
        },
    )))
}

/// Monte-Carlo estimate (separate from [`prob_boolean`] because it needs an
/// RNG and returns an error bound).
pub fn prob_boolean_mc<R: RngCore>(
    query: &Formula,
    table: &TiTable,
    samples: usize,
    rng: &mut R,
) -> Result<monte_carlo::McEstimate, FiniteError> {
    monte_carlo::estimate(query, table, samples, rng)
}

/// Marginal probabilities `Pr(~a ∈ Q(D))` for every answer tuple of a query
/// with free variables: free variables are grounded with every tuple over
/// `adom(table) ∪ adom(Q)` (complete by Fact 2.1), and each ground sentence
/// is evaluated with the chosen engine. Tuples with probability 0 are
/// omitted.
pub fn answer_marginals(
    query: &Formula,
    table: &TiTable,
    engine: Engine,
) -> Result<Vec<(Vec<Value>, f64)>, FiniteError> {
    let fv: Vec<String> = free_vars(query).into_iter().collect();
    if fv.is_empty() {
        let p = prob_boolean(query, table, engine)?;
        return Ok(if p > 0.0 { vec![(vec![], p)] } else { vec![] });
    }
    let mut domain: Vec<Value> = table.active_domain().into_iter().collect();
    for c in infpdb_logic::vars::constants(query) {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let mut out = Vec::new();
    let mut assignment: Vec<(String, Value)> = Vec::with_capacity(fv.len());
    enumerate_tuples(
        query,
        table,
        engine,
        &fv,
        &domain,
        0,
        &mut assignment,
        &mut out,
    )?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn enumerate_tuples(
    query: &Formula,
    table: &TiTable,
    engine: Engine,
    fv: &[String],
    domain: &[Value],
    i: usize,
    assignment: &mut Vec<(String, Value)>,
    out: &mut Vec<(Vec<Value>, f64)>,
) -> Result<(), FiniteError> {
    if i == fv.len() {
        let sentence = ground(query, assignment);
        let p = prob_boolean(&sentence, table, engine)?;
        if p > 0.0 {
            out.push((assignment.iter().map(|(_, v)| v.clone()).collect(), p));
        }
        return Ok(());
    }
    for v in domain {
        assignment.push((fv[i].clone(), v.clone()));
        enumerate_tuples(query, table, engine, fv, domain, i + 1, assignment, out)?;
        assignment.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{Relation, Schema};
    use infpdb_logic::parse;

    fn table() -> TiTable {
        let s = Schema::from_relations([
            Relation::new("R", 1),
            Relation::new("S", 2),
            Relation::new("T", 1),
        ])
        .unwrap();
        let r = s.rel_id("R").unwrap();
        let s2 = s.rel_id("S").unwrap();
        let t2 = s.rel_id("T").unwrap();
        TiTable::from_facts(
            s,
            [
                (Fact::new(r, [Value::int(1)]), 0.5),
                (Fact::new(r, [Value::int(2)]), 0.4),
                (Fact::new(s2, [Value::int(1), Value::int(2)]), 0.3),
                (Fact::new(s2, [Value::int(2), Value::int(2)]), 0.9),
                (Fact::new(t2, [Value::int(2)]), 0.7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_engines_agree_on_safe_queries() {
        let t = table();
        for qs in [
            "exists x, y. R(x) /\\ S(x, y)",
            "exists x. R(x)",
            "R(1) /\\ T(2)",
        ] {
            let q = parse(qs, t.schema()).unwrap();
            let auto = prob_boolean(&q, &t, Engine::Auto).unwrap();
            let lifted = prob_boolean(&q, &t, Engine::Lifted).unwrap();
            let lineage = prob_boolean(&q, &t, Engine::Lineage).unwrap();
            let brute = prob_boolean(&q, &t, Engine::Brute).unwrap();
            for (name, p) in [("lifted", lifted), ("lineage", lineage), ("brute", brute)] {
                assert!((auto - p).abs() < 1e-9, "{qs}: auto {auto} vs {name} {p}");
            }
        }
    }

    #[test]
    fn auto_falls_back_to_lineage_on_unsafe_queries() {
        let t = table();
        // H₀ — unsafe for lifted, fine for lineage
        let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
        assert!(prob_boolean(&q, &t, Engine::Lifted).is_err());
        let auto = prob_boolean(&q, &t, Engine::Auto).unwrap();
        let brute = prob_boolean(&q, &t, Engine::Brute).unwrap();
        assert!((auto - brute).abs() < 1e-9);
        // also a non-CQ query
        let q2 = parse("forall x. (R(x) -> exists y. S(x, y))", t.schema()).unwrap();
        let auto2 = prob_boolean(&q2, &t, Engine::Auto).unwrap();
        let brute2 = prob_boolean(&q2, &t, Engine::Brute).unwrap();
        assert!((auto2 - brute2).abs() < 1e-9);
    }

    #[test]
    fn traced_lineage_evaluation_reports_stats() {
        let t = table();
        let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
        let (p, trace) = prob_boolean_traced(&q, &t, Engine::Lineage).unwrap();
        let brute = prob_boolean(&q, &t, Engine::Brute).unwrap();
        assert!((p - brute).abs() < 1e-9);
        let arena = trace.arena.expect("lineage path fills arena stats");
        assert!(arena.nodes > 2, "grounding interned real nodes");
        assert!(trace.shannon.is_some());
        // the lifted path reports no intensional trace
        let q2 = parse("exists x. R(x)", t.schema()).unwrap();
        let (_, trace2) = prob_boolean_traced(&q2, &t, Engine::Auto).unwrap();
        assert_eq!(trace2, EvalTrace::default());
    }

    #[test]
    fn monte_carlo_wrapper() {
        use infpdb_core::space::rand_core::SplitMix64;
        let t = table();
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        let truth = prob_boolean(&q, &t, Engine::Brute).unwrap();
        let mut rng = SplitMix64::new(3);
        let e = prob_boolean_mc(&q, &t, 20_000, &mut rng).unwrap();
        assert!((e.estimate - truth).abs() < 0.02);
    }

    #[test]
    fn answer_marginals_match_world_semantics() {
        let t = table();
        let q = parse("exists y. S(x, y)", t.schema()).unwrap();
        let fast = answer_marginals(&q, &t, Engine::Auto).unwrap();
        let slow = t.worlds().unwrap().answer_marginals(&q).unwrap();
        assert_eq!(fast.len(), slow.len());
        for ((ta, pa), (tb, pb)) in fast.iter().zip(slow.iter()) {
            assert_eq!(ta, tb);
            assert!((pa - pb).abs() < 1e-9);
        }
    }

    #[test]
    fn answer_marginals_boolean_degenerate() {
        let t = table();
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        let m = answer_marginals(&q, &t, Engine::Auto).unwrap();
        assert_eq!(m.len(), 1);
        assert!(m[0].0.is_empty());
        let never = parse("false", t.schema()).unwrap();
        assert!(answer_marginals(&never, &t, Engine::Auto)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn answer_marginals_two_free_variables() {
        let t = table();
        let q = parse("S(x, y)", t.schema()).unwrap();
        let m = answer_marginals(&q, &t, Engine::Auto).unwrap();
        assert_eq!(m.len(), 2);
        // sorted free vars (x, y); tuples (1,2) p=.3 and (2,2) p=.9
        assert!(m
            .iter()
            .any(|(t2, p)| t2 == &vec![Value::int(1), Value::int(2)] && (p - 0.3).abs() < 1e-12));
        assert!(m
            .iter()
            .any(|(t2, p)| t2 == &vec![Value::int(2), Value::int(2)] && (p - 0.9).abs() < 1e-12));
    }
}

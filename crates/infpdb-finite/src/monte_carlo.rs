//! Monte-Carlo estimation of query probabilities.
//!
//! For queries outside the tractable fragments, sample worlds from the
//! tuple-independent table and count satisfying ones. Hoeffding's
//! inequality gives the usual `(ε, δ)` additive guarantee:
//! `n ≥ ln(2/δ) / (2ε²)` samples suffice for
//! `P(|p̂ − p| > ε) ≤ δ`.
//!
//! The query is grounded **once** into a hash-consed
//! [`LineageArena`]; each sampled world is then
//! judged by a single linear pass over the arena's dense node ids
//! ([`LineageArena::eval_into`](crate::arena::LineageArena::eval_into))
//! with a reused scratch buffer — no per-sample formula walk, no
//! per-sample allocation beyond the world itself.

use crate::arena::LineageArena;
use crate::lineage::lineage_of_arena;
use crate::{FiniteError, TiTable};
use infpdb_core::space::rand_core::RngCore;
use infpdb_logic::ast::Formula;
use infpdb_logic::vars::free_vars;

/// A Monte-Carlo estimate with its Hoeffding error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McEstimate {
    /// The point estimate `p̂`.
    pub estimate: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Half-width `ε` such that `P(|p̂ − p| > ε) ≤ δ` for the `δ` the
    /// sample count was derived from (or 0.05 by default reporting).
    pub half_width: f64,
}

/// Number of samples for an additive `(ε, δ)` guarantee by Hoeffding.
pub fn samples_for(eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize
}

/// Estimates `P(Q)` for a Boolean query by sampling `samples` worlds.
pub fn estimate<R: RngCore>(
    query: &Formula,
    table: &TiTable,
    samples: usize,
    rng: &mut R,
) -> Result<McEstimate, FiniteError> {
    let fv = free_vars(query);
    if !fv.is_empty() {
        return Err(FiniteError::Logic(infpdb_logic::LogicError::NotASentence(
            fv.into_iter().collect(),
        )));
    }
    assert!(samples > 0, "need at least one sample");
    let mut arena = LineageArena::new();
    let root = lineage_of_arena(query, table, &mut arena)?;
    let mut hits = 0usize;
    let mut present = Vec::new();
    let mut buf = Vec::new();
    for _ in 0..samples {
        table.sample_into(rng, &mut present);
        if arena.eval_flat(root, &present, &mut buf) {
            hits += 1;
        }
    }
    // report the 95%-confidence half-width for this sample count
    let half_width = ((2.0f64 / 0.05).ln() / (2.0 * samples as f64)).sqrt();
    Ok(McEstimate {
        estimate: hits as f64 / samples as f64,
        samples,
        half_width,
    })
}

/// Fixed chunk size of the deterministic sampler: seeds are derived per
/// chunk, not per thread, so the estimate is a pure function of
/// `(query, table, samples, seed)` — identical at every thread count.
pub const SAMPLE_CHUNK: usize = 1024;

/// The per-chunk seed stream: a SplitMix64-style golden-ratio mix of the
/// master seed and the chunk index.
pub(crate) fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    seed.wrapping_add((chunk.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The flat per-chunk kernel: worlds are drawn into a reused dense
/// `present` vector ([`TiTable::sample_into`]) and judged by slice
/// indexing ([`LineageArena::eval_flat`]) — no per-sample `Instance`
/// allocation or hash-set probe. Both scratch buffers are owned by the
/// worker and reused across its chunks. Bit-for-bit the same hit count
/// as the `sample`/`eval_into` pair: the RNG consumption and the world
/// contents are identical.
fn run_chunk(
    arena: &LineageArena,
    root: crate::arena::LineageId,
    table: &TiTable,
    n: usize,
    seed: u64,
    present: &mut Vec<bool>,
    buf: &mut Vec<bool>,
) -> usize {
    let mut rng = infpdb_core::space::rand_core::SplitMix64::new(seed);
    let mut hits = 0usize;
    for _ in 0..n {
        table.sample_into(&mut rng, present);
        if arena.eval_flat(root, present, buf) {
            hits += 1;
        }
    }
    hits
}

/// Deterministic, optionally parallel Monte-Carlo estimate.
///
/// Samples are drawn in [`SAMPLE_CHUNK`]-sized chunks, each from its own
/// `chunk_seed`-derived RNG; chunk hit counts are summed (an
/// order-free integer sum), so the result is **bit-for-bit identical**
/// for every `threads` value, including `1`. With `threads ≥ 2` the
/// chunks are striped over std scoped threads, each evaluating worlds
/// against its own clone of the grounded arena (the memoized structural
/// comparator makes `&LineageArena` non-`Sync`).
pub fn estimate_parallel(
    query: &Formula,
    table: &TiTable,
    samples: usize,
    seed: u64,
    threads: usize,
) -> Result<McEstimate, FiniteError> {
    let fv = free_vars(query);
    if !fv.is_empty() {
        return Err(FiniteError::Logic(infpdb_logic::LogicError::NotASentence(
            fv.into_iter().collect(),
        )));
    }
    assert!(samples > 0, "need at least one sample");
    let mut arena = LineageArena::new();
    let root = lineage_of_arena(query, table, &mut arena)?;
    // chunk c covers samples [c·CHUNK, min((c+1)·CHUNK, samples))
    let chunks: Vec<(u64, usize)> = (0..samples.div_ceil(SAMPLE_CHUNK))
        .map(|c| {
            let n = SAMPLE_CHUNK.min(samples - c * SAMPLE_CHUNK);
            (chunk_seed(seed, c as u64), n)
        })
        .collect();
    let hits: usize = if threads < 2 || chunks.len() < 2 {
        let (mut present, mut buf) = (Vec::new(), Vec::new());
        chunks
            .iter()
            .map(|&(s, n)| run_chunk(&arena, root, table, n, s, &mut present, &mut buf))
            .sum()
    } else {
        let workers = threads.min(chunks.len());
        let clones: Vec<LineageArena> = (0..workers).map(|_| arena.clone()).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = clones
                .into_iter()
                .enumerate()
                .map(|(k, cl)| {
                    let mine: Vec<(u64, usize)> =
                        chunks.iter().skip(k).step_by(workers).copied().collect();
                    scope.spawn(move || {
                        let (mut present, mut buf) = (Vec::new(), Vec::new());
                        mine.into_iter()
                            .map(|(s, n)| run_chunk(&cl, root, table, n, s, &mut present, &mut buf))
                            .sum::<usize>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sampler worker panicked"))
                .sum()
        })
    };
    let half_width = ((2.0f64 / 0.05).ln() / (2.0 * samples as f64)).sqrt();
    Ok(McEstimate {
        estimate: hits as f64 / samples as f64,
        samples,
        half_width,
    })
}

/// Estimates with an `(ε, δ)` guarantee, choosing the sample count by
/// Hoeffding.
pub fn estimate_with_guarantee<R: RngCore>(
    query: &Formula,
    table: &TiTable,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<McEstimate, FiniteError> {
    let n = samples_for(eps, delta);
    let mut e = estimate(query, table, n, rng)?;
    e.half_width = eps;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{Relation, Schema};
    use infpdb_core::space::rand_core::SplitMix64;
    use infpdb_core::value::Value;
    use infpdb_logic::parse;

    fn table() -> TiTable {
        let s = Schema::from_relations([Relation::new("R", 1), Relation::new("S", 1)]).unwrap();
        let r = s.rel_id("R").unwrap();
        let t = s.rel_id("S").unwrap();
        TiTable::from_facts(
            s,
            [
                (Fact::new(r, [Value::int(1)]), 0.5),
                (Fact::new(r, [Value::int(2)]), 0.3),
                (Fact::new(t, [Value::int(1)]), 0.8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn samples_for_hoeffding() {
        // ln(2/0.05)/(2·0.1²) ≈ 184.4 → 185
        assert_eq!(samples_for(0.1, 0.05), 185);
        assert!(samples_for(0.01, 0.05) > 10_000);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn samples_for_rejects_bad_eps() {
        samples_for(0.0, 0.05);
    }

    #[test]
    fn estimate_converges_to_truth() {
        let t = table();
        let q = parse("exists x. R(x) /\\ S(x)", t.schema()).unwrap();
        let truth = t.worlds().unwrap().prob_boolean(&q).unwrap();
        let mut rng = SplitMix64::new(5);
        let e = estimate(&q, &t, 20_000, &mut rng).unwrap();
        assert!(
            (e.estimate - truth).abs() < 0.02,
            "estimate {} vs truth {truth}",
            e.estimate
        );
        assert_eq!(e.samples, 20_000);
        assert!(e.half_width < 0.02);
    }

    #[test]
    fn guarantee_variant_sets_half_width() {
        let t = table();
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        let truth = t.worlds().unwrap().prob_boolean(&q).unwrap();
        let mut rng = SplitMix64::new(7);
        let e = estimate_with_guarantee(&q, &t, 0.05, 0.01, &mut rng).unwrap();
        assert_eq!(e.half_width, 0.05);
        assert_eq!(e.samples, samples_for(0.05, 0.01));
        assert!((e.estimate - truth).abs() < 0.05);
    }

    #[test]
    fn parallel_estimate_is_thread_count_invariant() {
        let t = table();
        let q = parse("exists x. R(x) \\/ S(x)", t.schema()).unwrap();
        let truth = t.worlds().unwrap().prob_boolean(&q).unwrap();
        let base = estimate_parallel(&q, &t, 10_000, 42, 1).unwrap();
        assert!((base.estimate - truth).abs() < 0.03);
        for threads in [2, 4, 7] {
            let e = estimate_parallel(&q, &t, 10_000, 42, threads).unwrap();
            assert_eq!(
                e.estimate.to_bits(),
                base.estimate.to_bits(),
                "threads={threads}"
            );
            assert_eq!(e.samples, base.samples);
        }
        // a different master seed gives a different (still valid) estimate
        let other = estimate_parallel(&q, &t, 10_000, 43, 2).unwrap();
        assert_ne!(other.estimate.to_bits(), base.estimate.to_bits());
    }

    #[test]
    fn flat_chunk_matches_instance_based_reference_exactly() {
        // the pre-flattening chunk kernel: sample an Instance, probe it
        fn reference_chunk(
            arena: &LineageArena,
            root: crate::arena::LineageId,
            table: &TiTable,
            n: usize,
            seed: u64,
        ) -> usize {
            let mut rng = SplitMix64::new(seed);
            let mut buf = Vec::new();
            let mut hits = 0usize;
            for _ in 0..n {
                let world = table.sample(&mut rng);
                if arena.eval_into(root, &world, &mut buf) {
                    hits += 1;
                }
            }
            hits
        }
        let t = table();
        let q = parse("exists x. R(x) /\\ S(x)", t.schema()).unwrap();
        let mut arena = LineageArena::new();
        let root = lineage_of_arena(&q, &t, &mut arena).unwrap();
        let (mut present, mut buf) = (Vec::new(), Vec::new());
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(
                run_chunk(&arena, root, &t, 1000, seed, &mut present, &mut buf),
                reference_chunk(&arena, root, &t, 1000, seed),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn rejects_free_variables() {
        let t = table();
        let q = parse("R(x)", t.schema()).unwrap();
        let mut rng = SplitMix64::new(1);
        assert!(estimate(&q, &t, 10, &mut rng).is_err());
    }

    #[test]
    fn degenerate_probabilities() {
        let t = table();
        let mut rng = SplitMix64::new(2);
        let yes = parse("true", t.schema()).unwrap();
        assert_eq!(estimate(&yes, &t, 50, &mut rng).unwrap().estimate, 1.0);
        let no = parse("false", t.schema()).unwrap();
        assert_eq!(estimate(&no, &t, 50, &mut rng).unwrap().estimate, 0.0);
    }
}

//! Finite tuple-independent tables.
//!
//! "A tuple-independent PDB can be represented as a table of all possible
//! facts annotated with their respective marginal probabilities"
//! (Section 1). [`TiTable`] is that table: the distribution over instances
//! is the product measure in which each fact `f` appears independently with
//! its probability `p_f`.

use crate::{FiniteError, FinitePdb};
use infpdb_core::fact::{Fact, FactId};
use infpdb_core::instance::Instance;
use infpdb_core::interner::FactInterner;
use infpdb_core::schema::Schema;
use infpdb_core::space::rand_core::RngCore;
use infpdb_core::space::DiscreteSpace;
use infpdb_core::value::Value;
use infpdb_math::{KahanSum, LogProb};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Hard cap on explicit world enumeration: `2^24` worlds ≈ 16M.
pub const MAX_ENUM_FACTS: usize = 24;

/// A finite tuple-independent PDB as a table of `(fact, probability)`.
///
/// The backing fact set and probability vector are shared (`Arc`) and
/// the table itself is a *length-bounded view* over them: `probs[i]`
/// belongs to fact id `i` for `i < len`, and everything the table
/// exposes — iteration, marginals, sampling, fingerprints — sees only
/// the first `len` facts. [`prefix`](Self::prefix) is therefore O(1):
/// it clones two `Arc`s and shortens `len`, which is what makes the
/// Proposition 6.1 truncation loop's repeated prefix restrictions
/// zero-copy instead of re-interning the whole table each time.
#[derive(Debug, Clone)]
pub struct TiTable {
    schema: Schema,
    interner: Arc<FactInterner>,
    probs: Arc<Vec<f64>>,
    len: usize,
}

impl TiTable {
    /// An empty table over a schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            interner: Arc::new(FactInterner::new()),
            probs: Arc::new(Vec::new()),
            len: 0,
        }
    }

    /// Rebuilds a table from an already-interned fact set and its aligned
    /// probability vector — the zero-rehash path of the prepared-query
    /// pipeline: a `FactCatalog` snapshot becomes a table by cloning its
    /// interner instead of re-interning every owned `Fact`.
    ///
    /// Requires `interner.len() == probs.len()` (ids are dense positions
    /// in insertion order; `probs[i]` belongs to fact id `i` — the same
    /// invariant [`add_fact`](Self::add_fact) maintains incrementally).
    /// Probabilities are validated; the length invariant is asserted
    /// because violating it is a construction bug, not an input error.
    pub fn from_interned_parts(
        schema: Schema,
        interner: FactInterner,
        probs: Vec<f64>,
    ) -> Result<Self, FiniteError> {
        let len = probs.len();
        Self::from_shared_parts(schema, Arc::new(interner), Arc::new(probs), len)
    }

    /// Builds a length-`len` prefix view directly over shared backing —
    /// the fully zero-copy entry point: the catalog hands out its own
    /// `Arc`s and no fact or probability is copied at any `len`.
    ///
    /// Requires `interner.len() == probs.len()` (asserted) and
    /// `len ≤ probs.len()` (asserted). Only the first `len`
    /// probabilities are validated; entries past the view belong to
    /// longer prefixes of the same backing and are validated when a
    /// view that exposes them is built.
    pub fn from_shared_parts(
        schema: Schema,
        interner: Arc<FactInterner>,
        probs: Arc<Vec<f64>>,
        len: usize,
    ) -> Result<Self, FiniteError> {
        assert_eq!(
            interner.len(),
            probs.len(),
            "interner and probability vector must be aligned"
        );
        assert!(
            len <= probs.len(),
            "view length {len} exceeds backing length {}",
            probs.len()
        );
        for &p in &probs[..len] {
            infpdb_math::check_probability(p)
                .map_err(infpdb_core::CoreError::Math)
                .map_err(FiniteError::Core)?;
        }
        Ok(Self {
            schema,
            interner,
            probs,
            len,
        })
    }

    /// Builds a table from `(fact, probability)` pairs; rejects duplicate
    /// facts and probabilities outside `[0, 1]`.
    ///
    /// ```
    /// use infpdb_core::{fact::Fact, schema::{Relation, Schema}, value::Value};
    /// use infpdb_finite::TiTable;
    ///
    /// let schema = Schema::from_relations([Relation::new("R", 1)])?;
    /// let r = schema.rel_id("R").unwrap();
    /// let table = TiTable::from_facts(schema, [
    ///     (Fact::new(r, [Value::int(1)]), 0.8),
    ///     (Fact::new(r, [Value::int(2)]), 0.4),
    /// ])?;
    /// assert_eq!(table.len(), 2);
    /// assert!((table.expected_size() - 1.2).abs() < 1e-12);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_facts(
        schema: Schema,
        facts: impl IntoIterator<Item = (Fact, f64)>,
    ) -> Result<Self, FiniteError> {
        let mut t = Self::new(schema);
        for (f, p) in facts {
            t.add_fact(f, p)?;
        }
        Ok(t)
    }

    /// Adds one possible fact with its marginal probability.
    pub fn add_fact(&mut self, fact: Fact, p: f64) -> Result<FactId, FiniteError> {
        infpdb_math::check_probability(p)
            .map_err(infpdb_core::CoreError::Math)
            .map_err(FiniteError::Core)?;
        if self.fact_id(&fact).is_some() {
            return Err(FiniteError::DuplicateFact(
                fact.display(&self.schema).to_string(),
            ));
        }
        if self.len < self.interner.len() {
            // the view is shorter than its shared backing: growing it
            // must not leak the backing's tail, so materialize an owned
            // truncation first (rare — the hot paths only shrink views)
            self.interner = Arc::new(self.owned_interner());
            self.probs = Arc::new(self.probs[..self.len].to_vec());
        }
        let id = Arc::make_mut(&mut self.interner).intern(fact);
        debug_assert_eq!(id.0 as usize, self.len);
        Arc::make_mut(&mut self.probs).push(p);
        self.len += 1;
        Ok(id)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The fact interner (ids are positions in insertion order).
    ///
    /// On a prefix view the shared interner may extend *past*
    /// [`len`](Self::len): use it to resolve ids the table handed out,
    /// never for membership — [`fact_id`](Self::fact_id) and
    /// [`marginal`](Self::marginal) are the length-aware lookups.
    pub fn interner(&self) -> &FactInterner {
        &self.interner
    }

    /// An owned interner holding exactly this view's facts — what
    /// consumers that take a `FactInterner` by value (e.g.
    /// [`FinitePdb::from_parts`]) need from a prefix view.
    pub(crate) fn owned_interner(&self) -> FactInterner {
        if self.len == self.interner.len() {
            (*self.interner).clone()
        } else {
            let mut it = FactInterner::new();
            for (_, f) in self.interner.iter().take(self.len) {
                it.intern(f.clone());
            }
            it
        }
    }

    /// The probabilities of this view, aligned with fact ids.
    fn probs(&self) -> &[f64] {
        &self.probs[..self.len]
    }

    /// Number of possible facts.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The marginal probability of a fact id.
    pub fn prob(&self, id: FactId) -> f64 {
        self.probs()[id.0 as usize]
    }

    /// The id of a fact *in this view*, if present. Length-aware: a
    /// fact interned in the shared backing but beyond the view's prefix
    /// is not a member and returns `None`.
    pub fn fact_id(&self, fact: &Fact) -> Option<FactId> {
        self.interner
            .get(fact)
            .filter(|id| (id.0 as usize) < self.len)
    }

    /// The marginal probability of a fact (0 if not in the table —
    /// the closed-world assumption, Section 1).
    pub fn marginal(&self, fact: &Fact) -> f64 {
        self.fact_id(fact).map(|id| self.prob(id)).unwrap_or(0.0)
    }

    /// Iterator over `(id, fact, probability)`.
    pub fn iter(&self) -> impl Iterator<Item = (FactId, &Fact, f64)> {
        self.interner
            .iter()
            .take(self.len)
            .map(|(id, f)| (id, f, self.probs[id.0 as usize]))
    }

    /// `E(S_D) = ∑_f p_f` (equation (5)).
    pub fn expected_size(&self) -> f64 {
        KahanSum::sum_iter(self.probs().iter().copied())
    }

    /// A stable 64-bit content fingerprint of the table.
    ///
    /// Two tables over the same relations get equal fingerprints exactly
    /// when they describe the same weighted fact *set*: the digest is
    /// insensitive to fact insertion order and relation declaration order
    /// (facts hash by relation name), and sensitive to any change in a
    /// fact, its probability bits, or the schema's declared relations.
    /// Used by `infpdb-serve` as the PDB component of result-cache keys.
    pub fn fingerprint(&self) -> u64 {
        let facts = infpdb_core::fingerprint::combine_unordered(
            self.iter()
                .map(|(_, f, p)| infpdb_core::fingerprint::fact_fingerprint(&self.schema, f, p)),
        );
        let mut fp = infpdb_core::fingerprint::Fingerprinter::new();
        // schema relations, order-insensitively (empty relations matter:
        // they change the space of possible facts)
        fp.write_u64(infpdb_core::fingerprint::combine_unordered(
            self.schema.iter().map(|(_, r)| {
                let mut rf = infpdb_core::fingerprint::Fingerprinter::new();
                rf.write_bytes(r.name().as_bytes())
                    .write_u64(r.arity() as u64);
                rf.finish()
            }),
        ));
        fp.write_u64(facts);
        fp.finish()
    }

    /// The probability of one instance:
    /// `P({D}) = ∏_{f∈D} p_f · ∏_{f∉D} (1 − p_f)` (Section 4.1 in the
    /// finite special case). Instances containing facts outside the table
    /// have probability 0.
    pub fn instance_prob(&self, instance: &Instance) -> f64 {
        self.instance_logprob(instance).prob()
    }

    /// [`Self::instance_prob`] in log-space (immune to underflow for large
    /// tables).
    pub fn instance_logprob(&self, instance: &Instance) -> LogProb {
        for id in instance.iter() {
            if id.0 as usize >= self.len {
                return LogProb::ZERO;
            }
        }
        let mut acc = KahanSum::new();
        for (i, &p) in self.probs().iter().enumerate() {
            let inside = instance.contains(FactId(i as u32));
            let factor = if inside { p } else { 1.0 - p };
            if factor == 0.0 {
                return LogProb::ZERO;
            }
            acc.add(factor.ln());
        }
        LogProb::from_ln(acc.value().min(0.0)).expect("probability product")
    }

    /// Draws one world: each fact flips its own coin.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Instance {
        let ids = self.probs().iter().enumerate().filter_map(|(i, &p)| {
            let u = rng.next_u64() as f64 / u64::MAX as f64;
            (u < p).then_some(FactId(i as u32))
        });
        Instance::from_ids(ids)
    }

    /// [`sample`](Self::sample) into a dense world vector: after the call
    /// `present[i]` says whether fact id `i` was drawn.
    ///
    /// Draws exactly one `u64` per fact in id order — the identical RNG
    /// consumption as `sample`, so for the same generator state the two
    /// produce the same world. The buffer is reused across calls; paired
    /// with [`LineageArena::eval_flat`](crate::LineageArena::eval_flat)
    /// the Monte-Carlo inner loop becomes a flat slice pass with no
    /// per-sample allocation.
    pub fn sample_into<R: RngCore>(&self, rng: &mut R, present: &mut Vec<bool>) {
        present.clear();
        present.extend(self.probs().iter().map(|&p| {
            let u = rng.next_u64() as f64 / u64::MAX as f64;
            u < p
        }));
    }

    /// Materializes the full world space (the finite PDB this table
    /// represents). Errors beyond [`MAX_ENUM_FACTS`] facts.
    pub fn worlds(&self) -> Result<FinitePdb, FiniteError> {
        let n = self.len;
        if n > MAX_ENUM_FACTS {
            return Err(FiniteError::TooManyWorlds {
                facts: n,
                limit: MAX_ENUM_FACTS,
            });
        }
        let mut outcomes = Vec::with_capacity(1usize << n);
        for mask in 0u64..(1u64 << n) {
            let mut p = 1.0;
            let mut ids = Vec::new();
            for (i, &pf) in self.probs().iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p *= pf;
                    ids.push(FactId(i as u32));
                } else {
                    p *= 1.0 - pf;
                }
            }
            if p > 0.0 {
                outcomes.push((Instance::from_ids(ids), p));
            }
        }
        let space = DiscreteSpace::new(outcomes)?;
        Ok(FinitePdb::from_parts(
            self.schema.clone(),
            self.owned_interner(),
            space,
        ))
    }

    /// The exact distribution of the instance size `S_D` — a
    /// Poisson-binomial distribution, computed by the standard `O(n²)`
    /// convolution DP. Entry `k` is `P(S_D = k)`.
    pub fn size_distribution(&self) -> Vec<f64> {
        let mut dist = vec![1.0];
        for &p in self.probs() {
            let mut next = vec![0.0; dist.len() + 1];
            for (k, &dk) in dist.iter().enumerate() {
                next[k] += dk * (1.0 - p);
                next[k + 1] += dk * p;
            }
            dist = next;
        }
        dist
    }

    /// The active domain over all possible facts.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for (_, f) in self.interner.iter().take(self.len) {
            dom.extend(f.args().iter().cloned());
        }
        dom
    }

    /// A sub-table containing only the first `n` facts in insertion order —
    /// the restriction to `{f₁, …, f_n}` used by the truncation algorithm
    /// (Proposition 6.1). O(1): the result is a view sharing this
    /// table's backing, not a copy.
    pub fn prefix(&self, n: usize) -> TiTable {
        TiTable {
            schema: self.schema.clone(),
            interner: Arc::clone(&self.interner),
            probs: Arc::clone(&self.probs),
            len: n.min(self.len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::Relation;
    use infpdb_core::space::rand_core::SplitMix64;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1)]).unwrap()
    }

    fn fact(n: i64) -> Fact {
        Fact::new(infpdb_core::schema::RelId(0), [Value::int(n)])
    }

    fn table(ps: &[f64]) -> TiTable {
        TiTable::from_facts(
            schema(),
            ps.iter().enumerate().map(|(i, &p)| (fact(i as i64), p)),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = table(&[0.5, 0.25]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.prob(FactId(0)), 0.5);
        assert_eq!(t.marginal(&fact(1)), 0.25);
        assert_eq!(t.marginal(&fact(9)), 0.0); // closed world
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.schema().len(), 1);
    }

    #[test]
    fn from_interned_parts_round_trips_without_rehashing() {
        let t = table(&[0.5, 0.25, 0.8]);
        let rebuilt = TiTable::from_interned_parts(
            t.schema().clone(),
            t.interner().clone(),
            (0..t.len()).map(|i| t.prob(FactId(i as u32))).collect(),
        )
        .unwrap();
        assert_eq!(rebuilt.len(), t.len());
        assert_eq!(rebuilt.fingerprint(), t.fingerprint());
        assert_eq!(rebuilt.prob(FactId(2)), 0.8);
        // invalid probabilities are still rejected
        assert!(TiTable::from_interned_parts(
            t.schema().clone(),
            t.interner().clone(),
            vec![0.5, 0.25, 1.8],
        )
        .is_err());
    }

    #[test]
    fn duplicate_and_invalid_probability_rejected() {
        let mut t = table(&[0.5]);
        assert!(matches!(
            t.add_fact(fact(0), 0.3),
            Err(FiniteError::DuplicateFact(_))
        ));
        assert!(t.add_fact(fact(7), 1.7).is_err());
    }

    #[test]
    fn expected_size_is_sum_of_marginals() {
        let t = table(&[0.5, 0.25, 0.125]);
        assert!((t.expected_size() - 0.875).abs() < 1e-15);
    }

    #[test]
    fn instance_probability_product_formula() {
        let t = table(&[0.5, 0.25]);
        let both = Instance::from_ids([FactId(0), FactId(1)]);
        assert!((t.instance_prob(&both) - 0.125).abs() < 1e-15);
        let neither = Instance::empty();
        assert!((t.instance_prob(&neither) - 0.375).abs() < 1e-15);
        let first = Instance::from_ids([FactId(0)]);
        assert!((t.instance_prob(&first) - 0.375).abs() < 1e-15);
    }

    #[test]
    fn instance_probability_outside_support_is_zero() {
        let t = table(&[0.5]);
        let d = Instance::from_ids([FactId(3)]);
        assert_eq!(t.instance_prob(&d), 0.0);
    }

    #[test]
    fn deterministic_and_impossible_facts() {
        let t = table(&[1.0, 0.0, 0.5]);
        // a world missing the p=1 fact has probability 0
        let without = Instance::from_ids([FactId(2)]);
        assert_eq!(t.instance_prob(&without), 0.0);
        // a world containing the p=0 fact has probability 0
        let with_impossible = Instance::from_ids([FactId(0), FactId(1)]);
        assert_eq!(t.instance_prob(&with_impossible), 0.0);
        let good = Instance::from_ids([FactId(0)]);
        assert!((t.instance_prob(&good) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn world_probabilities_sum_to_one() {
        let t = table(&[0.5, 0.25, 0.8]);
        let pdb = t.worlds().unwrap();
        assert!((pdb.space().total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(pdb.space().support_size(), 8);
        // marginals recovered
        assert!((pdb.marginal(&fact(0)) - 0.5).abs() < 1e-12);
        assert!((pdb.marginal(&fact(2)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn worlds_enumeration_guard() {
        let t = table(&[0.5; MAX_ENUM_FACTS + 1]);
        assert!(matches!(t.worlds(), Err(FiniteError::TooManyWorlds { .. })));
    }

    #[test]
    fn worlds_match_instance_prob() {
        let t = table(&[0.3, 0.6]);
        let pdb = t.worlds().unwrap();
        for (d, p) in pdb.space().outcomes() {
            assert!((t.instance_prob(d) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn sampling_frequency_approximates_marginals() {
        let t = table(&[0.2, 0.7]);
        let mut rng = SplitMix64::new(99);
        let n = 20_000;
        let mut counts = [0usize; 2];
        for _ in 0..n {
            let d = t.sample(&mut rng);
            for (i, c) in counts.iter_mut().enumerate() {
                if d.contains(FactId(i as u32)) {
                    *c += 1;
                }
            }
        }
        assert!((counts[0] as f64 / n as f64 - 0.2).abs() < 0.02);
        assert!((counts[1] as f64 / n as f64 - 0.7).abs() < 0.02);
    }

    #[test]
    fn sample_into_consumes_rng_identically_to_sample() {
        let t = table(&[0.2, 0.9, 0.5, 0.0, 1.0]);
        let mut a = SplitMix64::new(31337);
        let mut b = SplitMix64::new(31337);
        let mut present = Vec::new();
        for round in 0..200 {
            let world = t.sample(&mut a);
            t.sample_into(&mut b, &mut present);
            assert_eq!(present.len(), t.len());
            for i in 0..t.len() as u32 {
                assert_eq!(
                    present[i as usize],
                    world.contains(FactId(i)),
                    "round {round}, fact {i}"
                );
            }
        }
        // the generators stayed in lockstep the whole way
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn size_distribution_is_poisson_binomial() {
        let t = table(&[0.5, 0.5]);
        let d = t.size_distribution();
        assert_eq!(d.len(), 3);
        assert!((d[0] - 0.25).abs() < 1e-15);
        assert!((d[1] - 0.5).abs() < 1e-15);
        assert!((d[2] - 0.25).abs() < 1e-15);
        // expectation from the distribution equals Σp
        let t2 = table(&[0.1, 0.9, 0.4]);
        let d2 = t2.size_distribution();
        let mean: f64 = d2.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!((mean - t2.expected_size()).abs() < 1e-12);
        let total: f64 = d2.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_size_distribution() {
        let t = TiTable::new(schema());
        assert_eq!(t.size_distribution(), vec![1.0]);
        assert_eq!(t.expected_size(), 0.0);
        assert!((t.instance_prob(&Instance::empty()) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn prefix_restriction() {
        let t = table(&[0.5, 0.25, 0.125]);
        let p = t.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.prob(FactId(1)), 0.25);
        let whole = t.prefix(10);
        assert_eq!(whole.len(), 3);
    }

    #[test]
    fn prefix_views_are_closed_world_at_their_own_length() {
        let t = table(&[0.5, 0.25, 0.125]);
        let p = t.prefix(2);
        // fact 2 exists in the shared backing but not in the view:
        // membership, marginals, fingerprints, and enumeration must all
        // honor the view length
        assert_eq!(p.fact_id(&fact(2)), None);
        assert_eq!(p.marginal(&fact(2)), 0.0, "closed world at the prefix");
        assert_eq!(p.fact_id(&fact(1)), Some(FactId(1)));
        assert_eq!(p.iter().count(), 2);
        assert_eq!(p.active_domain().len(), 2);
        assert_eq!(
            p.fingerprint(),
            table(&[0.5, 0.25]).fingerprint(),
            "a view fingerprints identically to an owned table of the same facts"
        );
        // growing a short view materializes a truncation: the backing's
        // tail fact is re-addable, and the original is untouched
        let mut grown = t.prefix(2);
        let id = grown.add_fact(fact(2), 0.9).unwrap();
        assert_eq!(id, FactId(2));
        assert_eq!(grown.prob(FactId(2)), 0.9);
        assert_eq!(t.prob(FactId(2)), 0.125);
        // worlds() of a view enumerates only the view's facts
        let w = p.worlds().unwrap();
        assert_eq!(w.space().support_size(), 4);
    }

    #[test]
    fn from_shared_parts_validates_only_the_view() {
        let t = table(&[0.5, 0.25]);
        let interner = Arc::new(t.owned_interner());
        let probs = Arc::new(vec![0.5, 7.0]); // invalid beyond the view
        let ok = TiTable::from_shared_parts(schema(), interner.clone(), probs.clone(), 1).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(TiTable::from_shared_parts(schema(), interner, probs, 2).is_err());
    }

    #[test]
    fn active_domain_of_possible_facts() {
        let t = table(&[0.5, 0.25]);
        let dom: Vec<i64> = t
            .active_domain()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(dom, vec![0, 1]);
    }

    #[test]
    fn fingerprint_is_order_insensitive_for_fact_sets() {
        let a = TiTable::from_facts(schema(), [(fact(0), 0.5), (fact(1), 0.25), (fact(2), 0.8)])
            .unwrap();
        let b = TiTable::from_facts(schema(), [(fact(2), 0.8), (fact(0), 0.5), (fact(1), 0.25)])
            .unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "same fact set in a different insertion order must agree"
        );
    }

    #[test]
    fn fingerprint_is_sensitive_to_content_changes() {
        let base = table(&[0.5, 0.25]);
        // probability nudge on one fact
        let nudged = table(&[0.5, 0.250_000_1]);
        assert_ne!(base.fingerprint(), nudged.fingerprint());
        // different fact, same probabilities
        let other = TiTable::from_facts(schema(), [(fact(0), 0.5), (fact(7), 0.25)]).unwrap();
        assert_ne!(base.fingerprint(), other.fingerprint());
        // subset
        assert_ne!(base.fingerprint(), table(&[0.5]).fingerprint());
        // stable across identical rebuilds
        assert_eq!(base.fingerprint(), table(&[0.5, 0.25]).fingerprint());
    }

    #[test]
    fn log_space_instance_probability_survives_large_tables() {
        let t = table(&vec![0.5; 5000]);
        let lp = t.instance_logprob(&Instance::empty());
        assert!((lp.ln() - 5000.0 * 0.5f64.ln()).abs() < 1e-6);
        assert_eq!(lp.prob(), 0.0); // linear space honestly underflows
    }
}

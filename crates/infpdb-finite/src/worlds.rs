//! Brute-force possible-worlds reference engine and event probabilities.
//!
//! Every other inference engine in this crate is cross-validated against
//! [`prob_boolean_brute`], which materializes all `2^n` worlds of a t.i.
//! table and sums the satisfying mass — the defining semantics.
//!
//! [`prob_event`] computes the probability of an [`Event`] on a t.i. table
//! without enumeration where possible: Boolean-combination events translate
//! to lineage and go through the Shannon engine; size events use the exact
//! Poisson-binomial distribution.

use crate::arena::{self, LineageArena, LineageId};
use crate::lineage::Lineage;
use crate::{shannon, FiniteError, TiTable};
use infpdb_core::event::Event;
use infpdb_core::fact::FactId;
use infpdb_logic::ast::Formula;

/// `P(Q)` by full world enumeration (exponential; guarded by
/// [`crate::tuple_independent::MAX_ENUM_FACTS`]).
pub fn prob_boolean_brute(query: &Formula, table: &TiTable) -> Result<f64, FiniteError> {
    table.worlds()?.prob_boolean(query)
}

/// Translates an event into lineage over the table's fact variables, if the
/// event is a Boolean combination of fact containments. `Exactly` needs the
/// full variable list; `SizeAtLeast` is not a finite Boolean combination
/// and returns `None` (handled separately in [`prob_event`]).
pub fn event_lineage(event: &Event, table: &TiTable) -> Option<Lineage> {
    match event {
        Event::Always => Some(Lineage::Top),
        Event::ContainsFact(id) => Some(var_or_const(*id, table)),
        Event::ContainsAny(ids) => Some(Lineage::or(ids.iter().map(|id| var_or_const(*id, table)))),
        Event::Superset(d) => Some(Lineage::and(d.iter().map(|id| var_or_const(id, table)))),
        Event::Exactly(d) => {
            // ⋀_{f∈D} v_f ∧ ⋀_{f∈table−D} ¬v_f; instances outside the
            // table's support are impossible
            for id in d.iter() {
                if id.0 as usize >= table.len() {
                    return Some(Lineage::Bot);
                }
            }
            Some(Lineage::and((0..table.len()).map(|i| {
                let id = FactId(i as u32);
                let v = var_or_const(id, table);
                if d.contains(id) {
                    v
                } else {
                    v.negate()
                }
            })))
        }
        Event::SizeAtLeast(_) => None,
        Event::Not(e) => Some(event_lineage(e, table)?.negate()),
        Event::And(es) => {
            let ls: Option<Vec<Lineage>> = es.iter().map(|e| event_lineage(e, table)).collect();
            Some(Lineage::and(ls?))
        }
        Event::Or(es) => {
            let ls: Option<Vec<Lineage>> = es.iter().map(|e| event_lineage(e, table)).collect();
            Some(Lineage::or(ls?))
        }
    }
}

/// Arena counterpart of [`event_lineage`]: interns the event's lineage
/// into `arena` so [`prob_event`] runs on the DAG Shannon engine.
pub fn event_lineage_arena(
    event: &Event,
    table: &TiTable,
    arena: &mut LineageArena,
) -> Option<LineageId> {
    match event {
        Event::Always => Some(arena::TOP),
        Event::ContainsFact(id) => Some(var_or_const_arena(*id, table, arena)),
        Event::ContainsAny(ids) => {
            let vs: Vec<LineageId> = ids
                .iter()
                .map(|id| var_or_const_arena(*id, table, arena))
                .collect();
            Some(arena.or(vs))
        }
        Event::Superset(d) => {
            let vs: Vec<LineageId> = d
                .iter()
                .map(|id| var_or_const_arena(id, table, arena))
                .collect();
            Some(arena.and(vs))
        }
        Event::Exactly(d) => {
            for id in d.iter() {
                if id.0 as usize >= table.len() {
                    return Some(arena::BOT);
                }
            }
            let vs: Vec<LineageId> = (0..table.len())
                .map(|i| {
                    let id = FactId(i as u32);
                    let v = var_or_const_arena(id, table, arena);
                    if d.contains(id) {
                        v
                    } else {
                        arena.negate(v)
                    }
                })
                .collect();
            Some(arena.and(vs))
        }
        Event::SizeAtLeast(_) => None,
        Event::Not(e) => {
            let l = event_lineage_arena(e, table, arena)?;
            Some(arena.negate(l))
        }
        Event::And(es) => {
            let ls: Option<Vec<LineageId>> = es
                .iter()
                .map(|e| event_lineage_arena(e, table, arena))
                .collect();
            Some(arena.and(ls?))
        }
        Event::Or(es) => {
            let ls: Option<Vec<LineageId>> = es
                .iter()
                .map(|e| event_lineage_arena(e, table, arena))
                .collect();
            Some(arena.or(ls?))
        }
    }
}

fn var_or_const_arena(id: FactId, table: &TiTable, arena: &mut LineageArena) -> LineageId {
    if id.0 as usize >= table.len() {
        return arena::BOT; // facts outside the table never occur
    }
    let p = table.prob(id);
    if p == 0.0 {
        arena::BOT
    } else if p == 1.0 {
        arena::TOP
    } else {
        arena.var(id)
    }
}

fn var_or_const(id: FactId, table: &TiTable) -> Lineage {
    if id.0 as usize >= table.len() {
        return Lineage::Bot; // facts outside the table never occur
    }
    let p = table.prob(id);
    if p == 0.0 {
        Lineage::Bot
    } else if p == 1.0 {
        Lineage::Top
    } else {
        Lineage::Var(id)
    }
}

/// Exact `P(E)` on a t.i. table. Boolean-combination events go through
/// lineage + Shannon; a bare `SizeAtLeast` uses the Poisson-binomial tail;
/// mixed events fall back to world enumeration.
pub fn prob_event(event: &Event, table: &TiTable) -> Result<f64, FiniteError> {
    let mut arena = LineageArena::new();
    if let Some(root) = event_lineage_arena(event, table, &mut arena) {
        return Ok(shannon::probability_dag(&mut arena, root, &|id| {
            table.prob(id)
        }));
    }
    if let Event::SizeAtLeast(n) = event {
        let dist = table.size_distribution();
        return Ok(dist.iter().skip(*n).sum());
    }
    // mixed event (size predicate under Boolean structure): enumerate
    Ok(table.worlds()?.space().prob_where(|d| event.contains(d)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::fact::Fact;
    use infpdb_core::instance::Instance;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::value::Value;
    use infpdb_logic::parse;

    fn table(ps: &[f64]) -> TiTable {
        let s = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        TiTable::from_facts(
            s,
            ps.iter()
                .enumerate()
                .map(|(i, &p)| (Fact::new(RelId(0), [Value::int(i as i64)]), p)),
        )
        .unwrap()
    }

    #[test]
    fn brute_force_engine() {
        let t = table(&[0.5, 0.3]);
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        let p = prob_boolean_brute(&q, &t).unwrap();
        assert!((p - (1.0 - 0.5 * 0.7)).abs() < 1e-12);
    }

    #[test]
    fn single_fact_events() {
        let t = table(&[0.5, 0.3]);
        assert!((prob_event(&Event::fact(FactId(1)), &t).unwrap() - 0.3).abs() < 1e-12);
        assert!((prob_event(&Event::fact(FactId(1)).not(), &t).unwrap() - 0.7).abs() < 1e-12);
        // outside the table: impossible
        assert_eq!(prob_event(&Event::fact(FactId(9)), &t).unwrap(), 0.0);
    }

    #[test]
    fn e_f_event_is_inclusion_exclusion() {
        let t = table(&[0.5, 0.3, 0.2]);
        let e = Event::any_of([FactId(0), FactId(2)]);
        let expect = 1.0 - 0.5 * 0.8;
        assert!((prob_event(&e, &t).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn superset_event_is_product() {
        let t = table(&[0.5, 0.3, 0.2]);
        let e = Event::Superset(Instance::from_ids([FactId(0), FactId(1)]));
        assert!((prob_event(&e, &t).unwrap() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn exactly_event_is_instance_probability() {
        let t = table(&[0.5, 0.3, 0.2]);
        let d = Instance::from_ids([FactId(0), FactId(2)]);
        let e = Event::Exactly(d.clone());
        assert!((prob_event(&e, &t).unwrap() - t.instance_prob(&d)).abs() < 1e-12);
        // instance outside the support is impossible
        let out = Event::Exactly(Instance::from_ids([FactId(7)]));
        assert_eq!(prob_event(&out, &t).unwrap(), 0.0);
    }

    #[test]
    fn size_event_uses_poisson_binomial() {
        let t = table(&[0.5, 0.5]);
        assert!((prob_event(&Event::SizeAtLeast(1), &t).unwrap() - 0.75).abs() < 1e-12);
        assert!((prob_event(&Event::SizeAtLeast(2), &t).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(prob_event(&Event::SizeAtLeast(0), &t).unwrap(), 1.0);
        assert_eq!(prob_event(&Event::SizeAtLeast(3), &t).unwrap(), 0.0);
    }

    #[test]
    fn mixed_size_and_fact_event_falls_back_to_enumeration() {
        let t = table(&[0.5, 0.5]);
        let e = Event::fact(FactId(0)).and(Event::SizeAtLeast(2));
        // both facts present: 0.25
        assert!((prob_event(&e, &t).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arena_event_lineage_matches_tree_event_lineage() {
        let t = table(&[0.4, 0.6, 0.1, 1.0, 0.0]);
        let events = [
            Event::Always,
            Event::fact(FactId(0)),
            Event::fact(FactId(9)),
            Event::any_of([FactId(0), FactId(2)]),
            Event::Superset(Instance::from_ids([FactId(0), FactId(1)])),
            Event::Exactly(Instance::from_ids([FactId(0), FactId(2)])),
            Event::fact(FactId(0)).and(Event::fact(FactId(1)).not()),
            Event::fact(FactId(2)).or(Event::fact(FactId(3))),
        ];
        for e in events {
            let tree = event_lineage(&e, &t).unwrap();
            let mut arena = LineageArena::new();
            let id = event_lineage_arena(&e, &t, &mut arena).unwrap();
            assert_eq!(arena.to_lineage(id), tree, "{e:?}");
        }
        // SizeAtLeast has no Boolean-combination lineage in either form
        let mut arena = LineageArena::new();
        assert!(event_lineage_arena(&Event::SizeAtLeast(1), &t, &mut arena).is_none());
        assert!(event_lineage(&Event::SizeAtLeast(1), &t).is_none());
    }

    #[test]
    fn event_probabilities_match_brute_force() {
        let t = table(&[0.4, 0.6, 0.1]);
        let pdb = t.worlds().unwrap();
        let events = [
            Event::fact(FactId(0)),
            Event::any_of([FactId(0), FactId(1)]),
            Event::fact(FactId(0)).and(Event::fact(FactId(1)).not()),
            Event::Superset(Instance::from_ids([FactId(1), FactId(2)])),
            Event::fact(FactId(2)).or(Event::fact(FactId(0))),
        ];
        for e in events {
            let fast = prob_event(&e, &t).unwrap();
            let slow = pdb.prob_event(&e);
            assert!((fast - slow).abs() < 1e-12, "{e:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn deterministic_facts_fold_in_events() {
        let t = table(&[1.0, 0.0, 0.5]);
        assert_eq!(prob_event(&Event::fact(FactId(0)), &t).unwrap(), 1.0);
        assert_eq!(prob_event(&Event::fact(FactId(1)), &t).unwrap(), 0.0);
        let e = Event::any_of([FactId(1), FactId(2)]);
        assert!((prob_event(&e, &t).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tuple_independence_of_e_f_events() {
        // Definition 4.1 in the finite case: disjoint fact sets give
        // independent E_F events.
        let t = table(&[0.4, 0.6, 0.1, 0.9]);
        let e1 = Event::any_of([FactId(0), FactId(1)]);
        let e2 = Event::any_of([FactId(2), FactId(3)]);
        let p_joint = prob_event(&e1.clone().and(e2.clone()), &t).unwrap();
        let p1 = prob_event(&e1, &t).unwrap();
        let p2 = prob_event(&e2, &t).unwrap();
        assert!((p_joint - p1 * p2).abs() < 1e-12);
    }
}

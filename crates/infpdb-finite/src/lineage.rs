//! Boolean provenance (lineage) of first-order queries.
//!
//! Over a tuple-independent table, a Boolean query `Q` defines a Boolean
//! function of the independent fact variables: `Q` holds in a world iff the
//! lineage evaluates to true under that world's fact assignment. Query
//! probability is then the probability that this Boolean function is true —
//! the *intensional* approach of the standard finite-PDB toolkit the paper
//! builds on (\[37\]), solved exactly in [`crate::shannon`].
//!
//! Construction grounds the query over the active domain of the table's
//! possible facts plus the query's constants, the correct domain by
//! Fact 2.1: atoms over facts outside the table become `Bot` — the
//! closed-world assumption in action (and precisely what Section 5's
//! completions repair).

use crate::arena::{self, LineageArena, LineageId};
use crate::{FiniteError, TiTable};
use infpdb_core::fact::{Fact, FactId};
use infpdb_core::instance::Instance;
use infpdb_core::value::Value;
use infpdb_logic::ast::{Formula, Term, Var};
use infpdb_logic::vars::free_vars;
use std::collections::BTreeSet;

/// A Boolean function over fact variables, kept in a canonical form:
/// `And`/`Or` children are flattened, sorted, and deduplicated; constants
/// are folded away on construction via the smart constructors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lineage {
    /// Constant true.
    Top,
    /// Constant false.
    Bot,
    /// The fact variable "f ∈ D".
    Var(FactId),
    /// Negation.
    Not(Box<Lineage>),
    /// Conjunction (children canonical, ≥ 2).
    And(Vec<Lineage>),
    /// Disjunction (children canonical, ≥ 2).
    Or(Vec<Lineage>),
}

impl Lineage {
    /// Canonical conjunction.
    pub fn and(children: impl IntoIterator<Item = Lineage>) -> Lineage {
        let mut out: Vec<Lineage> = Vec::new();
        for c in children {
            match c {
                Lineage::Bot => return Lineage::Bot,
                Lineage::Top => {}
                Lineage::And(gs) => out.extend(gs),
                g => out.push(g),
            }
        }
        out.sort();
        out.dedup();
        // x ∧ ¬x = ⊥
        if has_complementary_pair(&out) {
            return Lineage::Bot;
        }
        match out.len() {
            0 => Lineage::Top,
            1 => out.into_iter().next().expect("len 1"),
            _ => Lineage::And(out),
        }
    }

    /// Canonical disjunction.
    pub fn or(children: impl IntoIterator<Item = Lineage>) -> Lineage {
        let mut out: Vec<Lineage> = Vec::new();
        for c in children {
            match c {
                Lineage::Top => return Lineage::Top,
                Lineage::Bot => {}
                Lineage::Or(gs) => out.extend(gs),
                g => out.push(g),
            }
        }
        out.sort();
        out.dedup();
        if has_complementary_pair(&out) {
            return Lineage::Top;
        }
        match out.len() {
            0 => Lineage::Bot,
            1 => out.into_iter().next().expect("len 1"),
            _ => Lineage::Or(out),
        }
    }

    /// Canonical negation (double negations and constants folded).
    pub fn negate(self) -> Lineage {
        match self {
            Lineage::Top => Lineage::Bot,
            Lineage::Bot => Lineage::Top,
            Lineage::Not(inner) => *inner,
            other => Lineage::Not(Box::new(other)),
        }
    }

    /// The fact variables occurring in the lineage.
    pub fn vars(&self) -> BTreeSet<FactId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<FactId>) {
        match self {
            Lineage::Top | Lineage::Bot => {}
            Lineage::Var(id) => {
                out.insert(*id);
            }
            Lineage::Not(g) => g.collect_vars(out),
            Lineage::And(gs) | Lineage::Or(gs) => {
                for g in gs {
                    g.collect_vars(out);
                }
            }
        }
    }

    /// Evaluates the lineage in a world.
    pub fn eval(&self, world: &Instance) -> bool {
        match self {
            Lineage::Top => true,
            Lineage::Bot => false,
            Lineage::Var(id) => world.contains(*id),
            Lineage::Not(g) => !g.eval(world),
            Lineage::And(gs) => gs.iter().all(|g| g.eval(world)),
            Lineage::Or(gs) => gs.iter().any(|g| g.eval(world)),
        }
    }

    /// Conditions the lineage on `var = value` (Shannon cofactor),
    /// re-canonicalizing.
    pub fn assign(&self, var: FactId, value: bool) -> Lineage {
        match self {
            Lineage::Top => Lineage::Top,
            Lineage::Bot => Lineage::Bot,
            Lineage::Var(id) if *id == var => {
                if value {
                    Lineage::Top
                } else {
                    Lineage::Bot
                }
            }
            Lineage::Var(id) => Lineage::Var(*id),
            Lineage::Not(g) => g.assign(var, value).negate(),
            Lineage::And(gs) => Lineage::and(gs.iter().map(|g| g.assign(var, value))),
            Lineage::Or(gs) => Lineage::or(gs.iter().map(|g| g.assign(var, value))),
        }
    }

    /// Number of nodes (cost indicator).
    pub fn size(&self) -> usize {
        match self {
            Lineage::Top | Lineage::Bot | Lineage::Var(_) => 1,
            Lineage::Not(g) => 1 + g.size(),
            Lineage::And(gs) | Lineage::Or(gs) => 1 + gs.iter().map(Lineage::size).sum::<usize>(),
        }
    }
}

/// Detects `x` and `¬x` (or any `g` and `¬g`) among canonical siblings.
fn has_complementary_pair(children: &[Lineage]) -> bool {
    use std::collections::HashSet;
    let mut positives: HashSet<&Lineage> = HashSet::new();
    let mut negatives: HashSet<&Lineage> = HashSet::new();
    for c in children {
        match c {
            Lineage::Not(inner) => {
                negatives.insert(inner);
            }
            other => {
                positives.insert(other);
            }
        }
    }
    positives.iter().any(|p| negatives.contains(*p))
}

/// Computes the lineage of a Boolean FO query over a t.i. table.
///
/// Quantifiers range over the active domain of the table's possible facts
/// united with the query's constants (Fact 2.1); atoms naming facts outside
/// the table fold to `Bot` (closed world).
pub fn lineage_of(query: &Formula, table: &TiTable) -> Result<Lineage, FiniteError> {
    let fv = free_vars(query);
    if !fv.is_empty() {
        return Err(FiniteError::Logic(infpdb_logic::LogicError::NotASentence(
            fv.into_iter().collect(),
        )));
    }
    let mut domain: Vec<Value> = table.active_domain().into_iter().collect();
    for c in infpdb_logic::vars::constants(query) {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let mut env: Vec<(Var, Value)> = Vec::new();
    Ok(build(query, table, &domain, &mut env))
}

fn resolve(t: &Term, env: &[(Var, Value)]) -> Value {
    match t {
        Term::Const(c) => c.clone(),
        Term::Var(v) => env
            .iter()
            .rev()
            .find(|(name, _)| name == v)
            .map(|(_, val)| val.clone())
            .expect("sentence: every variable bound during grounding"),
    }
}

fn build(f: &Formula, table: &TiTable, domain: &[Value], env: &mut Vec<(Var, Value)>) -> Lineage {
    match f {
        Formula::True => Lineage::Top,
        Formula::False => Lineage::Bot,
        Formula::Atom { rel, args } => {
            let tuple: Vec<Value> = args.iter().map(|t| resolve(t, env)).collect();
            let fact = Fact::new(*rel, tuple);
            match table.fact_id(&fact) {
                Some(id) => {
                    // fold deterministic facts
                    let p = table.prob(id);
                    if p == 1.0 {
                        Lineage::Top
                    } else if p == 0.0 {
                        Lineage::Bot
                    } else {
                        Lineage::Var(id)
                    }
                }
                None => Lineage::Bot,
            }
        }
        Formula::Eq(a, b) => {
            if resolve(a, env) == resolve(b, env) {
                Lineage::Top
            } else {
                Lineage::Bot
            }
        }
        Formula::Not(g) => build(g, table, domain, env).negate(),
        Formula::And(gs) => Lineage::and(gs.iter().map(|g| build(g, table, domain, env))),
        Formula::Or(gs) => Lineage::or(gs.iter().map(|g| build(g, table, domain, env))),
        Formula::Exists(v, g) => {
            let mut children = Vec::with_capacity(domain.len());
            for val in domain {
                env.push((v.clone(), val.clone()));
                children.push(build(g, table, domain, env));
                env.pop();
            }
            Lineage::or(children)
        }
        Formula::Forall(v, g) => {
            let mut children = Vec::with_capacity(domain.len());
            for val in domain {
                env.push((v.clone(), val.clone()));
                children.push(build(g, table, domain, env));
                env.pop();
            }
            Lineage::and(children)
        }
    }
}

/// Computes the lineage of a Boolean FO query directly into a hash-consed
/// [`LineageArena`] — no intermediate boxed trees.
///
/// The semantics are exactly [`lineage_of`]'s (active-domain grounding per
/// Fact 2.1, closed-world `⊥` for unknown atoms, deterministic-fact
/// folding); the arena constructors apply the same canonicalization as the
/// tree smart constructors, so `arena.to_lineage(id)` of the result equals
/// the tree `lineage_of` would return. Grounding into the arena interns
/// each distinct sub-lineage once — on symmetric queries (pair clauses,
/// quantifier products) this shrinks materialized provenance from
/// tree-size to DAG-size.
pub fn lineage_of_arena(
    query: &Formula,
    table: &TiTable,
    arena: &mut LineageArena,
) -> Result<LineageId, FiniteError> {
    let fv = free_vars(query);
    if !fv.is_empty() {
        return Err(FiniteError::Logic(infpdb_logic::LogicError::NotASentence(
            fv.into_iter().collect(),
        )));
    }
    let mut domain: Vec<Value> = table.active_domain().into_iter().collect();
    for c in infpdb_logic::vars::constants(query) {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let mut env: Vec<(Var, Value)> = Vec::new();
    Ok(build_arena(query, table, &domain, &mut env, arena))
}

fn build_arena(
    f: &Formula,
    table: &TiTable,
    domain: &[Value],
    env: &mut Vec<(Var, Value)>,
    arena: &mut LineageArena,
) -> LineageId {
    match f {
        Formula::True => arena::TOP,
        Formula::False => arena::BOT,
        Formula::Atom { rel, args } => {
            let tuple: Vec<Value> = args.iter().map(|t| resolve(t, env)).collect();
            let fact = Fact::new(*rel, tuple);
            match table.fact_id(&fact) {
                Some(id) => {
                    // fold deterministic facts
                    let p = table.prob(id);
                    if p == 1.0 {
                        arena::TOP
                    } else if p == 0.0 {
                        arena::BOT
                    } else {
                        arena.var(id)
                    }
                }
                None => arena::BOT,
            }
        }
        Formula::Eq(a, b) => {
            if resolve(a, env) == resolve(b, env) {
                arena::TOP
            } else {
                arena::BOT
            }
        }
        Formula::Not(g) => {
            let id = build_arena(g, table, domain, env, arena);
            arena.negate(id)
        }
        Formula::And(gs) => {
            let ids: Vec<LineageId> = gs
                .iter()
                .map(|g| build_arena(g, table, domain, env, arena))
                .collect();
            arena.and(ids)
        }
        Formula::Or(gs) => {
            let ids: Vec<LineageId> = gs
                .iter()
                .map(|g| build_arena(g, table, domain, env, arena))
                .collect();
            arena.or(ids)
        }
        Formula::Exists(v, g) => {
            let mut children = Vec::with_capacity(domain.len());
            for val in domain {
                env.push((v.clone(), val.clone()));
                children.push(build_arena(g, table, domain, env, arena));
                env.pop();
            }
            arena.or(children)
        }
        Formula::Forall(v, g) => {
            let mut children = Vec::with_capacity(domain.len());
            for val in domain {
                env.push((v.clone(), val.clone()));
                children.push(build_arena(g, table, domain, env, arena));
                env.pop();
            }
            arena.and(children)
        }
    }
}

/// Per-answer lineage of a query with free variables: grounds the free
/// variables over `adom(table) ∪ adom(Q)` (Fact 2.1) and returns the
/// lineage of each ground sentence whose lineage is not `Bot`, keyed by
/// the tuple (sorted variable order). The probability of each answer is
/// then [`crate::shannon::probability`] of its lineage — this is the
/// provenance-aware form of `answer_marginals`.
pub fn answer_lineages(
    query: &Formula,
    table: &TiTable,
) -> Result<Vec<(Vec<Value>, Lineage)>, FiniteError> {
    let fv: Vec<Var> = free_vars(query).into_iter().collect();
    if fv.is_empty() {
        let l = lineage_of(query, table)?;
        return Ok(if l == Lineage::Bot {
            vec![]
        } else {
            vec![(vec![], l)]
        });
    }
    let mut domain: Vec<Value> = table.active_domain().into_iter().collect();
    for c in infpdb_logic::vars::constants(query) {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let mut out = Vec::new();
    let mut assignment: Vec<(Var, Value)> = Vec::with_capacity(fv.len());
    ground_rec(query, table, &fv, &domain, 0, &mut assignment, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn ground_rec(
    query: &Formula,
    table: &TiTable,
    fv: &[Var],
    domain: &[Value],
    i: usize,
    assignment: &mut Vec<(Var, Value)>,
    out: &mut Vec<(Vec<Value>, Lineage)>,
) -> Result<(), FiniteError> {
    if i == fv.len() {
        let sentence = infpdb_logic::vars::ground(query, assignment);
        let l = lineage_of(&sentence, table)?;
        if l != Lineage::Bot {
            out.push((assignment.iter().map(|(_, v)| v.clone()).collect(), l));
        }
        return Ok(());
    }
    for v in domain {
        assignment.push((fv[i].clone(), v.clone()));
        ground_rec(query, table, fv, domain, i + 1, assignment, out)?;
        assignment.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{Relation, Schema};
    use infpdb_logic::parse;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 1)]).unwrap()
    }

    fn table(ps: &[(i64, f64)], qs: &[(i64, f64)]) -> TiTable {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let q = s.rel_id("S").unwrap();
        let mut t = TiTable::new(s);
        for &(n, p) in ps {
            t.add_fact(Fact::new(r, [Value::int(n)]), p).unwrap();
        }
        for &(n, p) in qs {
            t.add_fact(Fact::new(q, [Value::int(n)]), p).unwrap();
        }
        t
    }

    #[test]
    fn canonical_constructors_fold_constants() {
        assert_eq!(Lineage::and([Lineage::Top, Lineage::Top]), Lineage::Top);
        assert_eq!(
            Lineage::and([Lineage::Var(FactId(0)), Lineage::Bot]),
            Lineage::Bot
        );
        assert_eq!(Lineage::or([]), Lineage::Bot);
        assert_eq!(Lineage::and([]), Lineage::Top);
        assert_eq!(
            Lineage::or([Lineage::Var(FactId(1)), Lineage::Top]),
            Lineage::Top
        );
        // single child unwraps
        assert_eq!(
            Lineage::or([Lineage::Var(FactId(1))]),
            Lineage::Var(FactId(1))
        );
    }

    #[test]
    fn canonical_constructors_sort_flatten_dedup() {
        let a = Lineage::Var(FactId(2));
        let b = Lineage::Var(FactId(1));
        let f = Lineage::and([a.clone(), Lineage::and([b.clone(), a.clone()])]);
        assert_eq!(f, Lineage::And(vec![b, a]));
    }

    #[test]
    fn complementary_pairs_fold() {
        let x = Lineage::Var(FactId(0));
        assert_eq!(Lineage::and([x.clone(), x.clone().negate()]), Lineage::Bot);
        assert_eq!(Lineage::or([x.clone(), x.negate()]), Lineage::Top);
    }

    #[test]
    fn negate_folds() {
        assert_eq!(Lineage::Top.negate(), Lineage::Bot);
        let x = Lineage::Var(FactId(3));
        assert_eq!(x.clone().negate().negate(), x);
    }

    #[test]
    fn lineage_of_existential_is_disjunction_of_vars() {
        let t = table(&[(1, 0.5), (2, 0.5)], &[]);
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        let l = lineage_of(&q, &t).unwrap();
        assert_eq!(
            l,
            Lineage::Or(vec![Lineage::Var(FactId(0)), Lineage::Var(FactId(1))])
        );
        assert_eq!(l.vars().len(), 2);
    }

    #[test]
    fn closed_world_atoms_fold_to_bot() {
        let t = table(&[(1, 0.5)], &[]);
        let q = parse("R(7)", t.schema()).unwrap();
        assert_eq!(lineage_of(&q, &t).unwrap(), Lineage::Bot);
        // constants extend the grounding domain but stay Bot
        let q2 = parse("exists x. R(x) /\\ S(x)", t.schema()).unwrap();
        assert_eq!(lineage_of(&q2, &t).unwrap(), Lineage::Bot);
    }

    #[test]
    fn deterministic_facts_fold() {
        let t = table(&[(1, 1.0), (2, 0.0), (3, 0.5)], &[]);
        let q = parse("R(1)", t.schema()).unwrap();
        assert_eq!(lineage_of(&q, &t).unwrap(), Lineage::Top);
        let q2 = parse("R(2)", t.schema()).unwrap();
        assert_eq!(lineage_of(&q2, &t).unwrap(), Lineage::Bot);
        let q3 = parse("forall x. R(x)", t.schema()).unwrap();
        // = R(1) ∧ R(2) ∧ R(3) = ⊤ ∧ ⊥ ∧ v = ⊥
        assert_eq!(lineage_of(&q3, &t).unwrap(), Lineage::Bot);
    }

    #[test]
    fn join_query_lineage() {
        let t = table(&[(1, 0.5), (2, 0.5)], &[(1, 0.5)]);
        let q = parse("exists x. R(x) /\\ S(x)", t.schema()).unwrap();
        let l = lineage_of(&q, &t).unwrap();
        // only x=1 yields a satisfiable conjunct: R(1) ∧ S(1)
        match &l {
            Lineage::And(cs) => assert_eq!(cs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_atoms_fold() {
        let t = table(&[(1, 0.5)], &[]);
        let q = parse("exists x. x = 1 /\\ R(x)", t.schema()).unwrap();
        assert_eq!(lineage_of(&q, &t).unwrap(), Lineage::Var(FactId(0)));
    }

    #[test]
    fn lineage_rejects_free_variables() {
        let t = table(&[(1, 0.5)], &[]);
        let q = parse("R(x)", t.schema()).unwrap();
        assert!(lineage_of(&q, &t).is_err());
    }

    #[test]
    fn lineage_eval_agrees_with_world_semantics() {
        let t = table(&[(1, 0.5), (2, 0.5)], &[(1, 0.5), (2, 0.5)]);
        let queries = [
            "exists x. R(x) /\\ S(x)",
            "forall x. (R(x) -> S(x))",
            "exists x. R(x) /\\ !S(x)",
            "(exists x. R(x)) /\\ (exists y. S(y))",
        ];
        let pdb = t.worlds().unwrap();
        for qs in queries {
            let q = parse(qs, t.schema()).unwrap();
            let l = lineage_of(&q, &t).unwrap();
            for (world, _) in pdb.space().outcomes() {
                let store =
                    infpdb_core::storage::InstanceStore::build(world, t.interner(), t.schema());
                let direct = infpdb_logic::Evaluator::new(&store, &q)
                    .eval_sentence(&q)
                    .unwrap();
                assert_eq!(
                    l.eval(world),
                    direct,
                    "lineage/world mismatch for {qs} on {world:?}"
                );
            }
        }
    }

    #[test]
    fn assign_cofactors() {
        let x = Lineage::Var(FactId(0));
        let y = Lineage::Var(FactId(1));
        let f = Lineage::or([Lineage::and([x.clone(), y.clone()]), x.clone().negate()]);
        assert_eq!(f.assign(FactId(0), true), y);
        assert_eq!(f.assign(FactId(0), false), Lineage::Top);
        assert_eq!(f.assign(FactId(7), true), f);
    }

    #[test]
    fn size_counts_nodes() {
        let x = Lineage::Var(FactId(0));
        let y = Lineage::Var(FactId(1));
        let f = Lineage::and([x.clone(), y.clone().negate()]);
        assert_eq!(f.size(), 4); // And + Var + Not + Var
        assert_eq!(Lineage::Top.size(), 1);
    }

    #[test]
    fn grounding_domain_includes_query_constants() {
        // Fact 2.1: constant 5 not in adom(table) still participates
        let t = table(&[(1, 0.5)], &[]);
        let q = parse("exists x. x = 5 /\\ !R(x)", t.schema()).unwrap();
        // R(5) is Bot, so !R(5) is Top, and x=5 picks that branch: Top
        assert_eq!(lineage_of(&q, &t).unwrap(), Lineage::Top);
    }

    #[test]
    fn arena_grounding_matches_tree_grounding() {
        let t = table(
            &[(1, 0.5), (2, 0.3), (3, 1.0), (4, 0.0)],
            &[(1, 0.8), (2, 0.1)],
        );
        for qs in [
            "exists x. R(x) /\\ S(x)",
            "forall x. (R(x) -> S(x))",
            "exists x, y. R(x) /\\ S(y) /\\ x != y",
            "exists x. R(x) \\/ S(x)",
            "exists x. x = 5 /\\ !R(x)",
            "exists x. !(R(x) /\\ !R(x))",
        ] {
            let q = parse(qs, t.schema()).unwrap();
            let tree = lineage_of(&q, &t).unwrap();
            let mut arena = LineageArena::new();
            let id = lineage_of_arena(&q, &t, &mut arena).unwrap();
            assert_eq!(arena.to_lineage(id), tree, "{qs}");
        }
    }

    #[test]
    fn arena_grounding_shares_symmetric_substructure() {
        // exists x,y. R(x) ∧ R(y) ∧ x≠y grounds to an Or over n·(n−1)
        // ordered pairs, but only C(n,2) distinct canonical pair-clauses —
        // the arena interns each once.
        let t = table(&[(1, 0.5), (2, 0.3), (3, 0.7), (4, 0.2)], &[]);
        let q = parse("exists x, y. R(x) /\\ R(y) /\\ x != y", t.schema()).unwrap();
        let mut arena = LineageArena::new();
        let id = lineage_of_arena(&q, &t, &mut arena).unwrap();
        // root Or + 6 pair-clauses + 4 vars + the 2 constants
        assert_eq!(arena.reachable(id), 11);
        assert!(arena.stats().intern_hits > 0, "symmetric pairs must dedup");
        // tree size is strictly larger: 12 ordered pairs materialized
        assert!(arena.to_lineage(id).size() > arena.reachable(id));
    }
}

#![warn(missing_docs)]
//! Finite (closed-world) probabilistic databases — the substrate the paper
//! builds on and lifts from.
//!
//! The paper's standard model (Section 1, following Suciu et al. \[37\]): a
//! finite PDB is a probability distribution over finitely many database
//! instances; the central special case is the *tuple-independent* PDB, "a
//! table of all possible facts annotated with their marginal probabilities".
//! Proposition 6.1 lifts "a traditional closed-world query evaluation
//! algorithm for finite tuple-independent PDBs" to infinite ones — this
//! crate provides those algorithms:
//!
//! * [`pdb`] — general finite PDBs as materialized instance spaces.
//! * [`tuple_independent`] — t.i. tables: sampling, instance probabilities,
//!   expected size, the Poisson-binomial size distribution.
//! * [`bid`] — finite block-independent-disjoint tables (Section 4.4's
//!   finite special case): one fact per block, blocks independent.
//! * [`lineage`] — Boolean provenance of an FO query over a t.i. table.
//! * [`arena`] — hash-consed lineage DAGs: canonical node shapes interned
//!   to dense ids, O(1) equality, physically shared substructure.
//! * [`shannon`] — exact inference on lineage by Shannon expansion with
//!   independence decomposition and memoization (a small d-DNNF compiler);
//!   both a boxed-tree reference engine and the production DAG engine.
//! * [`lifted`] — extensional evaluation of hierarchical self-join-free
//!   CQs along `infpdb_logic::safety::SafePlan`s (polynomial time).
//! * [`karp_luby`] — the Karp–Luby FPRAS for monotone (UCQ) lineage:
//!   *multiplicative* guarantees on finite tables.
//! * [`monte_carlo`] — Monte-Carlo estimation with Hoeffding guarantees.
//! * [`worlds`] — brute-force possible-worlds enumeration, the reference
//!   implementation every other engine is validated against.

pub mod arena;
pub mod bid;
pub mod engine;
pub mod karp_luby;
pub mod lifted;
pub mod lineage;
pub mod monte_carlo;
pub mod pdb;
pub mod plan;
pub mod shannon;
pub mod tuple_independent;
pub mod worlds;

pub use arena::{LineageArena, LineageId};
pub use bid::BidTable;
pub use lineage::Lineage;
pub use pdb::FinitePdb;
pub use tuple_independent::TiTable;

/// Errors of the finite engine.
#[derive(Debug, Clone, PartialEq)]
pub enum FiniteError {
    /// Propagated relational-substrate error.
    Core(infpdb_core::CoreError),
    /// Propagated logic error.
    Logic(infpdb_logic::LogicError),
    /// An operation would enumerate `2^n` worlds for too large `n`.
    TooManyWorlds {
        /// Number of probabilistic facts.
        facts: usize,
        /// The enumeration limit.
        limit: usize,
    },
    /// A block's fact probabilities sum to more than 1.
    BlockMassExceedsOne {
        /// Index of the offending block.
        block: usize,
        /// Its total mass.
        mass: f64,
    },
    /// A fact appears twice in a table.
    DuplicateFact(String),
}

impl std::fmt::Display for FiniteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FiniteError::Core(e) => write!(f, "{e}"),
            FiniteError::Logic(e) => write!(f, "{e}"),
            FiniteError::TooManyWorlds { facts, limit } => write!(
                f,
                "enumerating 2^{facts} worlds exceeds the limit 2^{limit}; \
                 use lifted, lineage, or Monte-Carlo inference instead"
            ),
            FiniteError::BlockMassExceedsOne { block, mass } => {
                write!(f, "block {block} has total probability mass {mass} > 1")
            }
            FiniteError::DuplicateFact(s) => write!(f, "duplicate fact {s}"),
        }
    }
}

impl std::error::Error for FiniteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FiniteError::Core(e) => Some(e),
            FiniteError::Logic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<infpdb_core::CoreError> for FiniteError {
    fn from(e: infpdb_core::CoreError) -> Self {
        FiniteError::Core(e)
    }
}

impl From<infpdb_logic::LogicError> for FiniteError {
    fn from(e: infpdb_logic::LogicError) -> Self {
        FiniteError::Logic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = FiniteError::TooManyWorlds {
            facts: 40,
            limit: 25,
        };
        assert!(e.to_string().contains("2^40"));
        assert!(e.source().is_none());
        let c: FiniteError = infpdb_core::CoreError::EmptySpace.into();
        assert!(c.source().is_some());
        let l: FiniteError = infpdb_logic::LogicError::UnknownRelation("R".into()).into();
        assert!(l.to_string().contains("R"));
        assert!(FiniteError::BlockMassExceedsOne {
            block: 2,
            mass: 1.5
        }
        .to_string()
        .contains("1.5"));
        assert!(FiniteError::DuplicateFact("R(1)".into())
            .to_string()
            .contains("R(1)"));
    }
}

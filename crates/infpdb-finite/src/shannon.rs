//! Exact inference on lineage by Shannon expansion.
//!
//! Computes `P(lineage = true)` under independent fact variables — the
//! intensional query evaluation of the finite-PDB literature the paper
//! builds on. The algorithm is a lightweight knowledge compiler:
//!
//! 1. **Independence decomposition** — children of an `And`/`Or` are
//!    grouped into connected components of shared variables by a
//!    single-pass variable→owner union–find (near-linear in the total
//!    number of variable occurrences); independent components multiply
//!    (`And`) or combine by inclusion–exclusion of complements (`Or`).
//!    When every child is a single fact variable the node short-circuits
//!    to one direct log-space product (`var_product`) with no grouping
//!    or per-component recursion at all — the common shape of the wide
//!    independent unions Prop 6.1 truncation produces.
//! 2. **Shannon expansion** — within a connected component, condition on
//!    the most frequent variable: `P(φ) = p·P(φ|v) + (1−p)·P(φ|¬v)`.
//! 3. **Memoization** — canonical sub-lineages cache their probability, so
//!    shared substructure is solved once.
//!
//! Worst case remains exponential (#P-hardness of general query
//! probability is inherited from the finite theory); hierarchical queries
//! should use [`crate::lifted`] instead.
//!
//! Two engines share this algorithm:
//!
//! * the **tree reference engine** ([`probability`] and friends) walks the
//!   boxed [`Lineage`] tree and keys its memo by cloned subtrees — simple,
//!   slow, kept as the oracle the DAG engine is differentially tested
//!   against;
//! * the **DAG production engine** ([`probability_dag`] and friends) runs
//!   on a hash-consed [`LineageArena`], keys its memo by dense
//!   [`LineageId`]s (`O(1)` probes instead of `O(subtree)` rehashes) and
//!   reads per-node *cached* variable sets, so the independence
//!   decomposition stops recomputing free-variable scans.
//!
//! Both perform bit-for-bit the same floating-point operations: the arena's
//! canonical child order is the tree's structural order, the union–find
//! grouping and variable selection are ported verbatim, and the arithmetic
//! expression shapes are identical. The `arena_equivalence` integration
//! suite asserts exact `f64` equality on hundreds of random formulas.

use crate::arena::{ArenaStats, LineageArena, LineageId, LineageNode};
use crate::lineage::Lineage;
use infpdb_core::fact::FactId;
use std::collections::HashMap;

/// Exact probability of `lineage` being true when variable `v` is true
/// independently with probability `probs(v)`.
pub fn probability<F: Fn(FactId) -> f64>(lineage: &Lineage, probs: &F) -> f64 {
    let mut memo: HashMap<Lineage, f64> = HashMap::new();
    let mut stats = Stats::default();
    prob_rec(lineage, probs, &mut memo, &mut stats)
}

/// Instrumented variant returning the compilation statistics.
pub fn probability_with_stats<F: Fn(FactId) -> f64>(lineage: &Lineage, probs: &F) -> (f64, Stats) {
    let mut memo: HashMap<Lineage, f64> = HashMap::new();
    let mut stats = Stats::default();
    let p = prob_rec(lineage, probs, &mut memo, &mut stats);
    (p, stats)
}

/// A shared countdown of Shannon expansions.
///
/// One budget instance is threaded by `&mut` through an *entire*
/// evaluation, so every sibling subproblem draws from the same pool and
/// `max_expansions` bounds **total** work, not per-branch work — the
/// serve layer's graceful degradation (fall back to Monte Carlo when
/// exact inference is too expensive) depends on this being a global
/// bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionBudget {
    remaining: usize,
}

impl ExpansionBudget {
    /// A budget allowing exactly `max_expansions` Shannon expansions.
    pub fn new(max_expansions: usize) -> Self {
        Self {
            remaining: max_expansions,
        }
    }

    /// Draws one expansion from the pool; `false` when exhausted.
    #[must_use]
    pub fn try_spend(&mut self) -> bool {
        match self.remaining.checked_sub(1) {
            Some(r) => {
                self.remaining = r;
                true
            }
            None => false,
        }
    }

    /// Expansions left in the pool.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

/// Budgeted variant: gives up with `None` once `max_expansions` Shannon
/// expansions have been performed. Inference on lineage is #P-hard in
/// general; long-running callers (servers, benchmark harnesses) should use
/// this and fall back to Monte Carlo when the budget trips.
///
/// The budget is a single [`ExpansionBudget`] countdown shared across the
/// whole recursion (not copied per branch), so it bounds the total number
/// of expansions.
pub fn probability_with_budget<F: Fn(FactId) -> f64>(
    lineage: &Lineage,
    probs: &F,
    max_expansions: usize,
) -> Option<(f64, Stats)> {
    let mut memo: HashMap<Lineage, f64> = HashMap::new();
    let mut stats = Stats::default();
    let mut budget = ExpansionBudget::new(max_expansions);
    let p = prob_rec_budget(lineage, probs, &mut memo, &mut stats, &mut budget)?;
    Some((p, stats))
}

fn prob_rec_budget<F: Fn(FactId) -> f64>(
    l: &Lineage,
    probs: &F,
    memo: &mut HashMap<Lineage, f64>,
    stats: &mut Stats,
    budget: &mut ExpansionBudget,
) -> Option<f64> {
    match l {
        Lineage::Top => return Some(1.0),
        Lineage::Bot => return Some(0.0),
        Lineage::Var(id) => return Some(probs(*id)),
        Lineage::Not(g) => return Some(1.0 - prob_rec_budget(g, probs, memo, stats, budget)?),
        _ => {}
    }
    if let Some(&p) = memo.get(l) {
        stats.cache_hits += 1;
        return Some(p);
    }
    let p = match l {
        Lineage::And(children) | Lineage::Or(children) => {
            let is_and = matches!(l, Lineage::And(_));
            // Every child a (distinct) fact variable ⇒ all components are
            // single facts: one direct log-space product, no grouping, no
            // per-component recursion, no budget spent.
            if children.iter().all(|c| matches!(c, Lineage::Var(_))) {
                stats.decompositions += 1;
                let p = var_product(
                    children.iter().map(|c| match c {
                        Lineage::Var(id) => probs(*id),
                        _ => unreachable!("checked all-Var"),
                    }),
                    is_and,
                );
                memo.insert(l.clone(), p);
                return Some(p);
            }
            let comps = components(children);
            if comps.len() > 1 {
                stats.decompositions += 1;
                let mut acc = 1.0;
                for comp in comps {
                    let sub = if comp.len() == 1 {
                        comp.into_iter().next().expect("len 1")
                    } else if is_and {
                        Lineage::and(comp)
                    } else {
                        Lineage::or(comp)
                    };
                    let ps = prob_rec_budget(&sub, probs, memo, stats, budget)?;
                    acc *= if is_and { ps } else { 1.0 - ps };
                }
                if is_and {
                    acc
                } else {
                    1.0 - acc
                }
            } else {
                if !budget.try_spend() {
                    return None;
                }
                stats.expansions += 1;
                let v = most_frequent_var(children).expect("connected component has vars");
                let pv = probs(v);
                let pos = l.assign(v, true);
                let neg = l.assign(v, false);
                pv * prob_rec_budget(&pos, probs, memo, stats, budget)?
                    + (1.0 - pv) * prob_rec_budget(&neg, probs, memo, stats, budget)?
            }
        }
        _ => unreachable!("leaf cases handled above"),
    };
    memo.insert(l.clone(), p);
    Some(p)
}

/// Direct log-space evaluation of an `And`/`Or` whose children are all
/// (distinct, by canonicalization) fact variables: `P(∧) = exp(∑ ln pᵢ)`,
/// `P(∨) = 1 − exp(∑ ln(1 − pᵢ))`, with compensated summation so wide
/// independent unions (the Prop 6.1 truncation prefixes) lose no mass to
/// rounding. Used identically by both engines, so the fast path keeps
/// bit-for-bit tree/DAG equivalence.
///
/// Flattened (see `infpdb_math::flat`): probabilities are gathered into a
/// per-thread contiguous scratch buffer, the transcendental map runs over
/// the slice with no loop-carried state, and the compensated fold runs
/// separately in the identical element order — so the result is
/// bit-for-bit the fused loop's, while the gather and map passes are free
/// of the serial compensation chain.
fn var_product(ps: impl Iterator<Item = f64>, is_and: bool) -> f64 {
    thread_local! {
        static SCRATCH: std::cell::RefCell<(Vec<f64>, Vec<f64>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    }
    SCRATCH.with(|s| {
        let (gather, logs) = &mut *s.borrow_mut();
        gather.clear();
        gather.extend(ps);
        if is_and {
            infpdb_math::flat::log_product(gather, logs)
        } else {
            infpdb_math::flat::log_product_one_minus(gather, logs)
        }
    })
}

/// Compilation statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Shannon expansions performed.
    pub expansions: usize,
    /// Memo hits.
    pub cache_hits: usize,
    /// Independent-component decompositions applied.
    pub decompositions: usize,
}

fn prob_rec<F: Fn(FactId) -> f64>(
    l: &Lineage,
    probs: &F,
    memo: &mut HashMap<Lineage, f64>,
    stats: &mut Stats,
) -> f64 {
    match l {
        Lineage::Top => return 1.0,
        Lineage::Bot => return 0.0,
        Lineage::Var(id) => return probs(*id),
        Lineage::Not(g) => return 1.0 - prob_rec(g, probs, memo, stats),
        _ => {}
    }
    if let Some(&p) = memo.get(l) {
        stats.cache_hits += 1;
        return p;
    }
    let p = match l {
        Lineage::And(children) | Lineage::Or(children) => {
            let is_and = matches!(l, Lineage::And(_));
            // Every child a (distinct) fact variable ⇒ all components are
            // single facts: one direct log-space product, no grouping, no
            // per-component recursion.
            if children.iter().all(|c| matches!(c, Lineage::Var(_))) {
                stats.decompositions += 1;
                let p = var_product(
                    children.iter().map(|c| match c {
                        Lineage::Var(id) => probs(*id),
                        _ => unreachable!("checked all-Var"),
                    }),
                    is_and,
                );
                memo.insert(l.clone(), p);
                return p;
            }
            let comps = components(children);
            if comps.len() > 1 {
                stats.decompositions += 1;
                // Independent components: P(∧) = ∏ P, P(∨) = 1 − ∏ (1 − P).
                let mut acc = 1.0;
                for comp in comps {
                    let sub = if comp.len() == 1 {
                        comp.into_iter().next().expect("len 1")
                    } else if is_and {
                        Lineage::and(comp)
                    } else {
                        Lineage::or(comp)
                    };
                    let ps = prob_rec(&sub, probs, memo, stats);
                    acc *= if is_and { ps } else { 1.0 - ps };
                }
                if is_and {
                    acc
                } else {
                    1.0 - acc
                }
            } else {
                // Connected: Shannon expansion on the most frequent var.
                stats.expansions += 1;
                let v = most_frequent_var(children).expect("connected component has vars");
                let pv = probs(v);
                let pos = l.assign(v, true);
                let neg = l.assign(v, false);
                pv * prob_rec(&pos, probs, memo, stats)
                    + (1.0 - pv) * prob_rec(&neg, probs, memo, stats)
            }
        }
        _ => unreachable!("leaf cases handled above"),
    };
    memo.insert(l.clone(), p);
    p
}

/// Union–find over child indices with path halving; unions always point
/// the larger root at the smaller one, so a component's representative is
/// its smallest member index and first-appearance output order coincides
/// with ascending-smallest-member order (the *canonical component order*
/// both engines and the parallel combiner rely on).
fn uf_find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

fn uf_union(parent: &mut [usize], i: usize, j: usize) {
    let (ri, rj) = (uf_find(parent, i), uf_find(parent, j));
    if ri != rj {
        parent[ri.max(rj)] = ri.min(rj);
    }
}

/// Unions children sharing a variable in **one pass over each child's
/// variable set**: the first child owning a variable is recorded in
/// `owner`, and every later child mentioning it is unioned with that
/// owner. Near-linear (inverse-Ackermann union–find) in the total number
/// of variable occurrences — replacing the old pairwise-intersection scan
/// that was quadratic in the child count.
fn group_indices<I>(n: usize, vars_of: impl Fn(usize) -> I) -> Vec<Vec<usize>>
where
    I: IntoIterator<Item = FactId>,
{
    let mut parent: Vec<usize> = (0..n).collect();
    let mut owner: HashMap<FactId, usize> = HashMap::new();
    for i in 0..n {
        for v in vars_of(i) {
            match owner.entry(v) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    uf_union(&mut parent, i, *e.get());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }
    // canonical component order: first appearance = smallest member
    let mut slot: Vec<Option<usize>> = vec![None; n];
    let mut out: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let r = uf_find(&mut parent, i);
        let s = match slot[r] {
            Some(s) => s,
            None => {
                out.push(Vec::new());
                slot[r] = Some(out.len() - 1);
                out.len() - 1
            }
        };
        out[s].push(i);
    }
    out
}

/// Groups sibling lineages into connected components of shared variables.
fn components(children: &[Lineage]) -> Vec<Vec<Lineage>> {
    let var_sets: Vec<_> = children.iter().map(Lineage::vars).collect();
    group_indices(children.len(), |i| var_sets[i].iter().copied())
        .into_iter()
        .map(|comp| comp.into_iter().map(|i| children[i].clone()).collect())
        .collect()
}

/// The variable occurring in the most children (ties broken by id).
fn most_frequent_var(children: &[Lineage]) -> Option<FactId> {
    let mut counts: std::collections::BTreeMap<FactId, usize> = Default::default();
    for c in children {
        for v in c.vars() {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(id, c)| (c, std::cmp::Reverse(id)))
        .map(|(id, _)| id)
}

// ---------------------------------------------------------------------------
// DAG engine: the same algorithm on a hash-consed arena.
// ---------------------------------------------------------------------------

/// Memo of the DAG engine: probabilities indexed by dense [`LineageId`].
///
/// Probes are an array index instead of a whole-subtree rehash. The table
/// grows as `assign` interns cofactor nodes mid-evaluation.
#[derive(Debug, Default)]
struct DagMemo {
    table: Vec<Option<f64>>,
}

impl DagMemo {
    fn get(&self, id: LineageId) -> Option<f64> {
        self.table.get(id.0 as usize).copied().flatten()
    }

    fn insert(&mut self, id: LineageId, p: f64) {
        let i = id.0 as usize;
        if self.table.len() <= i {
            self.table.resize(i + 1, None);
        }
        self.table[i] = Some(p);
    }
}

/// Exact probability of arena node `root` being true when variable `v` is
/// true independently with probability `probs(v)`.
///
/// The arena is `&mut` because Shannon cofactors intern new nodes; reusing
/// one arena across many roots (the grounding arena of an evaluation)
/// shares both structure and, via [`probability_dag_with_stats`], memo
/// effort.
pub fn probability_dag<F: Fn(FactId) -> f64>(
    arena: &mut LineageArena,
    root: LineageId,
    probs: &F,
) -> f64 {
    probability_dag_with_stats(arena, root, probs).0
}

/// Instrumented variant returning the compilation statistics.
pub fn probability_dag_with_stats<F: Fn(FactId) -> f64>(
    arena: &mut LineageArena,
    root: LineageId,
    probs: &F,
) -> (f64, Stats) {
    let mut memo = DagMemo::default();
    let mut stats = Stats::default();
    let p = prob_rec_dag(arena, root, probs, &mut memo, &mut stats);
    (p, stats)
}

/// Budgeted variant of [`probability_dag`]: `None` once the shared
/// [`ExpansionBudget`] pool of `max_expansions` is exhausted.
pub fn probability_dag_with_budget<F: Fn(FactId) -> f64>(
    arena: &mut LineageArena,
    root: LineageId,
    probs: &F,
    max_expansions: usize,
) -> Option<(f64, Stats)> {
    let mut memo = DagMemo::default();
    let mut stats = Stats::default();
    let mut budget = ExpansionBudget::new(max_expansions);
    let p = prob_rec_dag_budget(arena, root, probs, &mut memo, &mut stats, &mut budget)?;
    Some((p, stats))
}

fn prob_rec_dag<F: Fn(FactId) -> f64>(
    arena: &mut LineageArena,
    id: LineageId,
    probs: &F,
    memo: &mut DagMemo,
    stats: &mut Stats,
) -> f64 {
    let (is_and, children) = match arena.node(id) {
        LineageNode::Top => return 1.0,
        LineageNode::Bot => return 0.0,
        LineageNode::Var(v) => return probs(*v),
        LineageNode::Not(g) => {
            let g = *g;
            return 1.0 - prob_rec_dag(arena, g, probs, memo, stats);
        }
        LineageNode::And(gs) => (true, gs.to_vec()),
        LineageNode::Or(gs) => (false, gs.to_vec()),
    };
    if let Some(p) = memo.get(id) {
        stats.cache_hits += 1;
        return p;
    }
    // Every child a (distinct) fact variable ⇒ all components are single
    // facts: one direct log-space product, no grouping, no cofactors.
    if all_vars_dag(arena, &children) {
        stats.decompositions += 1;
        let p = var_product(children.iter().map(|&c| var_prob(arena, c, probs)), is_and);
        memo.insert(id, p);
        return p;
    }
    let comps = components_dag(arena, &children);
    let p = if comps.len() > 1 {
        stats.decompositions += 1;
        // Independent components: P(∧) = ∏ P, P(∨) = 1 − ∏ (1 − P).
        let mut acc = 1.0;
        for comp in comps {
            let sub = if comp.len() == 1 {
                comp[0]
            } else if is_and {
                arena.and(comp)
            } else {
                arena.or(comp)
            };
            let ps = prob_rec_dag(arena, sub, probs, memo, stats);
            acc *= if is_and { ps } else { 1.0 - ps };
        }
        if is_and {
            acc
        } else {
            1.0 - acc
        }
    } else {
        // Connected: Shannon expansion on the most frequent var.
        stats.expansions += 1;
        let v = most_frequent_var_dag(arena, &children).expect("connected component has vars");
        let pv = probs(v);
        let pos = arena.assign(id, v, true);
        let neg = arena.assign(id, v, false);
        pv * prob_rec_dag(arena, pos, probs, memo, stats)
            + (1.0 - pv) * prob_rec_dag(arena, neg, probs, memo, stats)
    };
    memo.insert(id, p);
    p
}

fn prob_rec_dag_budget<F: Fn(FactId) -> f64>(
    arena: &mut LineageArena,
    id: LineageId,
    probs: &F,
    memo: &mut DagMemo,
    stats: &mut Stats,
    budget: &mut ExpansionBudget,
) -> Option<f64> {
    let (is_and, children) = match arena.node(id) {
        LineageNode::Top => return Some(1.0),
        LineageNode::Bot => return Some(0.0),
        LineageNode::Var(v) => return Some(probs(*v)),
        LineageNode::Not(g) => {
            let g = *g;
            return Some(1.0 - prob_rec_dag_budget(arena, g, probs, memo, stats, budget)?);
        }
        LineageNode::And(gs) => (true, gs.to_vec()),
        LineageNode::Or(gs) => (false, gs.to_vec()),
    };
    if let Some(p) = memo.get(id) {
        stats.cache_hits += 1;
        return Some(p);
    }
    // Every child a (distinct) fact variable ⇒ all components are single
    // facts: one direct log-space product, no grouping, no budget spent.
    if all_vars_dag(arena, &children) {
        stats.decompositions += 1;
        let p = var_product(children.iter().map(|&c| var_prob(arena, c, probs)), is_and);
        memo.insert(id, p);
        return Some(p);
    }
    let comps = components_dag(arena, &children);
    let p = if comps.len() > 1 {
        stats.decompositions += 1;
        let mut acc = 1.0;
        for comp in comps {
            let sub = if comp.len() == 1 {
                comp[0]
            } else if is_and {
                arena.and(comp)
            } else {
                arena.or(comp)
            };
            let ps = prob_rec_dag_budget(arena, sub, probs, memo, stats, budget)?;
            acc *= if is_and { ps } else { 1.0 - ps };
        }
        if is_and {
            acc
        } else {
            1.0 - acc
        }
    } else {
        if !budget.try_spend() {
            return None;
        }
        stats.expansions += 1;
        let v = most_frequent_var_dag(arena, &children).expect("connected component has vars");
        let pv = probs(v);
        let pos = arena.assign(id, v, true);
        let neg = arena.assign(id, v, false);
        pv * prob_rec_dag_budget(arena, pos, probs, memo, stats, budget)?
            + (1.0 - pv) * prob_rec_dag_budget(arena, neg, probs, memo, stats, budget)?
    };
    memo.insert(id, p);
    Some(p)
}

/// Groups sibling nodes into connected components of shared variables —
/// the same single-pass union–find (including grouping order) as the tree
/// engine's [`components`], reading cached variable sets instead of
/// scanning subtrees.
fn components_dag(arena: &LineageArena, children: &[LineageId]) -> Vec<Vec<LineageId>> {
    group_indices(children.len(), |i| arena.vars(children[i]).iter().copied())
        .into_iter()
        .map(|comp| comp.into_iter().map(|i| children[i]).collect())
        .collect()
}

/// Whether every child node is a plain fact variable.
fn all_vars_dag(arena: &LineageArena, children: &[LineageId]) -> bool {
    children
        .iter()
        .all(|&c| matches!(arena.node(c), LineageNode::Var(_)))
}

/// The probability of a node known to be a `Var`.
fn var_prob<F: Fn(FactId) -> f64>(arena: &LineageArena, id: LineageId, probs: &F) -> f64 {
    match arena.node(id) {
        LineageNode::Var(v) => probs(*v),
        _ => unreachable!("checked all-Var"),
    }
}

/// The variable occurring in the most children (ties broken by id) —
/// mirrors the tree engine's [`most_frequent_var`] over cached sets.
fn most_frequent_var_dag(arena: &LineageArena, children: &[LineageId]) -> Option<FactId> {
    let mut counts: std::collections::BTreeMap<FactId, usize> = Default::default();
    for &c in children {
        for &v in arena.vars(c) {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(id, c)| (c, std::cmp::Reverse(id)))
        .map(|(id, _)| id)
}

// ---------------------------------------------------------------------------
// Intra-query parallel evaluation: fork-join over independent components.
// ---------------------------------------------------------------------------

/// Default minimum variable count for a component to be worth shipping to
/// a worker thread; smaller subproblems stay sequential.
pub const DEFAULT_MIN_TASK_VARS: usize = 8;

/// How much intra-query parallelism [`probability_dag_parallel`] may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelPolicy {
    /// Worker threads. `0`/`1` mean fully sequential evaluation.
    pub threads: usize,
    /// Minimum total variable occurrences a component must have to be
    /// dispatched as a parallel task (the fork threshold).
    pub min_task_vars: usize,
}

impl ParallelPolicy {
    /// `threads` workers with the default task-size threshold.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            min_task_vars: DEFAULT_MIN_TASK_VARS,
        }
    }
}

impl Default for ParallelPolicy {
    fn default() -> Self {
        Self::with_threads(1)
    }
}

/// What the parallel evaluator actually did, for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParReport {
    /// Independent components dispatched to worker threads.
    pub tasks: usize,
    /// `true` when ≥ 2 threads were allowed but the root decomposed into
    /// fewer than two above-threshold components, so evaluation fell back
    /// to the plain sequential engine.
    pub fallback_seq: bool,
}

/// A self-contained unit of parallel work: owns its arena clone, its
/// gathered fact probabilities, and the channel it reports through.
pub type ParTask = Box<dyn FnOnce() + Send + 'static>;

/// Runs a batch of independent, self-contained component tasks.
///
/// The evaluator hands every heavy component of a decomposed query to an
/// executor as a [`ParTask`] and collects results afterwards, so *where*
/// and *in what order* tasks run is entirely the executor's business —
/// a fixed fork-join pool ([`ScopedExecutor`]), a work-stealing server
/// scheduler, or plain inline execution all produce bit-identical
/// answers, because results are combined in canonical component order on
/// the calling thread regardless of execution order.
pub trait TaskExecutor: Sync {
    /// Executes tasks and returns once none of them will run anymore.
    ///
    /// `run_tasks` is a completion barrier: when it returns, every task
    /// has either finished or been *skipped* (dropped unrun — e.g. the
    /// owning request was cancelled mid-flight). Skipping is observable
    /// to the caller as a missing per-component result. A panicking task
    /// must propagate its payload to this call, not abandon the barrier.
    fn run_tasks(&self, tasks: Vec<ParTask>);
}

/// The default executor: fork-join over scoped threads, at most
/// `threads` at a time, tasks striped round-robin by slot index. Never
/// skips a task; panics propagate on join.
#[derive(Debug, Clone, Copy)]
pub struct ScopedExecutor {
    /// Maximum simultaneous worker threads (`0` is treated as 1).
    pub threads: usize,
}

impl TaskExecutor for ScopedExecutor {
    fn run_tasks(&self, tasks: Vec<ParTask>) {
        if tasks.is_empty() {
            return;
        }
        let workers = self.threads.max(1).min(tasks.len());
        let mut lanes: Vec<Vec<ParTask>> = (0..workers).map(|_| Vec::new()).collect();
        for (slot, t) in tasks.into_iter().enumerate() {
            lanes[slot % workers].push(t);
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = lanes
                .into_iter()
                .map(|lane| {
                    s.spawn(move || {
                        for t in lane {
                            t();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("parallel evaluator worker panicked");
            }
        });
    }
}

/// [`probability_dag_with_stats`] with root-level fork-join parallelism
/// over independent components, plus the post-evaluation [`ArenaStats`]
/// (merged across worker arenas) and a [`ParReport`].
///
/// **Determinism contract:** the `f64` *bit pattern*, the [`Stats`]
/// counters, and the merged [`ArenaStats`] are identical to the
/// sequential engine for every thread count. Forking happens only at the
/// root decomposition; each component is evaluated by the unchanged
/// sequential recursion on a private clone of the arena (the memoized
/// structural comparator makes `&LineageArena` non-`Sync`), and
/// per-component probabilities are combined on the calling thread in
/// canonical component order — exactly the sequential multiplication
/// order. Work counters are sums, so merging is order-free; components
/// are variable-disjoint, so a worker's cofactor nodes can neither equal
/// nor intern-hit another component's, and node/intern-hit deltas add
/// exactly. Per-component memo tables are likewise exact: a memo entry
/// only ever mentions one component's variables, so the sequential
/// engine's shared table never produces a cross-component hit.
pub fn probability_dag_parallel<F>(
    arena: &mut LineageArena,
    root: LineageId,
    probs: &F,
    policy: ParallelPolicy,
) -> (f64, Stats, ArenaStats, ParReport)
where
    F: Fn(FactId) -> f64 + Sync,
{
    let exec = ScopedExecutor {
        threads: policy.threads,
    };
    probability_dag_parallel_exec(arena, root, probs, policy, &exec)
        .expect("ScopedExecutor runs every task")
}

/// [`probability_dag_parallel`] with a caller-supplied [`TaskExecutor`].
///
/// Each heavy component becomes one independently schedulable [`ParTask`]
/// owning a private arena clone and a dense gather of its fact
/// probabilities, so tasks are `'static` and can be queued, stolen, or
/// dropped by the executor. Light (below-threshold) components run on the
/// calling thread. Returns `None` if the executor skipped any task
/// (a cancelled request); [`ScopedExecutor`] never skips.
///
/// The determinism contract of [`probability_dag_parallel`] holds for
/// *every* executor: combination happens here in canonical component
/// order, and per-component arena deltas add exactly by
/// variable-disjointness — per-component clones sum to the same merged
/// [`ArenaStats`] as per-worker clones or the sequential engine.
pub fn probability_dag_parallel_exec<F>(
    arena: &mut LineageArena,
    root: LineageId,
    probs: &F,
    policy: ParallelPolicy,
    exec: &dyn TaskExecutor,
) -> Option<(f64, Stats, ArenaStats, ParReport)>
where
    F: Fn(FactId) -> f64,
{
    if policy.threads < 2 {
        let (p, stats) = probability_dag_with_stats(arena, root, probs);
        return Some((p, stats, arena.stats(), ParReport::default()));
    }
    fn seq_fallback<F: Fn(FactId) -> f64>(
        arena: &mut LineageArena,
        root: LineageId,
        probs: &F,
    ) -> Option<(f64, Stats, ArenaStats, ParReport)> {
        let (p, stats) = probability_dag_with_stats(arena, root, probs);
        Some((
            p,
            stats,
            arena.stats(),
            ParReport {
                tasks: 0,
                fallback_seq: true,
            },
        ))
    }
    // Peel the top-level `Not` chain: sequentially each level contributes
    // `1 − P(child)` with no counter traffic; replayed after the join.
    let mut flips = 0usize;
    let mut top = root;
    while let LineageNode::Not(g) = arena.node(top) {
        top = *g;
        flips += 1;
    }
    let (is_and, children) = match arena.node(top) {
        LineageNode::And(gs) => (true, gs.to_vec()),
        LineageNode::Or(gs) => (false, gs.to_vec()),
        // constant or single fact: trivially sequential
        _ => return seq_fallback(arena, root, probs),
    };
    // An all-Var root is the sequential fast path already — nothing to fork.
    if all_vars_dag(arena, &children) {
        return seq_fallback(arena, root, probs);
    }
    let comps = components_dag(arena, &children);
    let is_heavy: Vec<bool> = comps
        .iter()
        .map(|comp| {
            comp.iter().map(|&c| arena.vars(c).len()).sum::<usize>() >= policy.min_task_vars
        })
        .collect();
    let heavy: Vec<usize> = (0..comps.len()).filter(|&i| is_heavy[i]).collect();
    if comps.len() < 2 || heavy.len() < 2 {
        return seq_fallback(arena, root, probs);
    }
    // Replay the sequential root decomposition: intern every component's
    // sub-node up front (var-disjointness makes the interning deltas
    // order-independent), snapshot the arena, then fork.
    let mut stats = Stats {
        decompositions: 1,
        ..Stats::default()
    };
    let subs: Vec<LineageId> = comps
        .iter()
        .map(|comp| {
            if comp.len() == 1 {
                comp[0]
            } else if is_and {
                arena.and(comp.iter().copied())
            } else {
                arena.or(comp.iter().copied())
            }
        })
        .collect();
    let base = arena.stats();
    // Dense gather of every fact probability under the root, shared by all
    // tasks: the same f64 values `probs` returns, indexed by fact id, so
    // tasks need no reference to the caller's closure to be `'static`.
    let dense: std::sync::Arc<Vec<f64>> = {
        let vs = arena.vars_arc(top);
        let len = vs.iter().map(|f| f.0 as usize + 1).max().unwrap_or(0);
        let mut d = vec![0.0f64; len];
        for &f in vs.iter() {
            d[f.0 as usize] = probs(f);
        }
        std::sync::Arc::new(d)
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let tasks: Vec<ParTask> = heavy
        .iter()
        .map(|&ci| {
            let cl = arena.clone();
            let sub = subs[ci];
            let pv = std::sync::Arc::clone(&dense);
            let tx = tx.clone();
            Box::new(move || {
                let mut cl = cl;
                let pr = |id: FactId| pv[id.0 as usize];
                let mut memo = DagMemo::default();
                let mut st = Stats::default();
                let p = prob_rec_dag(&mut cl, sub, &pr, &mut memo, &mut st);
                let _ = tx.send((ci, p, st, cl.stats()));
            }) as ParTask
        })
        .collect();
    drop(tx);
    // Below-threshold components run on the calling thread. They touch the
    // owner arena only — clones were snapshotted above, so per-task deltas
    // stay relative to `base` no matter the interleaving.
    let mut results: Vec<Option<(f64, Stats)>> = vec![None; subs.len()];
    for (ci, &sub) in subs.iter().enumerate() {
        if is_heavy[ci] {
            continue;
        }
        let mut memo = DagMemo::default();
        let mut st = Stats::default();
        let p = prob_rec_dag(arena, sub, probs, &mut memo, &mut st);
        results[ci] = Some((p, st));
    }
    exec.run_tasks(tasks);
    let mut worker_delta = ArenaStats::default();
    for (ci, p, st, cl_stats) in rx.try_iter() {
        results[ci] = Some((p, st));
        worker_delta.nodes += cl_stats.nodes - base.nodes;
        worker_delta.intern_hits += cl_stats.intern_hits - base.intern_hits;
    }
    if results.iter().any(|r| r.is_none()) {
        // the executor skipped at least one task (cancelled request)
        return None;
    }
    // Combine in canonical component order — the sequential multiplication
    // order — so the f64 result is bit-for-bit the sequential one.
    let mut acc = 1.0;
    for r in &results {
        let (ps, st) = r.expect("every component evaluated");
        acc *= if is_and { ps } else { 1.0 - ps };
        stats.expansions += st.expansions;
        stats.cache_hits += st.cache_hits;
        stats.decompositions += st.decompositions;
    }
    let mut p = if is_and { acc } else { 1.0 - acc };
    for _ in 0..flips {
        p = 1.0 - p;
    }
    let main_stats = arena.stats();
    let merged = ArenaStats {
        nodes: main_stats.nodes + worker_delta.nodes,
        intern_hits: main_stats.intern_hits + worker_delta.intern_hits,
    };
    Some((
        p,
        stats,
        merged,
        ParReport {
            tasks: heavy.len(),
            fallback_seq: false,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::lineage_of;
    use crate::TiTable;
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{Relation, Schema};
    use infpdb_core::value::Value;
    use infpdb_logic::parse;

    fn v(i: u32) -> Lineage {
        Lineage::Var(FactId(i))
    }

    #[test]
    fn leaves() {
        let p = |_: FactId| 0.3;
        assert_eq!(probability(&Lineage::Top, &p), 1.0);
        assert_eq!(probability(&Lineage::Bot, &p), 0.0);
        assert_eq!(probability(&v(0), &p), 0.3);
        assert!((probability(&v(0).negate(), &p) - 0.7).abs() < 1e-15);
    }

    #[test]
    fn independent_and_or() {
        let probs = |id: FactId| [0.5, 0.4, 0.0][id.0 as usize];
        let f = Lineage::and([v(0), v(1)]);
        assert!((probability(&f, &probs) - 0.2).abs() < 1e-15);
        let g = Lineage::or([v(0), v(1)]);
        assert!((probability(&g, &probs) - 0.7).abs() < 1e-15);
    }

    /// Regression guard for the union-find grouping + all-Var fast path:
    /// an n-fact independent union must cost O(n) recorded operations,
    /// not the Θ(n²) of pairwise component intersection. The constant is
    /// generous (4·n) so legitimate bookkeeping changes don't trip it,
    /// while a quadratic regression at n = 4096 overshoots by ~10³×.
    #[test]
    fn independent_union_op_counts_grow_linearly() {
        let probs = |id: FactId| 0.2 + 0.5 / (2.0 + f64::from(id.0));
        for n in [512u32, 4096] {
            // Or of n/2 var-disjoint And-pairs, both engines
            let f = Lineage::or((0..n / 2).map(|i| Lineage::and([v(2 * i), v(2 * i + 1)])));
            let (p_tree, stats) = probability_with_stats(&f, &probs);
            let ops = stats.expansions + stats.decompositions;
            assert!(
                ops <= 4 * n as usize,
                "tree: {ops} ops for n = {n} is not O(n)"
            );
            assert_eq!(stats.expansions, 0, "independent union needs no Shannon");

            let mut arena = LineageArena::new();
            let comps: Vec<LineageId> = (0..n / 2)
                .map(|i| {
                    let a = arena.var(FactId(2 * i));
                    let b = arena.var(FactId(2 * i + 1));
                    arena.and([a, b])
                })
                .collect();
            let root = arena.or(comps);
            let (p_dag, dstats) = probability_dag_with_stats(&mut arena, root, &probs);
            let dops = dstats.expansions + dstats.decompositions;
            assert!(dops <= 4 * n as usize, "dag: {dops} ops for n = {n}");
            assert_eq!(dstats.expansions, 0);
            assert_eq!(p_tree.to_bits(), p_dag.to_bits());
        }
    }

    /// An Or (or And) whose children are all plain facts is a single
    /// decomposition — the log-space product fast path, no per-component
    /// recursion.
    #[test]
    fn all_var_union_is_one_decomposition() {
        let probs = |id: FactId| 1.0 / (3.0 + f64::from(id.0));
        let f = Lineage::or((0..64).map(v));
        let (p, stats) = probability_with_stats(&f, &probs);
        assert_eq!(stats.expansions, 0);
        assert_eq!(stats.decompositions, 1);
        let mut direct = 1.0;
        for i in 0..64u32 {
            direct *= 1.0 - probs(FactId(i));
        }
        assert!((p - (1.0 - direct)).abs() < 1e-12);

        let mut arena = LineageArena::new();
        let vars: Vec<LineageId> = (0..64).map(|i| arena.var(FactId(i))).collect();
        let root = arena.and(vars);
        let (q, dstats) = probability_dag_with_stats(&mut arena, root, &probs);
        assert_eq!(dstats.expansions, 0);
        assert_eq!(dstats.decompositions, 1);
        assert!(q > 0.0 && q < 1.0e-10); // product of 64 small probabilities
    }

    #[test]
    fn shared_variable_forces_shannon() {
        // (x ∧ y) ∨ (x ∧ z): P = p_x · P(y ∨ z)
        let probs = |id: FactId| [0.5, 0.4, 0.2][id.0 as usize];
        let f = Lineage::or([Lineage::and([v(0), v(1)]), Lineage::and([v(0), v(2)])]);
        let expected = 0.5 * (1.0 - 0.6 * 0.8);
        let (p, stats) = probability_with_stats(&f, &probs);
        assert!((p - expected).abs() < 1e-12);
        assert!(stats.expansions >= 1);
    }

    #[test]
    fn xor_style_formula() {
        // (x ∧ ¬y) ∨ (¬x ∧ y)
        let probs = |id: FactId| [0.3, 0.6][id.0 as usize];
        let f = Lineage::or([
            Lineage::and([v(0), v(1).negate()]),
            Lineage::and([v(0).negate(), v(1)]),
        ]);
        let expected = 0.3 * 0.4 + 0.7 * 0.6;
        assert!((probability(&f, &probs) - expected).abs() < 1e-12);
    }

    #[test]
    fn decomposition_statistics() {
        let probs = |_: FactId| 0.5;
        // independent pairs: ((x0∧x1) ∨ (x2∧x3)) — components {x0,x1},{x2,x3}
        let f = Lineage::or([Lineage::and([v(0), v(1)]), Lineage::and([v(2), v(3)])]);
        let (p, stats) = probability_with_stats(&f, &probs);
        assert!((p - (1.0 - 0.75 * 0.75)).abs() < 1e-12);
        assert!(stats.decompositions >= 1);
        assert_eq!(stats.expansions, 0);
    }

    #[test]
    fn memoization_hits_on_shared_substructure() {
        let probs = |_: FactId| 0.5;
        // (x0 ∨ x1) appears twice via conditioning paths of x2
        let shared = Lineage::or([v(0), v(1)]);
        let f = Lineage::or([
            Lineage::and([v(2), shared.clone()]),
            Lineage::and([v(2).negate(), shared]),
        ]);
        let (p, _stats) = probability_with_stats(&f, &probs);
        assert!((p - 0.75).abs() < 1e-12);
    }

    /// Brute-force reference: sum over all assignments.
    fn brute(l: &Lineage, probs: &dyn Fn(FactId) -> f64) -> f64 {
        let vars: Vec<FactId> = l.vars().into_iter().collect();
        let mut total = 0.0;
        for mask in 0u64..(1 << vars.len()) {
            let mut world = Vec::new();
            let mut p = 1.0;
            for (i, &v) in vars.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    world.push(v);
                    p *= probs(v);
                } else {
                    p *= 1.0 - probs(v);
                }
            }
            let inst = infpdb_core::instance::Instance::from_ids(world);
            if l.eval(&inst) {
                total += p;
            }
        }
        total
    }

    #[test]
    fn matches_brute_force_on_random_formulas() {
        use infpdb_core::space::rand_core::{RngCore, SplitMix64};
        let mut rng = SplitMix64::new(2024);
        for trial in 0..60 {
            // random formula over 6 vars, depth 3
            fn random_lineage(rng: &mut SplitMix64, depth: usize) -> Lineage {
                let choice = rng.next_u64() % if depth == 0 { 2 } else { 5 };
                match choice {
                    0 => Lineage::Var(FactId((rng.next_u64() % 6) as u32)),
                    1 => Lineage::Var(FactId((rng.next_u64() % 6) as u32)).negate(),
                    2 => Lineage::and([
                        random_lineage(rng, depth - 1),
                        random_lineage(rng, depth - 1),
                    ]),
                    3 => Lineage::or([
                        random_lineage(rng, depth - 1),
                        random_lineage(rng, depth - 1),
                    ]),
                    _ => random_lineage(rng, depth - 1).negate(),
                }
            }
            let l = random_lineage(&mut rng, 3);
            let ps: Vec<f64> = (0..6)
                .map(|_| (rng.next_u64() % 1000) as f64 / 1000.0)
                .collect();
            let probs = |id: FactId| ps[id.0 as usize];
            let fast = probability(&l, &probs);
            let slow = brute(&l, &probs);
            assert!(
                (fast - slow).abs() < 1e-9,
                "trial {trial}: shannon {fast} != brute {slow} on {l:?}"
            );
        }
    }

    #[test]
    fn budget_variant_matches_unbudgeted_when_affordable() {
        let probs = |id: FactId| [0.5, 0.4, 0.2][id.0 as usize];
        let f = Lineage::or([Lineage::and([v(0), v(1)]), Lineage::and([v(0), v(2)])]);
        let (p, _) = probability_with_budget(&f, &probs, 1_000_000).unwrap();
        assert!((p - probability(&f, &probs)).abs() < 1e-12);
    }

    #[test]
    fn budget_variant_gives_up_gracefully() {
        // a chain x0x1 ∨ x1x2 ∨ … forces one expansion per level; budget 0
        // must trip immediately on a connected component
        let probs = |_: FactId| 0.5;
        let f = Lineage::or((0..8).map(|i| Lineage::and([v(i), v(i + 1)])));
        assert!(probability_with_budget(&f, &probs, 0).is_none());
        assert!(probability_with_budget(&f, &probs, 1_000).is_some());
    }

    #[test]
    fn budget_is_a_shared_pool_across_siblings() {
        // Two independent connected components, each needing ≥ 1
        // expansion. A per-branch budget of 1 would let BOTH expand; the
        // shared pool must trip on the second.
        let probs = |_: FactId| 0.5;
        let comp = |base: u32| {
            Lineage::or([
                Lineage::and([v(base), v(base + 1)]),
                Lineage::and([v(base), v(base + 2)]),
            ])
        };
        let f = Lineage::and([comp(0), comp(10)]);
        let (_, stats) = probability_with_stats(&f, &probs);
        assert!(stats.expansions >= 2, "needs ≥ 2 expansions in total");
        assert!(probability_with_budget(&f, &probs, 1).is_none());
        assert!(probability_with_budget(&f, &probs, stats.expansions).is_some());
        // same semantics in the DAG engine
        let mut a = LineageArena::new();
        let id = a.from_lineage(&f);
        assert!(probability_dag_with_budget(&mut a, id, &probs, 1).is_none());
        let mut b = LineageArena::new();
        let id = b.from_lineage(&f);
        assert!(probability_dag_with_budget(&mut b, id, &probs, stats.expansions).is_some());
    }

    #[test]
    fn expansion_budget_countdown() {
        let mut b = ExpansionBudget::new(2);
        assert_eq!(b.remaining(), 2);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert_eq!(b.remaining(), 0);
        assert!(!b.try_spend());
        assert!(!b.try_spend());
    }

    #[test]
    fn dag_engine_matches_tree_engine_exactly() {
        use infpdb_core::space::rand_core::{RngCore, SplitMix64};
        let mut rng = SplitMix64::new(7_2026);
        for trial in 0..80 {
            fn random_lineage(rng: &mut SplitMix64, depth: usize) -> Lineage {
                let choice = rng.next_u64() % if depth == 0 { 2 } else { 5 };
                match choice {
                    0 => Lineage::Var(FactId((rng.next_u64() % 6) as u32)),
                    1 => Lineage::Var(FactId((rng.next_u64() % 6) as u32)).negate(),
                    2 => Lineage::and([
                        random_lineage(rng, depth - 1),
                        random_lineage(rng, depth - 1),
                    ]),
                    3 => Lineage::or([
                        random_lineage(rng, depth - 1),
                        random_lineage(rng, depth - 1),
                    ]),
                    _ => random_lineage(rng, depth - 1).negate(),
                }
            }
            let l = random_lineage(&mut rng, 4);
            let ps: Vec<f64> = (0..6)
                .map(|_| (rng.next_u64() % 1000) as f64 / 1000.0)
                .collect();
            let probs = |id: FactId| ps[id.0 as usize];
            let (tree_p, tree_stats) = probability_with_stats(&l, &probs);
            let mut arena = LineageArena::new();
            let root = arena.from_lineage(&l);
            let (dag_p, dag_stats) = probability_dag_with_stats(&mut arena, root, &probs);
            // bit-for-bit, not approximately
            assert_eq!(
                tree_p.to_bits(),
                dag_p.to_bits(),
                "trial {trial}: tree {tree_p} != dag {dag_p} on {l:?}"
            );
            assert_eq!(tree_stats.expansions, dag_stats.expansions, "trial {trial}");
            assert_eq!(
                tree_stats.decompositions, dag_stats.decompositions,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn dag_memo_hits_on_shared_substructure() {
        // (x0∧x1∧x2) ∨ (¬x0∧x1∧x2): expanding on x0 gives the SAME
        // cofactor (x1∧x2) on both branches — the second probe must be an
        // O(1) id-keyed memo hit.
        let probs = |_: FactId| 0.5;
        let f = Lineage::or([
            Lineage::and([v(0), v(1), v(2)]),
            Lineage::and([v(0).negate(), v(1), v(2)]),
        ]);
        let mut arena = LineageArena::new();
        let root = arena.from_lineage(&f);
        let (p, stats) = probability_dag_with_stats(&mut arena, root, &probs);
        assert!((p - 0.25).abs() < 1e-12, "f ≡ x1 ∧ x2");
        assert!(stats.cache_hits >= 1, "shared cofactor must hit the memo");
        // and the tree engine behaves the same way
        let (tp, tstats) = probability_with_stats(&f, &probs);
        assert_eq!(tp.to_bits(), p.to_bits());
        assert_eq!(tstats.cache_hits, stats.cache_hits);
    }

    #[test]
    fn end_to_end_query_probability_matches_world_enumeration() {
        let schema =
            Schema::from_relations([Relation::new("R", 1), Relation::new("S", 1)]).unwrap();
        let r = schema.rel_id("R").unwrap();
        let s = schema.rel_id("S").unwrap();
        let t = TiTable::from_facts(
            schema,
            [
                (Fact::new(r, [Value::int(1)]), 0.5),
                (Fact::new(r, [Value::int(2)]), 0.3),
                (Fact::new(s, [Value::int(1)]), 0.8),
                (Fact::new(s, [Value::int(2)]), 0.1),
            ],
        )
        .unwrap();
        let pdb = t.worlds().unwrap();
        for qs in [
            "exists x. R(x) /\\ S(x)",
            "forall x. (R(x) -> S(x))",
            "exists x, y. R(x) /\\ S(y) /\\ x != y",
            "exists x. R(x) \\/ S(x)",
        ] {
            let q = parse(qs, t.schema()).unwrap();
            let l = lineage_of(&q, &t).unwrap();
            let fast = probability(&l, &|id| t.prob(id));
            let slow = pdb.prob_boolean(&q).unwrap();
            assert!((fast - slow).abs() < 1e-9, "{qs}: {fast} vs {slow}");
        }
    }
}

//! Finite block-independent-disjoint (b.i.d.) tables.
//!
//! Section 4.4 of the paper: facts are partitioned into blocks; facts
//! within a block are mutually exclusive, facts across blocks independent.
//! "The systems Trio, MayBMS and MystiQ realize (finite) PDBs of this
//! category"; the usual application is key constraints — one block per key
//! value, at most one alternative true.
//!
//! A [`BidTable`] stores per-block alternatives with probabilities summing
//! to at most 1; the remainder `p_⊥ = 1 − ∑ p` is the probability that the
//! block contributes no fact (the `⊥` of Proposition 4.13's proof).

use crate::{FiniteError, FinitePdb};
use infpdb_core::fact::{Fact, FactId};
use infpdb_core::instance::Instance;
use infpdb_core::interner::FactInterner;
use infpdb_core::schema::Schema;
use infpdb_core::space::rand_core::RngCore;
use infpdb_core::space::DiscreteSpace;
use infpdb_core::value::Value;
use infpdb_math::KahanSum;

/// Cap on explicit world enumeration (product of block sizes).
pub const MAX_ENUM_WORLDS: u64 = 1 << 24;

/// One block: mutually exclusive alternatives.
#[derive(Debug, Clone)]
pub struct Block {
    /// `(fact id, probability)` of each alternative.
    alternatives: Vec<(FactId, f64)>,
    /// `1 − ∑ p`: probability of the empty alternative.
    bottom: f64,
}

impl Block {
    /// The alternatives.
    pub fn alternatives(&self) -> &[(FactId, f64)] {
        &self.alternatives
    }

    /// `p_⊥`.
    pub fn bottom(&self) -> f64 {
        self.bottom
    }
}

/// A finite b.i.d. PDB.
#[derive(Debug, Clone)]
pub struct BidTable {
    schema: Schema,
    interner: FactInterner,
    blocks: Vec<Block>,
    /// block index of each fact id
    block_of: Vec<usize>,
}

impl BidTable {
    /// Builds a table from blocks of `(fact, probability)` alternatives.
    ///
    /// Rejects duplicate facts (within or across blocks), probabilities
    /// outside `[0,1]`, and blocks with total mass `> 1`.
    pub fn from_blocks(
        schema: Schema,
        blocks: impl IntoIterator<Item = Vec<(Fact, f64)>>,
    ) -> Result<Self, FiniteError> {
        let mut interner = FactInterner::new();
        let mut out_blocks = Vec::new();
        let mut block_of = Vec::new();
        for (bi, alts) in blocks.into_iter().enumerate() {
            let mut mass = KahanSum::new();
            let mut alternatives = Vec::with_capacity(alts.len());
            for (fact, p) in alts {
                infpdb_math::check_probability(p)
                    .map_err(infpdb_core::CoreError::Math)
                    .map_err(FiniteError::Core)?;
                if interner.get(&fact).is_some() {
                    return Err(FiniteError::DuplicateFact(
                        fact.display(&schema).to_string(),
                    ));
                }
                let id = interner.intern(fact);
                debug_assert_eq!(id.0 as usize, block_of.len());
                block_of.push(bi);
                alternatives.push((id, p));
                mass.add(p);
            }
            let mass = mass.value();
            if mass > 1.0 + 1e-9 {
                return Err(FiniteError::BlockMassExceedsOne { block: bi, mass });
            }
            out_blocks.push(Block {
                alternatives,
                bottom: (1.0 - mass).max(0.0),
            });
        }
        Ok(Self {
            schema,
            interner,
            blocks: out_blocks,
            block_of,
        })
    }

    /// Builds a keyed table: facts sharing the same value in `key_col` of
    /// their argument tuple land in the same block (the key-constraint
    /// use-case).
    pub fn keyed(
        schema: Schema,
        facts: impl IntoIterator<Item = (Fact, f64)>,
        key_col: usize,
    ) -> Result<Self, FiniteError> {
        let mut by_key: std::collections::BTreeMap<(u32, Value), Vec<(Fact, f64)>> =
            Default::default();
        for (f, p) in facts {
            let key = f.args()[key_col].clone();
            by_key.entry((f.rel().0, key)).or_default().push((f, p));
        }
        Self::from_blocks(schema, by_key.into_values())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The fact interner.
    pub fn interner(&self) -> &FactInterner {
        &self.interner
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total number of possible facts.
    pub fn len(&self) -> usize {
        self.block_of.len()
    }

    /// Whether the table has no facts.
    pub fn is_empty(&self) -> bool {
        self.block_of.is_empty()
    }

    /// The block index of a fact.
    pub fn block_of(&self, id: FactId) -> usize {
        self.block_of[id.0 as usize]
    }

    /// The marginal `P(E_f)`.
    pub fn marginal(&self, fact: &Fact) -> f64 {
        match self.interner.get(fact) {
            Some(id) => self.prob(id),
            None => 0.0,
        }
    }

    /// The marginal of a fact id.
    pub fn prob(&self, id: FactId) -> f64 {
        let b = &self.blocks[self.block_of[id.0 as usize]];
        b.alternatives
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, p)| *p)
            .expect("id belongs to its block")
    }

    /// `E(S_D) = ∑ p_f`.
    pub fn expected_size(&self) -> f64 {
        KahanSum::sum_iter(
            self.blocks
                .iter()
                .flat_map(|b| b.alternatives.iter().map(|(_, p)| *p)),
        )
    }

    /// The probability of one instance: product over blocks of the chosen
    /// alternative's probability (or `p_⊥`); 0 for *bad* instances
    /// containing two facts of one block (Definition 4.11 condition (1)).
    pub fn instance_prob(&self, instance: &Instance) -> f64 {
        // facts outside the table are impossible
        for id in instance.iter() {
            if id.0 as usize >= self.block_of.len() {
                return 0.0;
            }
        }
        let mut chosen: Vec<Option<FactId>> = vec![None; self.blocks.len()];
        for id in instance.iter() {
            let b = self.block_of[id.0 as usize];
            if chosen[b].is_some() {
                return 0.0; // bad instance: two facts in one block
            }
            chosen[b] = Some(id);
        }
        let mut acc = 1.0;
        for (b, c) in self.blocks.iter().zip(chosen) {
            acc *= match c {
                Some(id) => b
                    .alternatives
                    .iter()
                    .find(|(i, _)| *i == id)
                    .map(|(_, p)| *p)
                    .expect("chosen id is in its block"),
                None => b.bottom,
            };
        }
        acc
    }

    /// Draws one world: each block independently picks an alternative (or
    /// none).
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> Instance {
        let mut ids = Vec::new();
        for b in &self.blocks {
            let u = rng.next_u64() as f64 / u64::MAX as f64;
            let mut acc = 0.0;
            for (id, p) in &b.alternatives {
                acc += p;
                if u < acc {
                    ids.push(*id);
                    break;
                }
            }
        }
        Instance::from_ids(ids)
    }

    /// Materializes the full world space (product over blocks of
    /// `alternatives + 1` choices). Errors past [`MAX_ENUM_WORLDS`].
    pub fn worlds(&self) -> Result<FinitePdb, FiniteError> {
        let mut count: u64 = 1;
        for b in &self.blocks {
            count = count.saturating_mul(b.alternatives.len() as u64 + 1);
            if count > MAX_ENUM_WORLDS {
                return Err(FiniteError::TooManyWorlds {
                    facts: self.len(),
                    limit: 24,
                });
            }
        }
        let mut outcomes: Vec<(Instance, f64)> = vec![(Instance::empty(), 1.0)];
        for b in &self.blocks {
            let mut next = Vec::with_capacity(outcomes.len() * (b.alternatives.len() + 1));
            for (inst, p) in &outcomes {
                if b.bottom > 0.0 {
                    next.push((inst.clone(), p * b.bottom));
                }
                for (id, pa) in &b.alternatives {
                    if *pa > 0.0 {
                        let mut with = inst.clone();
                        with.insert(*id);
                        next.push((with, p * pa));
                    }
                }
            }
            outcomes = next;
        }
        let space = DiscreteSpace::new(outcomes)?;
        Ok(FinitePdb::from_parts(
            self.schema.clone(),
            self.interner.clone(),
            space,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::{RelId, Relation, Schema};

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 2)]).unwrap()
    }

    fn fact(k: i64, v: i64) -> Fact {
        Fact::new(RelId(0), [Value::int(k), Value::int(v)])
    }

    fn two_blocks() -> BidTable {
        BidTable::from_blocks(
            schema(),
            [
                vec![(fact(1, 10), 0.5), (fact(1, 11), 0.3)],
                vec![(fact(2, 20), 0.9)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let t = two_blocks();
        assert_eq!(t.len(), 3);
        assert_eq!(t.blocks().len(), 2);
        assert!((t.blocks()[0].bottom() - 0.2).abs() < 1e-12);
        assert!((t.blocks()[1].bottom() - 0.1).abs() < 1e-12);
        assert_eq!(t.block_of(FactId(0)), 0);
        assert_eq!(t.block_of(FactId(2)), 1);
        assert!((t.marginal(&fact(1, 11)) - 0.3).abs() < 1e-12);
        assert_eq!(t.marginal(&fact(9, 9)), 0.0);
        assert!((t.expected_size() - 1.7).abs() < 1e-12);
        assert!(!t.is_empty());
    }

    #[test]
    fn rejects_overfull_blocks_and_duplicates() {
        assert!(matches!(
            BidTable::from_blocks(schema(), [vec![(fact(1, 1), 0.7), (fact(1, 2), 0.5)]]),
            Err(FiniteError::BlockMassExceedsOne { .. })
        ));
        assert!(matches!(
            BidTable::from_blocks(schema(), [vec![(fact(1, 1), 0.2)], vec![(fact(1, 1), 0.2)]]),
            Err(FiniteError::DuplicateFact(_))
        ));
        assert!(BidTable::from_blocks(schema(), [vec![(fact(1, 1), 1.5)]]).is_err());
    }

    #[test]
    fn keyed_builder_groups_by_key_column() {
        let t = BidTable::keyed(
            schema(),
            [(fact(1, 10), 0.5), (fact(2, 20), 0.4), (fact(1, 11), 0.3)],
            0,
        )
        .unwrap();
        assert_eq!(t.blocks().len(), 2);
        // facts with key 1 share a block
        let id10 = t.interner().get(&fact(1, 10)).unwrap();
        let id11 = t.interner().get(&fact(1, 11)).unwrap();
        let id20 = t.interner().get(&fact(2, 20)).unwrap();
        assert_eq!(t.block_of(id10), t.block_of(id11));
        assert_ne!(t.block_of(id10), t.block_of(id20));
    }

    #[test]
    fn instance_probability_exclusive_within_block() {
        let t = two_blocks();
        // both alternatives of block 0: bad instance
        let bad = Instance::from_ids([FactId(0), FactId(1)]);
        assert_eq!(t.instance_prob(&bad), 0.0);
        // {f(1,10), f(2,20)}: 0.5 · 0.9
        let good = Instance::from_ids([FactId(0), FactId(2)]);
        assert!((t.instance_prob(&good) - 0.45).abs() < 1e-12);
        // empty: 0.2 · 0.1
        assert!((t.instance_prob(&Instance::empty()) - 0.02).abs() < 1e-12);
        // unknown fact: impossible
        assert_eq!(t.instance_prob(&Instance::from_ids([FactId(9)])), 0.0);
    }

    #[test]
    fn worlds_sum_to_one_and_match_instance_prob() {
        let t = two_blocks();
        let pdb = t.worlds().unwrap();
        assert!((pdb.space().total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(pdb.space().support_size(), 6); // 3 × 2 choices
        for (d, p) in pdb.space().outcomes() {
            assert!((t.instance_prob(d) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn marginals_recovered_from_worlds() {
        let t = two_blocks();
        let pdb = t.worlds().unwrap();
        assert!((pdb.marginal(&fact(1, 10)) - 0.5).abs() < 1e-12);
        assert!((pdb.marginal(&fact(1, 11)) - 0.3).abs() < 1e-12);
        assert!((pdb.marginal(&fact(2, 20)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn block_exclusivity_and_cross_block_independence() {
        // Definition 4.11 conditions on the materialized space.
        let t = two_blocks();
        let pdb = t.worlds().unwrap();
        use infpdb_core::event::Event;
        // (1) mutual exclusivity within block 0
        let e0 = Event::fact(FactId(0));
        let e1 = Event::fact(FactId(1));
        assert_eq!(pdb.prob_event(&e0.clone().and(e1.clone())), 0.0);
        // (2) independence across blocks
        let e2 = Event::fact(FactId(2));
        let joint = pdb.prob_event(&e0.clone().and(e2.clone()));
        assert!((joint - pdb.prob_event(&e0) * pdb.prob_event(&e2)).abs() < 1e-12);
    }

    #[test]
    fn sampling_respects_blocks() {
        use infpdb_core::space::rand_core::SplitMix64;
        let t = two_blocks();
        let mut rng = SplitMix64::new(11);
        let mut m10 = 0usize;
        let mut m11 = 0usize;
        let n = 30_000;
        for _ in 0..n {
            let d = t.sample(&mut rng);
            let has10 = d.contains(FactId(0));
            let has11 = d.contains(FactId(1));
            assert!(!(has10 && has11), "block exclusivity violated in sample");
            m10 += has10 as usize;
            m11 += has11 as usize;
        }
        assert!((m10 as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((m11 as f64 / n as f64 - 0.3).abs() < 0.02);
    }

    #[test]
    fn singleton_blocks_reduce_to_tuple_independence() {
        // b.i.d. with singleton blocks = t.i. (remark after Def 4.11)
        let bid =
            BidTable::from_blocks(schema(), [vec![(fact(1, 1), 0.5)], vec![(fact(2, 2), 0.3)]])
                .unwrap();
        let ti =
            crate::TiTable::from_facts(schema(), [(fact(1, 1), 0.5), (fact(2, 2), 0.3)]).unwrap();
        let bw = bid.worlds().unwrap();
        let tw = ti.worlds().unwrap();
        for (d, p) in tw.space().outcomes() {
            assert!((bw.space().prob_outcome(d) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn worlds_enumeration_guard() {
        // 26 blocks of 3 alternatives = 4^26 worlds > cap
        let blocks: Vec<Vec<(Fact, f64)>> = (0..26)
            .map(|k| (0..3).map(|v| (fact(k, v), 0.25)).collect())
            .collect();
        let t = BidTable::from_blocks(schema(), blocks).unwrap();
        assert!(matches!(t.worlds(), Err(FiniteError::TooManyWorlds { .. })));
    }
}

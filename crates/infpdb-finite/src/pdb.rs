//! General finite probabilistic databases.
//!
//! A [`FinitePdb`] is the paper's standard object (Section 1): a finite
//! probability space whose sample space is a set of instances over one
//! schema, materialized as a [`DiscreteSpace`]. It carries its schema and
//! fact interner so queries and events can be evaluated against it.

use crate::FiniteError;
use infpdb_core::event::Event;
use infpdb_core::fact::{Fact, FactId};
use infpdb_core::instance::Instance;
use infpdb_core::interner::FactInterner;
use infpdb_core::schema::Schema;
use infpdb_core::space::DiscreteSpace;
use infpdb_core::storage::InstanceStore;
use infpdb_core::value::Value;
use infpdb_logic::ast::Formula;
use infpdb_logic::eval::Evaluator;
use infpdb_logic::vars::free_vars;
use std::collections::BTreeSet;

/// A finite PDB: schema, fact interner, and a materialized instance space.
#[derive(Debug, Clone)]
pub struct FinitePdb {
    schema: Schema,
    interner: FactInterner,
    space: DiscreteSpace<Instance>,
}

impl FinitePdb {
    /// Builds a PDB from explicit worlds given as fact lists with
    /// probabilities (must sum to 1).
    pub fn from_worlds(
        schema: Schema,
        worlds: impl IntoIterator<Item = (Vec<Fact>, f64)>,
    ) -> Result<Self, FiniteError> {
        let mut interner = FactInterner::new();
        let outcomes: Vec<(Instance, f64)> = worlds
            .into_iter()
            .map(|(facts, p)| {
                (
                    Instance::from_ids(facts.into_iter().map(|f| interner.intern(f))),
                    p,
                )
            })
            .collect();
        let space = DiscreteSpace::new(outcomes)?;
        Ok(Self {
            schema,
            interner,
            space,
        })
    }

    /// Builds a PDB from pre-interned parts.
    pub fn from_parts(
        schema: Schema,
        interner: FactInterner,
        space: DiscreteSpace<Instance>,
    ) -> Self {
        Self {
            schema,
            interner,
            space,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The fact interner.
    pub fn interner(&self) -> &FactInterner {
        &self.interner
    }

    /// The underlying probability space.
    pub fn space(&self) -> &DiscreteSpace<Instance> {
        &self.space
    }

    /// `P(E)` for an [`Event`].
    pub fn prob_event(&self, event: &Event) -> f64 {
        self.space.prob_where(|d| event.contains(d))
    }

    /// The marginal `P(E_f)` of a fact.
    pub fn marginal(&self, fact: &Fact) -> f64 {
        match self.interner.get(fact) {
            Some(id) => self.prob_event(&Event::fact(id)),
            None => 0.0,
        }
    }

    /// All fact marginals (the table representation of Section 1, modulo
    /// independence).
    pub fn marginals(&self) -> Vec<(FactId, f64)> {
        let m = infpdb_core::size::fact_marginals(&self.space);
        let mut v: Vec<(FactId, f64)> = m.into_iter().collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// `P(Q)` of a Boolean FO query by possible-worlds summation: evaluates
    /// the query in every world (the defining semantics of query probability
    /// in Section 3.1). Exponential-free — the space is already
    /// materialized — but linear in the number of worlds.
    pub fn prob_boolean(&self, query: &Formula) -> Result<f64, FiniteError> {
        let fv = free_vars(query);
        if !fv.is_empty() {
            return Err(FiniteError::Logic(infpdb_logic::LogicError::NotASentence(
                fv.into_iter().collect(),
            )));
        }
        let mut acc = infpdb_math::KahanSum::new();
        for (d, p) in self.space.outcomes() {
            if *p == 0.0 {
                continue;
            }
            let store = InstanceStore::build(d, &self.interner, &self.schema);
            let ev = Evaluator::new(&store, query);
            if ev.eval_sentence(query).expect("sentence checked") {
                acc.add(*p);
            }
        }
        Ok(acc.value().min(1.0))
    }

    /// Marginal answer-tuple probabilities of a query with free variables
    /// (Section 3.1): `Pr(~a ∈ Q(D))` for every tuple that is an answer in
    /// at least one world.
    pub fn answer_marginals(&self, query: &Formula) -> Result<Vec<(Vec<Value>, f64)>, FiniteError> {
        let mut acc: std::collections::BTreeMap<Vec<Value>, f64> = Default::default();
        for (d, p) in self.space.outcomes() {
            if *p == 0.0 {
                continue;
            }
            let store = InstanceStore::build(d, &self.interner, &self.schema);
            let ev = Evaluator::new(&store, query);
            for tuple in ev.answers(query) {
                *acc.entry(tuple).or_insert(0.0) += p;
            }
        }
        Ok(acc.into_iter().map(|(t, p)| (t, p.min(1.0))).collect())
    }

    /// The active domain union over all instances with positive probability
    /// (`adom` of the PDB).
    pub fn active_domain(&self) -> BTreeSet<Value> {
        let mut dom = BTreeSet::new();
        for (d, p) in self.space.outcomes() {
            if *p > 0.0 {
                dom.extend(d.active_domain(&self.interner));
            }
        }
        dom
    }

    /// The set `F(D)` of facts appearing in instances with positive
    /// probability (used by completions, Section 5).
    pub fn possible_facts(&self) -> Vec<Fact> {
        let mut ids: BTreeSet<FactId> = BTreeSet::new();
        for (d, p) in self.space.outcomes() {
            if *p > 0.0 {
                ids.extend(d.iter());
            }
        }
        ids.into_iter()
            .map(|id| self.interner.resolve(id).clone())
            .collect()
    }

    /// Expected instance size `E(S_D)`.
    pub fn expected_size(&self) -> f64 {
        infpdb_core::size::expected_size(&self.space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::schema::Relation;
    use infpdb_logic::parse;

    fn schema() -> Schema {
        Schema::from_relations([Relation::new("R", 1), Relation::new("S", 1)]).unwrap()
    }

    fn pdb() -> FinitePdb {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let t = s.rel_id("S").unwrap();
        let f1 = Fact::new(r, [Value::int(1)]);
        let f2 = Fact::new(r, [Value::int(2)]);
        let g = Fact::new(t, [Value::int(1)]);
        FinitePdb::from_worlds(
            s,
            [
                (vec![], 0.1),
                (vec![f1.clone()], 0.2),
                (vec![f1.clone(), g.clone()], 0.3),
                (vec![f1, f2, g], 0.4),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_mass() {
        let s = schema();
        assert!(matches!(
            FinitePdb::from_worlds(s, [(vec![], 0.5)]),
            Err(FiniteError::Core(_))
        ));
    }

    #[test]
    fn marginals_and_events() {
        let p = pdb();
        let s = p.schema().clone();
        let r = s.rel_id("R").unwrap();
        let f1 = Fact::new(r, [Value::int(1)]);
        let f2 = Fact::new(r, [Value::int(2)]);
        assert!((p.marginal(&f1) - 0.9).abs() < 1e-12);
        assert!((p.marginal(&f2) - 0.4).abs() < 1e-12);
        assert_eq!(p.marginal(&Fact::new(r, [Value::int(9)])), 0.0);
        let id1 = p.interner().get(&f1).unwrap();
        assert!((p.prob_event(&Event::fact(id1).not()) - 0.1).abs() < 1e-12);
        assert_eq!(p.marginals().len(), 3);
    }

    #[test]
    fn boolean_query_probability_by_world_summation() {
        let p = pdb();
        let q = parse("exists x. R(x) /\\ S(x)", p.schema()).unwrap();
        // worlds 3 (.3) and 4 (.4) contain both R(1) and S(1)
        assert!((p.prob_boolean(&q).unwrap() - 0.7).abs() < 1e-12);
        let q2 = parse("exists x. R(x)", p.schema()).unwrap();
        assert!((p.prob_boolean(&q2).unwrap() - 0.9).abs() < 1e-12);
        let q3 = parse("forall x. (S(x) -> R(x))", p.schema()).unwrap();
        assert!((p.prob_boolean(&q3).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boolean_query_rejects_free_variables() {
        let p = pdb();
        let q = parse("R(x)", p.schema()).unwrap();
        assert!(matches!(
            p.prob_boolean(&q),
            Err(FiniteError::Logic(infpdb_logic::LogicError::NotASentence(
                _
            )))
        ));
    }

    #[test]
    fn answer_marginals_per_tuple() {
        let p = pdb();
        let q = parse("R(x)", p.schema()).unwrap();
        let ans = p.answer_marginals(&q).unwrap();
        // R(1) in worlds 2,3,4 (0.9); R(2) in world 4 (0.4)
        assert_eq!(ans.len(), 2);
        let find = |n: i64| {
            ans.iter()
                .find(|(t, _)| t[0] == Value::int(n))
                .map(|(_, p)| *p)
                .unwrap()
        };
        assert!((find(1) - 0.9).abs() < 1e-12);
        assert!((find(2) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn active_domain_and_possible_facts() {
        let p = pdb();
        let dom: Vec<i64> = p
            .active_domain()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(dom, vec![1, 2]);
        assert_eq!(p.possible_facts().len(), 3);
    }

    #[test]
    fn expected_size() {
        let p = pdb();
        // 0·.1 + 1·.2 + 2·.3 + 3·.4 = 2.0
        assert!((p.expected_size() - 2.0).abs() < 1e-12);
    }
}

//! Chosen evaluation plans: per-component strategy assignments and their
//! execution.
//!
//! The cost-based optimizer (`infpdb_query::planner`) decides, for every
//! relation-disjoint component of a compiled query, which of the crate's
//! engines evaluates it: extensional lifted inference, the exact
//! hash-consed Shannon DAG, deterministic Monte-Carlo sampling, or the
//! Karp–Luby DNF estimator. This module holds the *decision artifact*
//! ([`ChosenPlan`]) and the executor ([`evaluate_plan`]) — the cost model
//! itself lives upstream, so the finite layer stays policy-free.
//!
//! Determinism contract: given the same plan and table, [`evaluate_plan`]
//! is bit-for-bit reproducible at every `parallelism` value and under
//! every [`shannon::TaskExecutor`] — the exact engines already guarantee
//! this, and both samplers derive their RNG streams from the plan's
//! per-component seeds in fixed-size chunks.

use crate::arena::{ArenaStats, LineageArena};
use crate::engine::EvalTrace;
use crate::lineage::lineage_of_arena;
use crate::{karp_luby, lifted, monte_carlo, shannon, FiniteError, TiTable};
use infpdb_logic::compile::{CompiledQuery, Connective, QueryComponent};

/// The evaluation strategy assigned to one query component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Extensional safe-plan evaluation (requires the component to be a
    /// hierarchical self-join-free CQ).
    Lifted,
    /// Exact intensional evaluation: lineage + Shannon DAG.
    Shannon,
    /// Deterministic chunk-seeded Monte-Carlo with a Hoeffding sample
    /// count for the component's additive error budget.
    MonteCarlo {
        /// Samples to draw.
        samples: usize,
    },
    /// Karp–Luby DNF coverage estimation (requires monotone lineage).
    KarpLuby {
        /// Samples to draw.
        samples: usize,
        /// Clause cap for the DNF conversion; exceeding it at evaluation
        /// time falls back deterministically to Shannon.
        max_clauses: usize,
    },
}

impl Strategy {
    /// Short stable name, used in metrics labels and `--explain` output.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Lifted => "lifted",
            Strategy::Shannon => "shannon",
            Strategy::MonteCarlo { .. } => "mc",
            Strategy::KarpLuby { .. } => "kl",
        }
    }

    /// Stable discriminant for fingerprinting.
    pub fn tag(&self) -> u8 {
        match self {
            Strategy::Lifted => 0,
            Strategy::Shannon => 1,
            Strategy::MonteCarlo { .. } => 2,
            Strategy::KarpLuby { .. } => 3,
        }
    }

    /// Whether the strategy is a sampling estimator.
    pub fn is_sampling(&self) -> bool {
        matches!(
            self,
            Strategy::MonteCarlo { .. } | Strategy::KarpLuby { .. }
        )
    }
}

/// One component's strategy assignment with its cost estimate and
/// deterministic sampling seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentPlan {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// The planner's cost estimate (abstract work units) for the choice.
    pub cost: f64,
    /// Seed for the component's sampler (unused by exact strategies);
    /// derived from (knobs seed, PDB fingerprint, query fingerprint, ε,
    /// component index) so it never depends on runtime state.
    pub seed: u64,
}

/// A complete plan for a compiled query: one [`ComponentPlan`] per
/// relation-disjoint component, plus the tolerances the plan certifies.
#[derive(Debug, Clone, PartialEq)]
pub struct ChosenPlan {
    /// How component probabilities combine (mirrors the compiled query).
    pub connective: Connective,
    /// Per-component strategy assignments, in component order.
    pub components: Vec<ComponentPlan>,
    /// The requested tolerance this plan was chosen for.
    pub eps: f64,
    /// The truncation tolerance: equal to `eps` for fully exact plans,
    /// tightened to `eps · (1 − sampling_fraction)` when any component
    /// samples (the remainder of the budget pays for sampling error).
    pub eps_trunc: f64,
}

impl ChosenPlan {
    /// Compact counters for the trace: how many components ran each
    /// strategy, and the total cost estimate.
    pub fn summary(&self) -> PlanSummary {
        let mut s = PlanSummary::default();
        let mut cost = 0.0;
        for c in &self.components {
            match c.strategy {
                Strategy::Lifted => s.lifted += 1,
                Strategy::Shannon => s.shannon += 1,
                Strategy::MonteCarlo { .. } => s.monte_carlo += 1,
                Strategy::KarpLuby { .. } => s.karp_luby += 1,
            }
            cost += c.cost;
        }
        s.cost_bits = cost.to_bits();
        s
    }

    /// Whether any component uses a sampling estimator.
    pub fn has_sampling(&self) -> bool {
        self.components.iter().any(|c| c.strategy.is_sampling())
    }

    /// A stable digest of the *choices* (strategy tags, sample counts,
    /// seeds, truncation ε) — what the CI cross-process determinism check
    /// compares, and what re-plan detection keys on.
    pub fn choice_fingerprint(&self) -> u64 {
        let mut fp = infpdb_core::fingerprint::Fingerprinter::new();
        fp.write_u64(self.components.len() as u64);
        for c in &self.components {
            fp.write_u64(u64::from(c.strategy.tag()));
            match c.strategy {
                Strategy::MonteCarlo { samples } => {
                    fp.write_u64(samples as u64);
                }
                Strategy::KarpLuby {
                    samples,
                    max_clauses,
                } => {
                    fp.write_u64(samples as u64).write_u64(max_clauses as u64);
                }
                _ => {}
            }
            fp.write_u64(c.seed);
        }
        fp.write_u64(self.eps_trunc.to_bits());
        fp.finish()
    }

    /// The strategy-tag vector alone (no seeds, no sample counts): two
    /// plans with the same vector are "the same choice" for re-plan
    /// accounting — an ε change that only rescales sample counts is not a
    /// re-plan.
    pub fn strategy_vector(&self) -> Vec<u8> {
        self.components.iter().map(|c| c.strategy.tag()).collect()
    }
}

/// Per-strategy component counts plus the plan's total cost estimate —
/// the [`EvalTrace`]-embeddable summary of a [`ChosenPlan`] (integers
/// only, so the trace stays `Copy + Eq`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Components evaluated by lifted inference.
    pub lifted: u32,
    /// Components evaluated by the Shannon DAG.
    pub shannon: u32,
    /// Components estimated by Monte-Carlo.
    pub monte_carlo: u32,
    /// Components estimated by Karp–Luby.
    pub karp_luby: u32,
    /// Bit pattern of the plan's total estimated cost (f64 work units).
    pub cost_bits: u64,
}

impl PlanSummary {
    /// The dominant strategy label for single-label consumers (the
    /// `/query` envelope): the unique strategy when all components agree,
    /// `"mixed"` otherwise.
    pub fn label(&self) -> &'static str {
        let kinds = [
            (self.lifted, "lifted"),
            (self.shannon, "shannon"),
            (self.monte_carlo, "mc"),
            (self.karp_luby, "kl"),
        ];
        let mut used = kinds.iter().filter(|(n, _)| *n > 0);
        match (used.next(), used.next()) {
            (Some((_, name)), None) => name,
            (Some(_), Some(_)) => "mixed",
            _ => "none",
        }
    }
}

/// Evaluates a compiled query under a [`ChosenPlan`]: each component by
/// its assigned strategy, combined in canonical component order by the
/// compiled connective. Returns `Ok(None)` when a caller-supplied
/// executor skipped tasks (cancellation), exactly like
/// [`crate::engine::prob_boolean_traced_exec`].
///
/// The returned trace reports what actually ran: merged Shannon/arena
/// counters over the exact components, and `plan` set to the summary of
/// the *executed* strategies (a Karp–Luby component whose lineage
/// overflowed the clause cap executes as Shannon and is counted as such).
pub fn evaluate_plan(
    compiled: &CompiledQuery,
    plan: &ChosenPlan,
    table: &TiTable,
    parallelism: usize,
    exec: Option<&dyn shannon::TaskExecutor>,
) -> Result<Option<(f64, EvalTrace)>, FiniteError> {
    let components = compiled.components();
    assert_eq!(
        components.len(),
        plan.components.len(),
        "plan must match the compiled query's component list"
    );
    let mut executed = plan.clone();
    let mut acc = 1.0f64;
    let mut single = 0.0f64;
    let mut trace = EvalTrace::default();
    for (i, (comp, cplan)) in components.iter().zip(&plan.components).enumerate() {
        let p = match cplan.strategy {
            Strategy::Lifted => lifted::prob_hierarchical(comp.formula(), table)?,
            Strategy::Shannon => {
                match shannon_component(comp, table, parallelism, exec, &mut trace)? {
                    Some(p) => p,
                    None => return Ok(None),
                }
            }
            Strategy::MonteCarlo { samples } => {
                monte_carlo::estimate_parallel(
                    comp.formula(),
                    table,
                    samples,
                    cplan.seed,
                    parallelism,
                )?
                .estimate
            }
            Strategy::KarpLuby {
                samples,
                max_clauses,
            } => {
                let mut arena = LineageArena::new();
                let root = lineage_of_arena(comp.formula(), table, &mut arena)?;
                match karp_luby::to_dnf_arena(&arena, root, max_clauses) {
                    Some(dnf) => {
                        karp_luby::estimate_dnf_parallel(
                            &dnf,
                            table,
                            samples,
                            cplan.seed,
                            parallelism,
                        )
                        .estimate
                    }
                    // deterministic fallback: the eval-table lineage
                    // outgrew the clause cap the profile predicted under
                    None => {
                        executed.components[i].strategy = Strategy::Shannon;
                        match shannon_component(comp, table, parallelism, exec, &mut trace)? {
                            Some(p) => p,
                            None => return Ok(None),
                        }
                    }
                }
            }
        };
        match plan.connective {
            Connective::Single => single = p,
            Connective::And => acc *= p,
            Connective::Or => acc *= 1.0 - p,
        }
    }
    let estimate = match plan.connective {
        Connective::Single => single,
        Connective::And => acc,
        Connective::Or => 1.0 - acc,
    };
    trace.plan = Some(executed.summary());
    Ok(Some((estimate, trace)))
}

/// Evaluates one component on the exact Shannon path, merging its work
/// counters into the running trace. Mirrors the lineage arm of
/// [`crate::engine::prob_boolean_traced_exec`] per component.
fn shannon_component(
    comp: &QueryComponent,
    table: &TiTable,
    parallelism: usize,
    exec: Option<&dyn shannon::TaskExecutor>,
    trace: &mut EvalTrace,
) -> Result<Option<f64>, FiniteError> {
    let mut arena = LineageArena::new();
    let root = lineage_of_arena(comp.formula(), table, &mut arena)?;
    if parallelism >= 2 {
        let policy = shannon::ParallelPolicy::with_threads(parallelism);
        let default_exec = shannon::ScopedExecutor {
            threads: policy.threads,
        };
        let exec = exec.unwrap_or(&default_exec);
        let Some((p, stats, arena_stats, report)) = shannon::probability_dag_parallel_exec(
            &mut arena,
            root,
            &|id| table.prob(id),
            policy,
            exec,
        ) else {
            return Ok(None);
        };
        merge_shannon(trace, stats, arena_stats);
        let merged = match trace.parallel {
            Some(prev) => shannon::ParReport {
                tasks: prev.tasks + report.tasks,
                fallback_seq: prev.fallback_seq || report.fallback_seq,
            },
            None => report,
        };
        trace.parallel = Some(merged);
        return Ok(Some(p));
    }
    let (p, stats) = shannon::probability_dag_with_stats(&mut arena, root, &|id| table.prob(id));
    let arena_stats = arena.stats();
    merge_shannon(trace, stats, arena_stats);
    Ok(Some(p))
}

fn merge_shannon(trace: &mut EvalTrace, stats: shannon::Stats, arena_stats: ArenaStats) {
    let s = trace.shannon.get_or_insert_with(shannon::Stats::default);
    s.expansions += stats.expansions;
    s.cache_hits += stats.cache_hits;
    s.decompositions += stats.decompositions;
    let a = trace.arena.get_or_insert_with(ArenaStats::default);
    a.nodes += arena_stats.nodes;
    a.intern_hits += arena_stats.intern_hits;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{prob_boolean, Engine};
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{Relation, Schema};
    use infpdb_logic::parse;

    fn table() -> TiTable {
        let s = Schema::from_relations([
            Relation::new("R", 1),
            Relation::new("S", 2),
            Relation::new("T", 1),
        ])
        .unwrap();
        let r = s.rel_id("R").unwrap();
        let s2 = s.rel_id("S").unwrap();
        let t2 = s.rel_id("T").unwrap();
        TiTable::from_facts(
            s,
            [
                (Fact::new(r, [infpdb_core::value::Value::int(1)]), 0.5),
                (Fact::new(r, [infpdb_core::value::Value::int(2)]), 0.4),
                (
                    Fact::new(
                        s2,
                        [
                            infpdb_core::value::Value::int(1),
                            infpdb_core::value::Value::int(2),
                        ],
                    ),
                    0.3,
                ),
                (Fact::new(t2, [infpdb_core::value::Value::int(2)]), 0.7),
            ],
        )
        .unwrap()
    }

    fn exact_plan(
        compiled: &CompiledQuery,
        strategy_for: impl Fn(&QueryComponent) -> Strategy,
    ) -> ChosenPlan {
        ChosenPlan {
            connective: compiled.connective(),
            components: compiled
                .components()
                .iter()
                .map(|c| ComponentPlan {
                    strategy: strategy_for(c),
                    cost: 1.0,
                    seed: 42,
                })
                .collect(),
            eps: 0.01,
            eps_trunc: 0.01,
        }
    }

    #[test]
    fn mixed_exact_plan_matches_monolithic_evaluation() {
        let t = table();
        let q = parse("(exists x. R(x)) /\\ (exists y. T(y))", t.schema()).unwrap();
        let compiled = CompiledQuery::compile(t.schema(), &q);
        assert_eq!(compiled.components().len(), 2);
        let brute = prob_boolean(&q, &t, Engine::Brute).unwrap();
        // lifted on safe components
        let plan = exact_plan(&compiled, |c| {
            if c.is_safe() {
                Strategy::Lifted
            } else {
                Strategy::Shannon
            }
        });
        let (p, trace) = evaluate_plan(&compiled, &plan, &t, 1, None)
            .unwrap()
            .unwrap();
        assert!((p - brute).abs() < 1e-12, "{p} vs {brute}");
        let summary = trace.plan.expect("plan summary filled");
        assert_eq!(summary.lifted, 2);
        // all-Shannon agrees too
        let plan2 = exact_plan(&compiled, |_| Strategy::Shannon);
        let (p2, trace2) = evaluate_plan(&compiled, &plan2, &t, 1, None)
            .unwrap()
            .unwrap();
        assert!((p2 - brute).abs() < 1e-12);
        assert_eq!(trace2.plan.unwrap().shannon, 2);
        assert!(trace2.shannon.is_some() && trace2.arena.is_some());
    }

    #[test]
    fn sampling_strategies_land_within_tolerance_and_are_thread_invariant() {
        let t = table();
        let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
        let compiled = CompiledQuery::compile(t.schema(), &q);
        let brute = prob_boolean(&q, &t, Engine::Brute).unwrap();
        for strategy in [
            Strategy::MonteCarlo { samples: 200_000 },
            Strategy::KarpLuby {
                samples: 100_000,
                max_clauses: 1024,
            },
        ] {
            let plan = ChosenPlan {
                connective: compiled.connective(),
                components: vec![ComponentPlan {
                    strategy,
                    cost: 1.0,
                    seed: 7,
                }],
                eps: 0.05,
                eps_trunc: 0.025,
            };
            let (p1, tr1) = evaluate_plan(&compiled, &plan, &t, 1, None)
                .unwrap()
                .unwrap();
            assert!(
                (p1 - brute).abs() < 0.01,
                "{} off: {p1} vs {brute}",
                strategy.name()
            );
            for threads in [2, 4] {
                let (pn, trn) = evaluate_plan(&compiled, &plan, &t, threads, None)
                    .unwrap()
                    .unwrap();
                assert_eq!(p1.to_bits(), pn.to_bits(), "thread-invariance");
                assert_eq!(tr1, trn);
            }
        }
    }

    #[test]
    fn karp_luby_clause_overflow_falls_back_to_shannon() {
        let t = table();
        let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
        let compiled = CompiledQuery::compile(t.schema(), &q);
        let plan = ChosenPlan {
            connective: compiled.connective(),
            components: vec![ComponentPlan {
                strategy: Strategy::KarpLuby {
                    samples: 1000,
                    max_clauses: 0, // force overflow
                },
                cost: 1.0,
                seed: 7,
            }],
            eps: 0.05,
            eps_trunc: 0.025,
        };
        let (p, trace) = evaluate_plan(&compiled, &plan, &t, 1, None)
            .unwrap()
            .unwrap();
        let brute = prob_boolean(&q, &t, Engine::Brute).unwrap();
        assert!((p - brute).abs() < 1e-12, "fallback is exact");
        let summary = trace.plan.unwrap();
        assert_eq!(summary.karp_luby, 0);
        assert_eq!(summary.shannon, 1);
    }

    #[test]
    fn summary_label_and_fingerprint() {
        let s = PlanSummary {
            lifted: 2,
            ..PlanSummary::default()
        };
        assert_eq!(s.label(), "lifted");
        let m = PlanSummary {
            lifted: 1,
            monte_carlo: 1,
            ..PlanSummary::default()
        };
        assert_eq!(m.label(), "mixed");
        assert_eq!(PlanSummary::default().label(), "none");
        let plan = ChosenPlan {
            connective: Connective::Single,
            components: vec![ComponentPlan {
                strategy: Strategy::MonteCarlo { samples: 10 },
                cost: 3.0,
                seed: 9,
            }],
            eps: 0.1,
            eps_trunc: 0.05,
        };
        let other = ChosenPlan {
            eps_trunc: 0.04,
            ..plan.clone()
        };
        assert_ne!(plan.choice_fingerprint(), other.choice_fingerprint());
        assert_eq!(plan.strategy_vector(), other.strategy_vector());
        assert!(plan.has_sampling());
    }
}

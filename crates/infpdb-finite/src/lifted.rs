//! Extensional (lifted) inference for hierarchical queries.
//!
//! Evaluates the [`SafePlan`]s of `infpdb_logic::safety` directly against a
//! tuple-independent table, in polynomial time:
//!
//! * ground atom — the fact's marginal probability (0 if absent: closed
//!   world);
//! * independent join — product of sub-probabilities;
//! * independent project over root variable `x` —
//!   `1 − ∏_{a ∈ adom} (1 − P(plan[x ↦ a]))`.
//!
//! Values outside the active domain contribute factors of `1 − 0`, so
//! restricting the projection to `adom(table) ∪ adom(Q)` is complete
//! (Fact 2.1 again).

use crate::{FiniteError, TiTable};
use infpdb_core::fact::Fact;
use infpdb_core::value::Value;
use infpdb_logic::ast::Formula;
use infpdb_logic::normal::{as_cq, CqAtom};
use infpdb_logic::safety::{safe_plan, substitute_in_plan, SafePlan};
use infpdb_math::KahanSum;

/// Probability of a hierarchical Boolean self-join-free CQ, evaluated
/// extensionally. Errors if the query is outside that fragment (use the
/// lineage engine instead).
pub fn prob_hierarchical(query: &Formula, table: &TiTable) -> Result<f64, FiniteError> {
    let cq = as_cq(query)?;
    let plan = safe_plan(&cq)?;
    let mut domain: Vec<Value> = table.active_domain().into_iter().collect();
    for c in infpdb_logic::vars::constants(query) {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    Ok(eval_plan(&plan, table, &domain))
}

/// Evaluates a safe plan whose remaining variables are all bound by its own
/// projects.
pub fn eval_plan(plan: &SafePlan, table: &TiTable, domain: &[Value]) -> f64 {
    match plan {
        SafePlan::Atom(atom) => atom_prob(atom, table),
        SafePlan::IndependentJoin(parts) => {
            parts.iter().map(|p| eval_plan(p, table, domain)).product()
        }
        SafePlan::IndependentProject { var, plan } => {
            // 1 − ∏ (1 − p_a), accumulated in log space for stability
            let mut log_none = KahanSum::new();
            for a in domain {
                let sub = substitute_in_plan(plan, var, a);
                let p = eval_plan(&sub, table, domain);
                if p >= 1.0 {
                    return 1.0;
                }
                log_none.add((-p).ln_1p());
            }
            (-log_none.value().exp_m1()).max(0.0)
        }
    }
}

fn atom_prob(atom: &CqAtom, table: &TiTable) -> f64 {
    let args: Vec<Value> = atom
        .args
        .iter()
        .map(|t| {
            t.as_const()
                .expect("plan evaluation grounds all variables before reaching atoms")
                .clone()
        })
        .collect();
    table.marginal(&Fact::new(atom.rel, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::lineage_of;
    use crate::shannon;
    use infpdb_core::schema::{Relation, Schema};
    use infpdb_logic::parse;

    fn schema() -> Schema {
        Schema::from_relations([
            Relation::new("R", 1),
            Relation::new("S", 2),
            Relation::new("T", 1),
        ])
        .unwrap()
    }

    fn table() -> TiTable {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let s2 = s.rel_id("S").unwrap();
        let t2 = s.rel_id("T").unwrap();
        TiTable::from_facts(
            s,
            [
                (Fact::new(r, [Value::int(1)]), 0.5),
                (Fact::new(r, [Value::int(2)]), 0.4),
                (Fact::new(s2, [Value::int(1), Value::int(1)]), 0.3),
                (Fact::new(s2, [Value::int(1), Value::int(2)]), 0.2),
                (Fact::new(s2, [Value::int(2), Value::int(2)]), 0.9),
                (Fact::new(t2, [Value::int(2)]), 0.7),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_existential_atom() {
        let t = table();
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        let p = prob_hierarchical(&q, &t).unwrap();
        assert!((p - (1.0 - 0.5 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn ground_query() {
        let t = table();
        let q = parse("R(1) /\\ T(2)", t.schema()).unwrap();
        let p = prob_hierarchical(&q, &t).unwrap();
        assert!((p - 0.35).abs() < 1e-12);
        let q0 = parse("R(9)", t.schema()).unwrap();
        assert_eq!(prob_hierarchical(&q0, &t).unwrap(), 0.0);
    }

    #[test]
    fn hierarchical_join_matches_lineage_engine() {
        let t = table();
        for qs in [
            "exists x, y. R(x) /\\ S(x, y)",
            "exists x. R(x) /\\ S(x, 2)",
            "exists x, y. S(x, y)",
            "exists x. R(x) /\\ exists y. S(x, y)",
            "(exists x. R(x)) /\\ (exists z. T(z))",
        ] {
            let q = parse(qs, t.schema()).unwrap();
            let ext = prob_hierarchical(&q, &t).unwrap();
            let l = lineage_of(&q, &t).unwrap();
            let int = shannon::probability(&l, &|id| t.prob(id));
            assert!(
                (ext - int).abs() < 1e-9,
                "{qs}: lifted {ext} vs lineage {int}"
            );
        }
    }

    #[test]
    fn matches_brute_force_world_enumeration() {
        let t = table();
        let pdb = t.worlds().unwrap();
        let q = parse("exists x, y. R(x) /\\ S(x, y)", t.schema()).unwrap();
        let ext = prob_hierarchical(&q, &t).unwrap();
        let brute = pdb.prob_boolean(&q).unwrap();
        assert!((ext - brute).abs() < 1e-9);
    }

    #[test]
    fn rejects_non_hierarchical() {
        let t = table();
        let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
        assert!(matches!(
            prob_hierarchical(&q, &t),
            Err(FiniteError::Logic(_))
        ));
    }

    #[test]
    fn rejects_non_cq() {
        let t = table();
        let q = parse("exists x. !R(x)", t.schema()).unwrap();
        assert!(prob_hierarchical(&q, &t).is_err());
    }

    #[test]
    fn deterministic_facts_saturate() {
        let s = schema();
        let r = s.rel_id("R").unwrap();
        let t = TiTable::from_facts(
            s,
            [
                (Fact::new(r, [Value::int(1)]), 1.0),
                (Fact::new(r, [Value::int(2)]), 0.4),
            ],
        )
        .unwrap();
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        assert_eq!(prob_hierarchical(&q, &t).unwrap(), 1.0);
    }

    #[test]
    fn empty_table_gives_zero() {
        let t = TiTable::new(schema());
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        assert_eq!(prob_hierarchical(&q, &t).unwrap(), 0.0);
    }
}

//! The Karp–Luby FPRAS for monotone (DNF) lineage.
//!
//! Unions of conjunctive queries have *monotone* lineage — an Or of Ands
//! of positive fact variables, i.e. a DNF. For DNF, the classical
//! Karp–Luby coverage estimator gives a fully polynomial randomized
//! approximation scheme even where exact inference is #P-hard (e.g. the
//! non-hierarchical `H₀`): relative (multiplicative!) error `ε` with
//! confidence `1 − δ` from `O(m·ln(1/δ)/ε²)` samples, `m` the number of
//! clauses. (No contradiction with Proposition 6.2: the inapproximability
//! there is about *infinite* PDBs where even deciding `P > 0` embeds the
//! halting problem; on a *finite* table the DNF is explicit.)
//!
//! The estimator: with `w_i = P(clause_i)` and `W = ∑ w_i`, repeatedly
//! pick a clause `i` with probability `w_i/W`, sample a world conditioned
//! on `clause_i` being true, and score 1 iff `i` is the *first* satisfied
//! clause in that world. The score's mean is `P(⋁ clauses)/W`.

use crate::arena::{LineageArena, LineageId, LineageNode};
use crate::lineage::{lineage_of_arena, Lineage};
use crate::{FiniteError, TiTable};
use infpdb_core::fact::FactId;
use infpdb_core::space::rand_core::RngCore;
use infpdb_logic::ast::Formula;
use std::collections::HashMap;

/// A monotone DNF: each clause is a set of fact variables, all positive.
pub type Dnf = Vec<Vec<FactId>>;

/// Converts monotone lineage to DNF, refusing (with `None`) if the clause
/// count would exceed `max_clauses` or the lineage contains negation.
pub fn to_dnf(lineage: &Lineage, max_clauses: usize) -> Option<Dnf> {
    match lineage {
        Lineage::Top => Some(vec![vec![]]),
        Lineage::Bot => Some(vec![]),
        Lineage::Var(id) => Some(vec![vec![*id]]),
        Lineage::Not(_) => None, // not monotone
        Lineage::Or(children) => {
            let mut out: Dnf = Vec::new();
            for c in children {
                let mut d = to_dnf(c, max_clauses)?;
                out.append(&mut d);
                if out.len() > max_clauses {
                    return None;
                }
            }
            Some(out)
        }
        Lineage::And(children) => {
            let mut acc: Dnf = vec![vec![]];
            for c in children {
                let d = to_dnf(c, max_clauses)?;
                let mut next: Dnf = Vec::with_capacity(acc.len() * d.len().max(1));
                for clause_a in &acc {
                    for clause_b in &d {
                        let mut merged = clause_a.clone();
                        merged.extend_from_slice(clause_b);
                        merged.sort_unstable();
                        merged.dedup();
                        next.push(merged);
                        if next.len() > max_clauses {
                            return None;
                        }
                    }
                }
                acc = next;
            }
            Some(acc)
        }
    }
}

/// Converts a monotone arena node to DNF by a memoized postorder pass —
/// the DAG analogue of [`to_dnf`]. Shared subgraphs convert **once**
/// (their clause lists are reused by id), and clause order is exactly the
/// order the tree conversion would produce on the corresponding canonical
/// tree, so downstream seeded estimation is unchanged.
pub fn to_dnf_arena(arena: &LineageArena, root: LineageId, max_clauses: usize) -> Option<Dnf> {
    let mut memo: HashMap<LineageId, Dnf> = HashMap::new();
    to_dnf_rec(arena, root, max_clauses, &mut memo)
}

fn to_dnf_rec(
    arena: &LineageArena,
    id: LineageId,
    max_clauses: usize,
    memo: &mut HashMap<LineageId, Dnf>,
) -> Option<Dnf> {
    if let Some(d) = memo.get(&id) {
        return Some(d.clone());
    }
    let out = match arena.node(id) {
        LineageNode::Top => vec![vec![]],
        LineageNode::Bot => vec![],
        LineageNode::Var(v) => vec![vec![*v]],
        LineageNode::Not(_) => return None, // not monotone
        LineageNode::Or(children) => {
            let children = children.clone();
            let mut out: Dnf = Vec::new();
            for &c in children.iter() {
                let mut d = to_dnf_rec(arena, c, max_clauses, memo)?;
                out.append(&mut d);
                if out.len() > max_clauses {
                    return None;
                }
            }
            out
        }
        LineageNode::And(children) => {
            let children = children.clone();
            let mut acc: Dnf = vec![vec![]];
            for &c in children.iter() {
                let d = to_dnf_rec(arena, c, max_clauses, memo)?;
                let mut next: Dnf = Vec::with_capacity(acc.len() * d.len().max(1));
                for clause_a in &acc {
                    for clause_b in &d {
                        let mut merged = clause_a.clone();
                        merged.extend_from_slice(clause_b);
                        merged.sort_unstable();
                        merged.dedup();
                        next.push(merged);
                        if next.len() > max_clauses {
                            return None;
                        }
                    }
                }
                acc = next;
            }
            acc
        }
    };
    memo.insert(id, out.clone());
    Some(out)
}

/// A Karp–Luby estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlEstimate {
    /// The estimated probability of the DNF.
    pub estimate: f64,
    /// Samples drawn.
    pub samples: usize,
    /// Number of clauses.
    pub clauses: usize,
}

/// Runs the Karp–Luby coverage estimator on a monotone DNF over the
/// table's independent fact variables.
pub fn estimate_dnf<R: RngCore>(
    dnf: &Dnf,
    table: &TiTable,
    samples: usize,
    rng: &mut R,
) -> KlEstimate {
    assert!(samples > 0, "need at least one sample");
    let m = dnf.len();
    if m == 0 {
        return KlEstimate {
            estimate: 0.0,
            samples,
            clauses: 0,
        };
    }
    // clause weights w_i = ∏ p_v and the total W
    let weights: Vec<f64> = dnf
        .iter()
        .map(|c| c.iter().map(|&v| table.prob(v)).product())
        .collect();
    let total_w: f64 = weights.iter().sum();
    if total_w == 0.0 {
        return KlEstimate {
            estimate: 0.0,
            samples,
            clauses: m,
        };
    }
    // a clause with an empty literal set is `true`: P = 1 exactly
    if dnf.iter().any(|c| c.is_empty()) {
        return KlEstimate {
            estimate: 1.0,
            samples,
            clauses: m,
        };
    }
    // the variables any clause mentions (only these matter)
    let mut vars: Vec<FactId> = dnf.iter().flatten().copied().collect();
    vars.sort_unstable();
    vars.dedup();

    let hits = kl_chunk(dnf, table, &weights, total_w, &vars, samples, rng);
    KlEstimate {
        estimate: (total_w * hits as f64 / samples as f64).min(1.0),
        samples,
        clauses: m,
    }
}

/// Trivalent assignment cells for the flat Karp–Luby scratch.
const KL_UNSET: u8 = 0;
const KL_FALSE: u8 = 1;
const KL_TRUE: u8 = 2;

/// One batch of coverage draws: returns how many of `n` samples scored.
///
/// Flat kernel: the per-sample assignment lives in a dense `u8` scratch
/// indexed by fact id (fact ids are table positions) instead of a hash
/// map, so the conditional-sampling loop and the first-satisfied-clause
/// scan are plain slice indexing. The RNG consumption is exactly the
/// hash-map version's: one draw to select the clause, then one draw per
/// *unset* variable in sorted `vars` order — so hit counts (and hence
/// seeded estimates) are bit-for-bit unchanged. Only the variables in
/// `vars` are reset between samples, so chunk cost stays proportional to
/// the DNF's footprint, not the table size.
fn kl_chunk<R: RngCore>(
    dnf: &Dnf,
    table: &TiTable,
    weights: &[f64],
    total_w: f64,
    vars: &[FactId],
    n: usize,
    rng: &mut R,
) -> usize {
    let m = dnf.len();
    let mut hits = 0usize;
    let width = vars.iter().map(|v| v.0 as usize + 1).max().unwrap_or(0);
    let mut assignment: Vec<u8> = vec![KL_UNSET; width];
    for _ in 0..n {
        // pick clause i ∝ w_i
        let mut u = (rng.next_u64() as f64 / u64::MAX as f64) * total_w;
        let mut chosen = m - 1;
        for (i, w) in weights.iter().enumerate() {
            u -= w;
            if u <= 0.0 {
                chosen = i;
                break;
            }
        }
        // sample a world conditioned on clause `chosen` true
        for &v in vars {
            assignment[v.0 as usize] = KL_UNSET;
        }
        for &v in &dnf[chosen] {
            assignment[v.0 as usize] = KL_TRUE;
        }
        for &v in vars {
            let cell = &mut assignment[v.0 as usize];
            if *cell == KL_UNSET {
                *cell = if (rng.next_u64() as f64 / u64::MAX as f64) < table.prob(v) {
                    KL_TRUE
                } else {
                    KL_FALSE
                };
            }
        }
        // score iff `chosen` is the first satisfied clause
        let first_satisfied = dnf
            .iter()
            .position(|c| c.iter().all(|v| assignment[v.0 as usize] == KL_TRUE))
            .expect("the chosen clause is satisfied");
        if first_satisfied == chosen {
            hits += 1;
        }
    }
    hits
}

/// Deterministic, optionally parallel Karp–Luby estimate.
///
/// Samples are drawn in [`crate::monte_carlo::SAMPLE_CHUNK`]-sized chunks
/// seeded per chunk from `seed` (the same golden-ratio stream as
/// [`crate::monte_carlo::estimate_parallel`]) and hit counts are summed,
/// so the estimate is **bit-for-bit identical** at every thread count.
pub fn estimate_dnf_parallel(
    dnf: &Dnf,
    table: &TiTable,
    samples: usize,
    seed: u64,
    threads: usize,
) -> KlEstimate {
    use crate::monte_carlo::{chunk_seed, SAMPLE_CHUNK};
    use infpdb_core::space::rand_core::SplitMix64;
    assert!(samples > 0, "need at least one sample");
    let m = dnf.len();
    if m == 0 {
        return KlEstimate {
            estimate: 0.0,
            samples,
            clauses: 0,
        };
    }
    let weights: Vec<f64> = dnf
        .iter()
        .map(|c| c.iter().map(|&v| table.prob(v)).product())
        .collect();
    let total_w: f64 = weights.iter().sum();
    if total_w == 0.0 {
        return KlEstimate {
            estimate: 0.0,
            samples,
            clauses: m,
        };
    }
    if dnf.iter().any(|c| c.is_empty()) {
        return KlEstimate {
            estimate: 1.0,
            samples,
            clauses: m,
        };
    }
    let mut vars: Vec<FactId> = dnf.iter().flatten().copied().collect();
    vars.sort_unstable();
    vars.dedup();
    let chunks: Vec<(u64, usize)> = (0..samples.div_ceil(SAMPLE_CHUNK))
        .map(|c| {
            let n = SAMPLE_CHUNK.min(samples - c * SAMPLE_CHUNK);
            (chunk_seed(seed, c as u64), n)
        })
        .collect();
    let run = |(s, n): (u64, usize)| {
        let mut rng = SplitMix64::new(s);
        kl_chunk(dnf, table, &weights, total_w, &vars, n, &mut rng)
    };
    let hits: usize = if threads < 2 || chunks.len() < 2 {
        chunks.iter().copied().map(run).sum()
    } else {
        let workers = threads.min(chunks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|k| {
                    let mine: Vec<(u64, usize)> =
                        chunks.iter().skip(k).step_by(workers).copied().collect();
                    scope.spawn(move || mine.into_iter().map(run).sum::<usize>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sampler worker panicked"))
                .sum()
        })
    };
    KlEstimate {
        estimate: (total_w * hits as f64 / samples as f64).min(1.0),
        samples,
        clauses: m,
    }
}

/// End-to-end Karp–Luby for a UCQ: computes the (monotone) lineage,
/// converts to DNF, and estimates. Errors if the query is not a sentence
/// or its lineage is not convertible within `max_clauses`.
pub fn estimate_ucq<R: RngCore>(
    query: &Formula,
    table: &TiTable,
    samples: usize,
    max_clauses: usize,
    rng: &mut R,
) -> Result<KlEstimate, FiniteError> {
    let mut arena = LineageArena::new();
    let root = lineage_of_arena(query, table, &mut arena)?;
    let dnf = to_dnf_arena(&arena, root, max_clauses).ok_or_else(|| {
        FiniteError::Logic(infpdb_logic::LogicError::UnsupportedFragment(
            "lineage is not a (bounded) monotone DNF; use Shannon or Monte Carlo".into(),
        ))
    })?;
    Ok(estimate_dnf(&dnf, table, samples, rng))
}

/// Samples needed for a multiplicative `(ε, δ)` guarantee: the coverage
/// estimator's score is a Bernoulli with mean `≥ 1/m`, so
/// `n ≥ 3·m·ln(2/δ)/ε²` suffices (standard Karp–Luby–Madras analysis).
pub fn samples_for(clauses: usize, eps: f64, delta: f64) -> usize {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    (3.0 * clauses.max(1) as f64 * (2.0 / delta).ln() / (eps * eps)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{self, Engine};
    use infpdb_core::fact::Fact;
    use infpdb_core::schema::{RelId, Relation, Schema};
    use infpdb_core::space::rand_core::SplitMix64;
    use infpdb_core::value::Value;
    use infpdb_logic::parse;

    fn table() -> TiTable {
        let s = Schema::from_relations([
            Relation::new("R", 1),
            Relation::new("S", 2),
            Relation::new("T", 1),
        ])
        .unwrap();
        let r = s.rel_id("R").unwrap();
        let s2 = s.rel_id("S").unwrap();
        let t2 = s.rel_id("T").unwrap();
        TiTable::from_facts(
            s,
            [
                (Fact::new(r, [Value::int(1)]), 0.5),
                (Fact::new(r, [Value::int(2)]), 0.4),
                (Fact::new(s2, [Value::int(1), Value::int(2)]), 0.3),
                (Fact::new(s2, [Value::int(2), Value::int(1)]), 0.6),
                (Fact::new(t2, [Value::int(1)]), 0.7),
                (Fact::new(t2, [Value::int(2)]), 0.2),
            ],
        )
        .unwrap()
    }

    fn v(i: u32) -> FactId {
        FactId(i)
    }

    #[test]
    fn to_dnf_basic_shapes() {
        assert_eq!(to_dnf(&Lineage::Bot, 10), Some(vec![]));
        assert_eq!(to_dnf(&Lineage::Top, 10), Some(vec![vec![]]));
        assert_eq!(to_dnf(&Lineage::Var(v(3)), 10), Some(vec![vec![v(3)]]));
        let and = Lineage::and([Lineage::Var(v(0)), Lineage::Var(v(1))]);
        assert_eq!(to_dnf(&and, 10), Some(vec![vec![v(0), v(1)]]));
        let or = Lineage::or([Lineage::Var(v(0)), Lineage::Var(v(1))]);
        assert_eq!(to_dnf(&or, 10).unwrap().len(), 2);
        // distribution: (a ∨ b) ∧ (c ∨ d) → 4 clauses
        let f = Lineage::and([
            Lineage::or([Lineage::Var(v(0)), Lineage::Var(v(1))]),
            Lineage::or([Lineage::Var(v(2)), Lineage::Var(v(3))]),
        ]);
        assert_eq!(to_dnf(&f, 10).unwrap().len(), 4);
        // clause cap
        assert_eq!(to_dnf(&f, 3), None);
        // negation refused
        assert_eq!(to_dnf(&Lineage::Var(v(0)).negate(), 10), None);
    }

    #[test]
    fn arena_dnf_matches_tree_dnf_clause_for_clause() {
        let t = table();
        for qs in [
            "exists x, y. R(x) /\\ S(x, y) /\\ T(y)",
            "(exists x. R(x)) \\/ (exists y. T(y))",
            "R(1) /\\ T(1)",
            "exists x. R(x) /\\ T(x)",
        ] {
            let q = parse(qs, t.schema()).unwrap();
            let tree = crate::lineage::lineage_of(&q, &t).unwrap();
            let mut arena = LineageArena::new();
            let root = lineage_of_arena(&q, &t, &mut arena).unwrap();
            assert_eq!(
                to_dnf_arena(&arena, root, 1000),
                to_dnf(&tree, 1000),
                "{qs}: clause lists (including order) must coincide"
            );
        }
        // cap and monotonicity refusals carry over
        let q = parse("exists x. R(x) /\\ !T(x)", t.schema()).unwrap();
        let mut arena = LineageArena::new();
        let root = lineage_of_arena(&q, &t, &mut arena).unwrap();
        assert_eq!(to_dnf_arena(&arena, root, 1000), None);
    }

    #[test]
    fn karp_luby_matches_exact_on_h0() {
        // H₀ is non-hierarchical (no safe plan) but its lineage is monotone
        let t = table();
        let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
        let exact = engine::prob_boolean(&q, &t, Engine::Lineage).unwrap();
        let mut rng = SplitMix64::new(99);
        let est = estimate_ucq(&q, &t, 60_000, 1000, &mut rng).unwrap();
        assert!(
            (est.estimate - exact).abs() < 0.02 * exact.max(0.05),
            "KL {} vs exact {exact}",
            est.estimate
        );
        assert!(est.clauses >= 2);
    }

    #[test]
    fn karp_luby_matches_exact_on_simple_union() {
        let t = table();
        let q = parse("(exists x. R(x)) \\/ (exists y. T(y))", t.schema()).unwrap();
        let exact = engine::prob_boolean(&q, &t, Engine::Lineage).unwrap();
        let mut rng = SplitMix64::new(7);
        let est = estimate_ucq(&q, &t, 40_000, 100, &mut rng).unwrap();
        assert!((est.estimate - exact).abs() < 0.02);
    }

    #[test]
    fn degenerate_dnfs() {
        let t = table();
        let mut rng = SplitMix64::new(1);
        let zero = estimate_dnf(&vec![], &t, 10, &mut rng);
        assert_eq!(zero.estimate, 0.0);
        let one = estimate_dnf(&vec![vec![]], &t, 10, &mut rng);
        assert_eq!(one.estimate, 1.0);
        // all-zero weights
        let mut t2 = table();
        t2.add_fact(Fact::new(RelId(0), [Value::int(9)]), 0.0)
            .unwrap();
        let id = t2.len() as u32 - 1;
        let z = estimate_dnf(&vec![vec![FactId(id)]], &t2, 10, &mut rng);
        assert_eq!(z.estimate, 0.0);
    }

    #[test]
    fn parallel_estimate_is_thread_count_invariant() {
        let t = table();
        let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
        let exact = engine::prob_boolean(&q, &t, Engine::Lineage).unwrap();
        let mut arena = LineageArena::new();
        let root = lineage_of_arena(&q, &t, &mut arena).unwrap();
        let dnf = to_dnf_arena(&arena, root, 1000).unwrap();
        let base = estimate_dnf_parallel(&dnf, &t, 30_000, 17, 1);
        assert!((base.estimate - exact).abs() < 0.03 * exact.max(0.05));
        for threads in [2, 4, 5] {
            let e = estimate_dnf_parallel(&dnf, &t, 30_000, 17, threads);
            assert_eq!(
                e.estimate.to_bits(),
                base.estimate.to_bits(),
                "threads={threads}"
            );
            assert_eq!(e.clauses, base.clauses);
        }
        // degenerate shapes short-circuit identically at any thread count
        assert_eq!(estimate_dnf_parallel(&vec![], &t, 10, 3, 4).estimate, 0.0);
        assert_eq!(
            estimate_dnf_parallel(&vec![vec![]], &t, 10, 3, 4).estimate,
            1.0
        );
    }

    #[test]
    fn flat_chunk_matches_hashmap_reference_exactly() {
        // the pre-flattening chunk kernel: HashMap assignment, same draws
        fn reference_chunk<R: RngCore>(
            dnf: &Dnf,
            table: &TiTable,
            weights: &[f64],
            total_w: f64,
            vars: &[FactId],
            n: usize,
            rng: &mut R,
        ) -> usize {
            let m = dnf.len();
            let mut hits = 0usize;
            let mut assignment: HashMap<FactId, bool> = HashMap::with_capacity(vars.len());
            for _ in 0..n {
                let mut u = (rng.next_u64() as f64 / u64::MAX as f64) * total_w;
                let mut chosen = m - 1;
                for (i, w) in weights.iter().enumerate() {
                    u -= w;
                    if u <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                assignment.clear();
                for &v in &dnf[chosen] {
                    assignment.insert(v, true);
                }
                for &v in vars {
                    assignment.entry(v).or_insert_with(|| {
                        (rng.next_u64() as f64 / u64::MAX as f64) < table.prob(v)
                    });
                }
                let first_satisfied = dnf
                    .iter()
                    .position(|c| c.iter().all(|v| assignment[v]))
                    .expect("the chosen clause is satisfied");
                if first_satisfied == chosen {
                    hits += 1;
                }
            }
            hits
        }
        let t = table();
        let q = parse("exists x, y. R(x) /\\ S(x, y) /\\ T(y)", t.schema()).unwrap();
        let mut arena = LineageArena::new();
        let root = lineage_of_arena(&q, &t, &mut arena).unwrap();
        let dnf = to_dnf_arena(&arena, root, 1000).unwrap();
        let weights: Vec<f64> = dnf
            .iter()
            .map(|c| c.iter().map(|&v| t.prob(v)).product())
            .collect();
        let total_w: f64 = weights.iter().sum();
        let mut vars: Vec<FactId> = dnf.iter().flatten().copied().collect();
        vars.sort_unstable();
        vars.dedup();
        for seed in [0u64, 3, 99, 0xFEED_FACE] {
            let mut a = SplitMix64::new(seed);
            let mut b = SplitMix64::new(seed);
            assert_eq!(
                kl_chunk(&dnf, &t, &weights, total_w, &vars, 2000, &mut a),
                reference_chunk(&dnf, &t, &weights, total_w, &vars, 2000, &mut b),
                "seed={seed}"
            );
            // identical RNG consumption, too
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rejects_non_monotone_queries() {
        let t = table();
        let q = parse("exists x. R(x) /\\ !T(x)", t.schema()).unwrap();
        let mut rng = SplitMix64::new(1);
        assert!(estimate_ucq(&q, &t, 100, 100, &mut rng).is_err());
    }

    #[test]
    fn single_clause_estimates_are_exact_in_expectation() {
        // one clause: the estimator always scores 1, result = W exactly
        let t = table();
        let q = parse("R(1) /\\ T(1)", t.schema()).unwrap();
        let mut rng = SplitMix64::new(5);
        let est = estimate_ucq(&q, &t, 100, 10, &mut rng).unwrap();
        assert!((est.estimate - 0.35).abs() < 1e-12);
    }

    #[test]
    fn samples_for_scales_with_clauses() {
        let a = samples_for(10, 0.1, 0.05);
        let b = samples_for(100, 0.1, 0.05);
        assert!(b > 9 * a && b < 11 * a);
        assert!(samples_for(0, 0.1, 0.05) > 0);
    }

    #[test]
    fn relative_error_even_for_small_probabilities() {
        // the whole point of KL vs additive MC: tiny probabilities keep
        // relative accuracy
        let s = Schema::from_relations([Relation::new("R", 1)]).unwrap();
        let t = TiTable::from_facts(
            s,
            [
                (Fact::new(RelId(0), [Value::int(1)]), 1e-4),
                (Fact::new(RelId(0), [Value::int(2)]), 2e-4),
            ],
        )
        .unwrap();
        let q = parse("exists x. R(x)", t.schema()).unwrap();
        let exact = engine::prob_boolean(&q, &t, Engine::Lineage).unwrap();
        let mut rng = SplitMix64::new(11);
        let est = estimate_ucq(&q, &t, 50_000, 10, &mut rng).unwrap();
        let rel = (est.estimate - exact).abs() / exact;
        assert!(rel < 0.05, "relative error {rel} on P = {exact}");
    }
}

//! Hash-consed lineage arena: canonical Boolean provenance as a DAG.
//!
//! The boxed-tree [`Lineage`] representation pays
//! twice on the Proposition 6.1 hot path: structurally equal sub-lineages
//! are materialized once per occurrence, and every memo probe of the
//! Shannon engine rehashes an entire subtree. This module replaces it with
//! a classic knowledge-compilation *arena*: an interning table maps each
//! canonical node shape `(op, sorted child ids)` to a dense [`LineageId`],
//! so
//!
//! * structural equality is **id equality** — `O(1)` to hash and compare;
//! * shared substructure is **physically shared** — each distinct
//!   sub-lineage exists exactly once, however often it occurs;
//! * every node carries a **cached sorted variable set**, so connected-
//!   component decomposition stops recomputing free-variable scans.
//!
//! # Canonical-form invariants
//!
//! Constructors enforce the same normal form as the tree smart
//! constructors, so arena nodes are in 1–1 correspondence with canonical
//! [`Lineage`] trees:
//!
//! 1. `And`/`Or` children are flattened (no `And` directly under `And`),
//!    sorted by *structural* order (the tree's derived `Ord`), and
//!    deduplicated; constants are folded away.
//! 2. A complementary pair `g, ¬g` among siblings folds the node to
//!    `⊥`/`⊤`.
//! 3. Single-child `And`/`Or` unwrap; `¬¬g` folds to `g`; `¬⊤ = ⊥`.
//! 4. Children are created before parents, so every node's children have
//!    strictly smaller ids — a node's id order is a topological order,
//!    which makes bottom-up passes a single linear scan
//!    ([`LineageArena::eval_into`]).
//!
//! Because the correspondence is exact (including child *order*), the DAG
//! Shannon engine in [`crate::shannon`] performs bit-for-bit the same
//! floating-point operations as the tree reference engine — a property
//! the `arena_equivalence` test suite checks on hundreds of random
//! formulas.

use crate::lineage::Lineage;
use infpdb_core::fact::FactId;
use infpdb_core::instance::Instance;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Dense identifier of a node in a [`LineageArena`].
///
/// Ids are only meaningful relative to the arena that produced them.
/// Equality of ids within one arena is structural equality of the
/// lineages they denote (hash-consing invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineageId(pub u32);

/// The constant-false node, present in every arena.
pub const BOT: LineageId = LineageId(0);
/// The constant-true node, present in every arena.
pub const TOP: LineageId = LineageId(1);

/// One canonical node of the lineage DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LineageNode {
    /// Constant false.
    Bot,
    /// Constant true.
    Top,
    /// The fact variable "f ∈ D".
    Var(FactId),
    /// Negation (child is never a constant or another `Not`).
    Not(LineageId),
    /// Conjunction: ≥ 2 children, canonical order, no nested `And`.
    And(Box<[LineageId]>),
    /// Disjunction: ≥ 2 children, canonical order, no nested `Or`.
    Or(Box<[LineageId]>),
}

/// Interning and evaluation statistics of an arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct nodes currently interned (including `⊥`/`⊤`).
    pub nodes: usize,
    /// Constructor calls answered by the interning table instead of
    /// allocating a new node.
    pub intern_hits: usize,
}

/// A hash-consed arena of canonical lineage nodes.
///
/// Build nodes with [`var`](Self::var), [`and`](Self::and),
/// [`or`](Self::or), [`negate`](Self::negate); all take and return
/// [`LineageId`]s. One arena should be reused across an entire
/// evaluation (grounding + inference) so shared substructure is
/// discovered; arenas are cheap to create per evaluation and are not
/// meant to outlive one query's lifecycle.
#[derive(Debug, Default, Clone)]
pub struct LineageArena {
    nodes: Vec<LineageNode>,
    /// Sorted, deduplicated fact variables per node, shared via `Arc` so
    /// `Not` nodes alias their child's set.
    vars: Vec<Arc<[FactId]>>,
    intern: HashMap<LineageNode, LineageId>,
    /// Memoized structural comparisons (`cmp_structural`).
    cmp_cache: RefCell<HashMap<(u32, u32), Ordering>>,
    intern_hits: usize,
}

impl LineageArena {
    /// An arena holding only the constants `⊥` (id 0) and `⊤` (id 1).
    pub fn new() -> Self {
        let mut a = LineageArena::default();
        let empty: Arc<[FactId]> = Arc::from(Vec::new());
        a.nodes.push(LineageNode::Bot);
        a.vars.push(Arc::clone(&empty));
        a.intern.insert(LineageNode::Bot, BOT);
        a.nodes.push(LineageNode::Top);
        a.vars.push(empty);
        a.intern.insert(LineageNode::Top, TOP);
        a
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena holds only the two constants.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Interning statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.nodes.len(),
            intern_hits: self.intern_hits,
        }
    }

    /// The node behind an id.
    pub fn node(&self, id: LineageId) -> &LineageNode {
        &self.nodes[id.0 as usize]
    }

    /// The sorted fact variables occurring under `id`.
    pub fn vars(&self, id: LineageId) -> &[FactId] {
        &self.vars[id.0 as usize]
    }

    /// The shared handle to the variable set (cheap to clone).
    pub fn vars_arc(&self, id: LineageId) -> Arc<[FactId]> {
        Arc::clone(&self.vars[id.0 as usize])
    }

    fn intern(&mut self, node: LineageNode, vars: Arc<[FactId]>) -> LineageId {
        if let Some(&id) = self.intern.get(&node) {
            self.intern_hits += 1;
            return id;
        }
        let id = LineageId(u32::try_from(self.nodes.len()).expect("arena node count fits in u32"));
        self.nodes.push(node.clone());
        self.vars.push(vars);
        self.intern.insert(node, id);
        id
    }

    /// The fact variable `f`.
    pub fn var(&mut self, f: FactId) -> LineageId {
        self.intern(LineageNode::Var(f), Arc::from(vec![f]))
    }

    /// Canonical negation: constants and double negations fold.
    pub fn negate(&mut self, id: LineageId) -> LineageId {
        match self.node(id) {
            LineageNode::Top => BOT,
            LineageNode::Bot => TOP,
            LineageNode::Not(g) => *g,
            _ => {
                let vars = self.vars_arc(id);
                self.intern(LineageNode::Not(id), vars)
            }
        }
    }

    /// Canonical conjunction of arbitrarily many children.
    pub fn and(&mut self, children: impl IntoIterator<Item = LineageId>) -> LineageId {
        self.nary(children, /* is_and */ true)
    }

    /// Canonical disjunction of arbitrarily many children.
    pub fn or(&mut self, children: impl IntoIterator<Item = LineageId>) -> LineageId {
        self.nary(children, /* is_and */ false)
    }

    fn nary(&mut self, children: impl IntoIterator<Item = LineageId>, is_and: bool) -> LineageId {
        let (absorbing, neutral) = if is_and { (BOT, TOP) } else { (TOP, BOT) };
        let mut out: Vec<LineageId> = Vec::new();
        for c in children {
            if c == absorbing {
                return absorbing;
            }
            if c == neutral {
                continue;
            }
            match self.node(c) {
                LineageNode::And(gs) if is_and => out.extend_from_slice(gs),
                LineageNode::Or(gs) if !is_and => out.extend_from_slice(gs),
                _ => out.push(c),
            }
        }
        out.sort_by(|&a, &b| self.cmp_structural(a, b));
        out.dedup();
        if self.has_complementary_pair(&out) {
            return absorbing;
        }
        match out.len() {
            0 => neutral,
            1 => out[0],
            _ => {
                let mut vs: Vec<FactId> = Vec::new();
                for &c in &out {
                    vs.extend_from_slice(self.vars(c));
                }
                vs.sort_unstable();
                vs.dedup();
                let node = if is_and {
                    LineageNode::And(out.into_boxed_slice())
                } else {
                    LineageNode::Or(out.into_boxed_slice())
                };
                self.intern(node, Arc::from(vs))
            }
        }
    }

    /// Detects `g` and `¬g` among canonical siblings — `O(k)` thanks to
    /// hash-consing (id membership replaces structural lookup).
    fn has_complementary_pair(&self, children: &[LineageId]) -> bool {
        use std::collections::HashSet;
        let mut positives: HashSet<LineageId> = HashSet::new();
        let mut negatives: HashSet<LineageId> = HashSet::new();
        for &c in children {
            match self.node(c) {
                LineageNode::Not(g) => {
                    negatives.insert(*g);
                }
                _ => {
                    positives.insert(c);
                }
            }
        }
        positives.iter().any(|p| negatives.contains(p))
    }

    /// Structural order of the denoted canonical trees — exactly the
    /// derived `Ord` of [`Lineage`], so arena child order matches tree
    /// child order node for node. `O(1)` on equal ids; memoized on
    /// distinct ones, with equality short-cutting every recursive step.
    pub fn cmp_structural(&self, a: LineageId, b: LineageId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        if let Some(&ord) = self.cmp_cache.borrow().get(&(a.0, b.0)) {
            return ord;
        }
        let ord = self.cmp_uncached(a, b);
        let mut cache = self.cmp_cache.borrow_mut();
        cache.insert((a.0, b.0), ord);
        cache.insert((b.0, a.0), ord.reverse());
        ord
    }

    fn cmp_uncached(&self, a: LineageId, b: LineageId) -> Ordering {
        fn rank(n: &LineageNode) -> u8 {
            // the tree enum declares Top, Bot, Var, Not, And, Or
            match n {
                LineageNode::Top => 0,
                LineageNode::Bot => 1,
                LineageNode::Var(_) => 2,
                LineageNode::Not(_) => 3,
                LineageNode::And(_) => 4,
                LineageNode::Or(_) => 5,
            }
        }
        let (na, nb) = (self.node(a), self.node(b));
        match rank(na).cmp(&rank(nb)) {
            Ordering::Equal => {}
            ord => return ord,
        }
        match (na, nb) {
            (LineageNode::Var(x), LineageNode::Var(y)) => x.cmp(y),
            (LineageNode::Not(x), LineageNode::Not(y)) => self.cmp_structural(*x, *y),
            (LineageNode::And(xs), LineageNode::Or(ys))
            | (LineageNode::Or(xs), LineageNode::And(ys))
            | (LineageNode::And(xs), LineageNode::And(ys))
            | (LineageNode::Or(xs), LineageNode::Or(ys)) => {
                // Vec's derived Ord: lexicographic, then length
                let (xs, ys) = (xs.clone(), ys.clone());
                for (&x, &y) in xs.iter().zip(ys.iter()) {
                    match self.cmp_structural(x, y) {
                        Ordering::Equal => {}
                        ord => return ord,
                    }
                }
                xs.len().cmp(&ys.len())
            }
            _ => unreachable!("equal ranks imply equal discriminants"),
        }
    }

    /// Shannon cofactor: conditions `root` on `var = value`,
    /// re-canonicalizing. Subgraphs not mentioning `var` are returned
    /// unchanged (same id) — the DAG analogue of the tree's full-subtree
    /// rewrite, with per-call memoization so shared nodes rewrite once.
    pub fn assign(&mut self, root: LineageId, var: FactId, value: bool) -> LineageId {
        let mut memo: HashMap<LineageId, LineageId> = HashMap::new();
        self.assign_rec(root, var, value, &mut memo)
    }

    fn assign_rec(
        &mut self,
        id: LineageId,
        var: FactId,
        value: bool,
        memo: &mut HashMap<LineageId, LineageId>,
    ) -> LineageId {
        if self.vars(id).binary_search(&var).is_err() {
            return id; // var does not occur: the cofactor is the node itself
        }
        if let Some(&r) = memo.get(&id) {
            return r;
        }
        let result = match self.node(id).clone() {
            LineageNode::Bot | LineageNode::Top => id,
            LineageNode::Var(_) => {
                if value {
                    TOP
                } else {
                    BOT
                }
            }
            LineageNode::Not(g) => {
                let r = self.assign_rec(g, var, value, memo);
                self.negate(r)
            }
            LineageNode::And(gs) => {
                let rs: Vec<LineageId> = gs
                    .iter()
                    .map(|&g| self.assign_rec(g, var, value, memo))
                    .collect();
                self.and(rs)
            }
            LineageNode::Or(gs) => {
                let rs: Vec<LineageId> = gs
                    .iter()
                    .map(|&g| self.assign_rec(g, var, value, memo))
                    .collect();
                self.or(rs)
            }
        };
        memo.insert(id, result);
        result
    }

    /// Evaluates `root` in a world by one linear bottom-up pass over node
    /// ids (children precede parents). `buf` is scratch storage reused
    /// across calls — pass the same buffer when evaluating many worlds
    /// (Monte-Carlo) to avoid reallocation.
    pub fn eval_into(&self, root: LineageId, world: &Instance, buf: &mut Vec<bool>) -> bool {
        let upto = root.0 as usize + 1;
        buf.clear();
        buf.reserve(upto);
        for node in &self.nodes[..upto] {
            let v = match node {
                LineageNode::Bot => false,
                LineageNode::Top => true,
                LineageNode::Var(f) => world.contains(*f),
                LineageNode::Not(g) => !buf[g.0 as usize],
                LineageNode::And(gs) => gs.iter().all(|g| buf[g.0 as usize]),
                LineageNode::Or(gs) => gs.iter().any(|g| buf[g.0 as usize]),
            };
            buf.push(v);
        }
        buf[root.0 as usize]
    }

    /// Evaluates `root` in a world (allocating variant of
    /// [`eval_into`](Self::eval_into)).
    pub fn eval(&self, root: LineageId, world: &Instance) -> bool {
        self.eval_into(root, world, &mut Vec::new())
    }

    /// [`eval_into`](Self::eval_into) against a dense world: `present[i]`
    /// says whether fact id `i` is in the world (absent indices read as
    /// `false` — the closed-world convention of `Instance::contains`).
    ///
    /// This is the flat Monte-Carlo fast path: combined with
    /// [`TiTable::sample_into`](crate::TiTable::sample_into) it turns the
    /// per-sample inner loop into branch-free slice indexing with zero
    /// allocation — no `Instance` is built and no hash-set membership is
    /// probed. Fact ids are dense table positions, so the world vector is
    /// exactly as long as the table. Bit-for-bit the same verdict as
    /// `eval_into` on the corresponding `Instance`.
    pub fn eval_flat(&self, root: LineageId, present: &[bool], buf: &mut Vec<bool>) -> bool {
        let upto = root.0 as usize + 1;
        buf.clear();
        buf.reserve(upto);
        for node in &self.nodes[..upto] {
            let v = match node {
                LineageNode::Bot => false,
                LineageNode::Top => true,
                LineageNode::Var(f) => present.get(f.0 as usize).copied().unwrap_or(false),
                LineageNode::Not(g) => !buf[g.0 as usize],
                LineageNode::And(gs) => gs.iter().all(|g| buf[g.0 as usize]),
                LineageNode::Or(gs) => gs.iter().any(|g| buf[g.0 as usize]),
            };
            buf.push(v);
        }
        buf[root.0 as usize]
    }

    /// Number of distinct DAG nodes reachable from `root` (shared nodes
    /// count once; compare with the tree's `size`, which counts every
    /// occurrence).
    pub fn reachable(&self, root: LineageId) -> usize {
        let mut seen = vec![false; root.0 as usize + 1];
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0 as usize], true) {
                continue;
            }
            count += 1;
            match self.node(id) {
                LineageNode::Not(g) => stack.push(*g),
                LineageNode::And(gs) | LineageNode::Or(gs) => stack.extend_from_slice(gs),
                _ => {}
            }
        }
        count
    }

    /// Imports a boxed tree, re-canonicalizing through the constructors.
    /// On an already-canonical tree this is a pure structural copy.
    pub fn from_lineage(&mut self, l: &Lineage) -> LineageId {
        match l {
            Lineage::Top => TOP,
            Lineage::Bot => BOT,
            Lineage::Var(f) => self.var(*f),
            Lineage::Not(g) => {
                let id = self.from_lineage(g);
                self.negate(id)
            }
            Lineage::And(gs) => {
                let ids: Vec<LineageId> = gs.iter().map(|g| self.from_lineage(g)).collect();
                self.and(ids)
            }
            Lineage::Or(gs) => {
                let ids: Vec<LineageId> = gs.iter().map(|g| self.from_lineage(g)).collect();
                self.or(ids)
            }
        }
    }

    /// Exports a node as a boxed tree (testing/interop; shared DAG nodes
    /// are duplicated, exactly undoing the sharing).
    pub fn to_lineage(&self, id: LineageId) -> Lineage {
        match self.node(id) {
            LineageNode::Bot => Lineage::Bot,
            LineageNode::Top => Lineage::Top,
            LineageNode::Var(f) => Lineage::Var(*f),
            LineageNode::Not(g) => Lineage::Not(Box::new(self.to_lineage(*g))),
            LineageNode::And(gs) => Lineage::And(gs.iter().map(|&g| self.to_lineage(g)).collect()),
            LineageNode::Or(gs) => Lineage::Or(gs.iter().map(|&g| self.to_lineage(g)).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FactId {
        FactId(i)
    }

    #[test]
    fn constants_are_preinterned() {
        let a = LineageArena::new();
        assert_eq!(a.len(), 2);
        assert!(matches!(a.node(BOT), LineageNode::Bot));
        assert!(matches!(a.node(TOP), LineageNode::Top));
        assert!(a.vars(TOP).is_empty());
    }

    #[test]
    fn interning_dedupes_structurally_equal_nodes() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        let y = a.var(f(1));
        let g1 = a.and([x, y]);
        let g2 = a.and([y, x]); // different order, same canonical node
        assert_eq!(g1, g2);
        assert!(a.stats().intern_hits >= 1);
        let n = a.len();
        let g3 = a.and([x, y, x]); // dedup
        assert_eq!(g1, g3);
        assert_eq!(a.len(), n);
    }

    #[test]
    fn constants_fold_in_constructors() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        assert_eq!(a.and([x, BOT]), BOT);
        assert_eq!(a.and([x, TOP]), x);
        assert_eq!(a.or([x, TOP]), TOP);
        assert_eq!(a.or([x, BOT]), x);
        assert_eq!(a.and([]), TOP);
        assert_eq!(a.or([]), BOT);
    }

    #[test]
    fn complementary_pairs_fold() {
        let mut a = LineageArena::new();
        let x = a.var(f(3));
        let nx = a.negate(x);
        assert_eq!(a.and([x, nx]), BOT);
        assert_eq!(a.or([nx, x]), TOP);
        // also for compound children
        let y = a.var(f(4));
        let g = a.and([x, y]);
        let ng = a.negate(g);
        assert_eq!(a.or([g, ng]), TOP);
    }

    #[test]
    fn negation_folds() {
        let mut a = LineageArena::new();
        assert_eq!(a.negate(TOP), BOT);
        assert_eq!(a.negate(BOT), TOP);
        let x = a.var(f(0));
        let nx = a.negate(x);
        assert_eq!(a.negate(nx), x);
        // Not shares its child's variable set
        assert_eq!(a.vars(nx), a.vars(x));
    }

    #[test]
    fn nested_same_op_children_flatten() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        let y = a.var(f(1));
        let z = a.var(f(2));
        let xy = a.and([x, y]);
        let whole = a.and([xy, z]);
        match a.node(whole) {
            LineageNode::And(gs) => assert_eq!(gs.len(), 3),
            other => panic!("{other:?}"),
        }
        // Or under And does NOT flatten
        let oyz = a.or([y, z]);
        let mixed = a.and([x, oyz]);
        match a.node(mixed) {
            LineageNode::And(gs) => assert_eq!(gs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn children_sorted_in_tree_structural_order() {
        let mut a = LineageArena::new();
        let x = a.var(f(2));
        let y = a.var(f(1));
        let ny = a.negate(y);
        // structural order: Var(1) < Var(2) < Not(..)
        let g = a.or([ny, x, y]);
        let tree = a.to_lineage(g);
        assert_eq!(
            tree,
            Lineage::or([
                Lineage::Var(f(2)),
                Lineage::Var(f(1)),
                Lineage::Var(f(1)).negate()
            ])
        );
    }

    #[test]
    fn var_sets_are_sorted_unions() {
        let mut a = LineageArena::new();
        let x = a.var(f(5));
        let y = a.var(f(1));
        let z = a.var(f(3));
        let g1 = a.and([x, y]);
        let g2 = a.and([z, y]);
        let whole = a.or([g1, g2]);
        assert_eq!(a.vars(whole), &[f(1), f(3), f(5)]);
    }

    #[test]
    fn assign_cofactors_match_tree_assign() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        let y = a.var(f(1));
        let nx = a.negate(x);
        let xy = a.and([x, y]);
        let g = a.or([xy, nx]);
        assert_eq!(a.assign(g, f(0), true), y);
        assert_eq!(a.assign(g, f(0), false), TOP);
        // untouched variable: identity (same id, not merely equal)
        assert_eq!(a.assign(g, f(7), true), g);
    }

    #[test]
    fn eval_linear_pass_matches_tree_eval() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        let y = a.var(f(1));
        let nx = a.negate(x);
        let xy = a.and([x, y]);
        let g = a.or([xy, nx]);
        let tree = a.to_lineage(g);
        let mut buf = Vec::new();
        for mask in 0u32..4 {
            let mut ids = Vec::new();
            if mask & 1 != 0 {
                ids.push(f(0));
            }
            if mask & 2 != 0 {
                ids.push(f(1));
            }
            let world = Instance::from_ids(ids);
            assert_eq!(a.eval_into(g, &world, &mut buf), tree.eval(&world));
        }
    }

    #[test]
    fn eval_flat_matches_eval_into_on_every_world() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        let y = a.var(f(1));
        let z = a.var(f(2));
        let nx = a.negate(x);
        let xy = a.and([x, y]);
        let g = a.or([xy, nx, z]);
        let (mut buf, mut fbuf) = (Vec::new(), Vec::new());
        for mask in 0u32..8 {
            let present: Vec<bool> = (0..3).map(|i| mask & (1 << i) != 0).collect();
            let world = Instance::from_ids(
                (0..3u32)
                    .filter(|&i| present[i as usize])
                    .map(f)
                    .collect::<Vec<_>>(),
            );
            assert_eq!(
                a.eval_flat(g, &present, &mut fbuf),
                a.eval_into(g, &world, &mut buf),
                "mask={mask}"
            );
        }
        // a variable beyond the dense world reads as absent
        let w = a.var(f(9));
        assert!(!a.eval_flat(w, &[true, true], &mut fbuf));
    }

    #[test]
    fn round_trip_through_trees() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        let y = a.var(f(1));
        let z = a.var(f(2));
        let nz = a.negate(z);
        let g1 = a.and([x, y]);
        let g2 = a.and([y, nz]);
        let whole = a.or([g1, g2]);
        let tree = a.to_lineage(whole);
        let mut b = LineageArena::new();
        let again = b.from_lineage(&tree);
        assert_eq!(b.to_lineage(again), tree);
        // and importing into the SAME arena lands on the same id
        assert_eq!(a.from_lineage(&tree), whole);
    }

    #[test]
    fn reachable_counts_shared_nodes_once() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        let y = a.var(f(1));
        let z = a.var(f(2));
        let shared = a.or([x, y]);
        let g1 = a.and([z, shared]);
        let nz = a.negate(z);
        let g2 = a.and([nz, shared]);
        let whole = a.or([g1, g2]);
        // whole, g1, g2, nz, shared, x, y, z = 8 distinct nodes
        assert_eq!(a.reachable(whole), 8);
        // the tree (12 nodes) duplicates the 3 nodes of `shared`, and the
        // DAG additionally shares `z` between `g1` and `nz`
        assert_eq!(a.to_lineage(whole).size(), 12);
    }

    #[test]
    fn structural_cmp_orders_like_derived_tree_ord() {
        let mut a = LineageArena::new();
        let x = a.var(f(0));
        let y = a.var(f(1));
        let nx = a.negate(x);
        let and_xy = a.and([x, y]);
        let or_xy = a.or([x, y]);
        let pairs = [
            (TOP, BOT),
            (BOT, x),
            (x, y),
            (y, nx),
            (nx, and_xy),
            (and_xy, or_xy),
        ];
        for (lo, hi) in pairs {
            assert_eq!(a.cmp_structural(lo, hi), Ordering::Less, "{lo:?} < {hi:?}");
            assert_eq!(a.cmp_structural(hi, lo), Ordering::Greater);
            assert_eq!(
                a.to_lineage(lo).cmp(&a.to_lineage(hi)),
                Ordering::Less,
                "tree order agrees"
            );
        }
        assert_eq!(a.cmp_structural(and_xy, and_xy), Ordering::Equal);
    }
}

//! The `infpdb` command-line interface.
//!
//! A thin, testable layer over the library: tables are described in a
//! simple text format, queries in the `infpdb_logic` syntax, and each
//! subcommand is a pure function from parsed arguments to a rendered
//! report (the binary in `src/bin/infpdb.rs` only does I/O).
//!
//! # Table format
//!
//! ```text
//! # comments and blank lines are ignored
//! relation BornIn 2        # declare relations first
//! relation Person 1
//!
//! BornIn turing london @ 0.96       # fact: rel args… @ probability
//! Person turing        @ 0.99
//! Person 42            @ 0.5        # integer-looking args are integers
//! Person 20.3          @ 0.1        # decimal-looking args are fixed-point
//! ```
//!
//! # Subcommands
//!
//! * `info <table>` — schema, expected size, size distribution head.
//! * `query <table> <query> [--engine E] [--threads N]` — Boolean query
//!   probability; `--threads` forks independent lineage components
//!   across scoped threads (the answer is bit-for-bit identical at any
//!   thread count).
//! * `marginals <table> <query>` — per-answer marginal probabilities.
//! * `sample <table> [--count N] [--seed S]` — draw worlds.
//! * `open <table> <query> --eps E [--tail-mass M] [--tail-start K]` —
//!   open-world evaluation: completes the table with a geometric tail of
//!   fresh facts (over the first declared unary relation) and runs the
//!   Proposition 6.1 approximation.
//! * `batch <table> <queries-file> [--threads N] [--parallelism P]
//!   [--eps E] [--max-n N] [--deadline-ms D] [--policy widen|reject]
//!   [--queue-cap C] [--overflow block|reject|shed] [--tail-mass M]
//!   [--tail-start K]` —
//!   evaluates one query per line through the concurrent [`infpdb_serve`]
//!   service (thread pool + result cache + admission control +
//!   backpressure) and appends a metrics dump. `--deadline-ms` bounds
//!   each query's evaluation (cooperatively cancelled mid-truncation,
//!   reporting a sound partial interval when one is certifiable);
//!   `--queue-cap`/`--overflow` bound the submission queue;
//!   `--parallelism` sets the per-request intra-query thread budget
//!   (distinct from `--threads`, the request-pool size).
//! * `store snapshot <table> --dir DIR [--eps E] [--tail-mass M]
//!   [--tail-start K]` — grounds the `n(ε)` prefix of the open-world
//!   completion and writes it to the durable store (crash-safe:
//!   epoch-named segments, then an atomic manifest rename).
//! * `store verify --dir DIR` — offline fsck of a store directory:
//!   per-relation record counts, checksum failures, fingerprint
//!   verification; exits nonzero when any corruption is found.
//! * `store info --dir DIR` — prints the manifest summary.
//! * `bench [--smoke] [--impl tree|arena] [--out PATH] [--repeats N]
//!   [--threads T]` —
//!   runs the reproducible perf harness over the geometric, zeta, and
//!   blocks fixtures at ε ∈ {1e-2, 1e-3, 1e-4}, prints a summary table,
//!   and writes the `BENCH_<iso-date>.json` artifact (see
//!   `infpdb_bench::harness`). `--repeats` sets the minimum number of
//!   timed executions in the repeat-query (`prepared`) stage, which
//!   grounds the prefix once and re-executes the query against it;
//!   `--threads` sets the arena engine's intra-query thread budget
//!   (estimates are identical at every value).
//! * `bench store [--smoke] [--facts N] [--append N] [--shard-capacity C]
//!   [--dir DIR] [--out PATH]` — the durable-store scale bench: grounds
//!   an `N`-fact zeta prefix into a sharded store, times the full,
//!   incremental (after appending `--append` facts), and no-op
//!   snapshots, reopens via mmap, checks bit-for-bit answer equality
//!   across thread counts, and writes `BENCH_<iso-date>_store.json`
//!   (see `infpdb_bench::storebench`).

use infpdb_bench::harness::{self, ImplKind};
use infpdb_bench::planner as bench_planner;
use infpdb_bench::saturation::{self, SaturationConfig};
use infpdb_bench::storebench;
use infpdb_core::fact::Fact;
use infpdb_core::schema::{Relation, Schema};
use infpdb_core::space::rand_core::SplitMix64;
use infpdb_core::value::Value;
use infpdb_finite::engine::Engine;
use infpdb_finite::TiTable;
use infpdb_logic::parse;
use infpdb_math::series::GeometricSeries;
use infpdb_openworld::independent_facts::complete_ti_table;
use infpdb_query::approx::{approx_prob_boolean, Approximation};
use infpdb_query::planner::{self, PlanKnobs, PlanProfile};
use infpdb_query::prepared::PreparedPdb;
use infpdb_serve::fingerprint::countable_pdb_fingerprint;
use infpdb_serve::{
    CostBudget, DegradePolicy, OverflowPolicy, QueryRequest, QueryService, SchedulerKind,
    ServeError, ServiceConfig,
};
use infpdb_store::Store;
use infpdb_ti::construction::CountableTiPdb;
use infpdb_ti::enumerator::FactSupply;
use std::fmt::Write as _;
use std::time::Duration;

/// CLI errors, rendered to stderr by the binary.
#[derive(Debug)]
pub enum CliError {
    /// Table-file syntax error.
    Table {
        /// 1-based line number.
        line: usize,
        /// Problem description.
        message: String,
    },
    /// Anything from the library layers.
    Library(String),
    /// Bad command-line usage.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Table { line, message } => {
                write!(f, "table error on line {line}: {message}")
            }
            CliError::Library(m) => write!(f, "{m}"),
            CliError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

fn lib_err(e: impl std::fmt::Display) -> CliError {
    CliError::Library(e.to_string())
}

/// Parses the table format described in the module docs.
pub fn parse_table(input: &str) -> Result<TiTable, CliError> {
    let mut schema = Schema::new();
    let mut facts: Vec<(Fact, f64)> = Vec::new();
    let mut pending: Vec<(usize, Vec<String>, f64)> = Vec::new();
    for (no, raw) in input.lines().enumerate() {
        let line_no = no + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts: Vec<&str> = line.split_whitespace().collect();
        if parts[0] == "relation" {
            if parts.len() != 3 {
                return Err(CliError::Table {
                    line: line_no,
                    message: "expected `relation <Name> <arity>`".into(),
                });
            }
            let arity: usize = parts[2].parse().map_err(|_| CliError::Table {
                line: line_no,
                message: format!("bad arity {:?}", parts[2]),
            })?;
            schema
                .add(Relation::new(parts[1], arity))
                .map_err(|e| CliError::Table {
                    line: line_no,
                    message: e.to_string(),
                })?;
            continue;
        }
        // fact line: rel args… @ prob
        let at = parts
            .iter()
            .position(|p| *p == "@")
            .ok_or(CliError::Table {
                line: line_no,
                message: "fact lines need `@ <probability>`".into(),
            })?;
        if at + 2 != parts.len() {
            return Err(CliError::Table {
                line: line_no,
                message: "expected exactly one probability after `@`".into(),
            });
        }
        let prob: f64 = parts[at + 1].parse().map_err(|_| CliError::Table {
            line: line_no,
            message: format!("bad probability {:?}", parts[at + 1]),
        })?;
        parts.truncate(at);
        pending.push((line_no, parts.iter().map(|s| s.to_string()).collect(), prob));
    }
    for (line_no, parts, prob) in pending {
        let rel = schema.rel_id(&parts[0]).ok_or_else(|| CliError::Table {
            line: line_no,
            message: format!(
                "unknown relation {:?} (declare it with `relation`)",
                parts[0]
            ),
        })?;
        let expected = schema.relation(rel).arity();
        if parts.len() - 1 != expected {
            return Err(CliError::Table {
                line: line_no,
                message: format!(
                    "relation {} has arity {expected} but got {} arguments",
                    parts[0],
                    parts.len() - 1
                ),
            });
        }
        let args: Vec<Value> = parts[1..].iter().map(|s| parse_value(s)).collect();
        facts.push((Fact::new(rel, args), prob));
    }
    TiTable::from_facts(schema, facts).map_err(lib_err)
}

/// Renders a table back into the text format accepted by
/// [`parse_table`]; `parse_table(&render_table(&t))` reproduces `t`.
///
/// Limitation: the text format is whitespace-separated, so string values
/// containing whitespace (constructible through the library API) cannot
/// round-trip; they are emitted as-is and will re-parse as multiple
/// arguments.
pub fn render_table(table: &TiTable) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (_, r) in table.schema().iter() {
        writeln!(out, "relation {} {}", r.name(), r.arity()).ok();
    }
    for (_, fact, p) in table.iter() {
        let name = table
            .schema()
            .get(fact.rel())
            .map(|r| r.name())
            .unwrap_or("?");
        let args: Vec<String> = fact.args().iter().map(render_value).collect();
        writeln!(out, "{name} {} @ {p}", args.join(" ")).ok();
    }
    out
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Int(n) => n.to_string(),
        Value::Fixed(x) => x.to_string(),
        Value::Str(s) => s.to_string(),
    }
}

/// Integers parse as `Int`, decimals as `Fixed`, everything else as `Str`.
pub fn parse_value(s: &str) -> Value {
    if let Ok(n) = s.parse::<i64>() {
        return Value::int(n);
    }
    if let Some((whole, frac)) = s.split_once('.') {
        if !frac.is_empty()
            && frac.len() <= 9
            && frac.bytes().all(|b| b.is_ascii_digit())
            && (whole.parse::<i64>().is_ok() || whole.is_empty() || whole == "-")
        {
            let mantissa: Result<i64, _> = format!("{whole}{frac}").parse();
            if let Ok(m) = mantissa {
                return Value::fixed(m, frac.len() as u8);
            }
        }
    }
    Value::str(s)
}

fn parse_engine(s: &str) -> Result<Engine, CliError> {
    match s {
        "auto" => Ok(Engine::Auto),
        "lifted" => Ok(Engine::Lifted),
        "lineage" => Ok(Engine::Lineage),
        "brute" => Ok(Engine::Brute),
        other => Err(CliError::Usage(format!(
            "unknown engine {other:?} (auto|lifted|lineage|brute)"
        ))),
    }
}

/// `info` subcommand.
pub fn cmd_info(table_text: &str) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let mut out = String::new();
    writeln!(out, "relations:").ok();
    for (_, r) in table.schema().iter() {
        writeln!(out, "  {} / {}", r.name(), r.arity()).ok();
    }
    writeln!(out, "facts: {}", table.len()).ok();
    writeln!(out, "expected instance size: {:.6}", table.expected_size()).ok();
    let dist = table.size_distribution();
    writeln!(out, "size distribution (first entries):").ok();
    for (k, p) in dist.iter().take(8).enumerate() {
        writeln!(out, "  P(S = {k}) = {p:.6}").ok();
    }
    Ok(out)
}

/// `query` subcommand.
///
/// Closed-world evaluation is exact, so the certified interval is the
/// degenerate `[p, p]` — reported anyway so every evaluation path of the
/// CLI answers in the same certified-enclosure vocabulary. `threads`
/// (`--threads`) sets the intra-query thread budget of the lineage
/// engine; the answer is bit-for-bit identical at every value.
pub fn cmd_query(
    table_text: &str,
    query: &str,
    engine: &str,
    threads: usize,
) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let q = parse(query, table.schema()).map_err(lib_err)?;
    let e = parse_engine(engine)?;
    let (p, _) =
        infpdb_finite::engine::prob_boolean_traced_par(&q, &table, e, threads).map_err(lib_err)?;
    let a = Approximation {
        estimate: p,
        eps: 0.0,
        n: table.len(),
        tail_mass: 0.0,
    };
    let iv = a.interval();
    Ok(format!(
        "P({query}) = {p}\ncertified interval = [{}, {}] (exact, closed world over n = {} facts)\n",
        iv.lo(),
        iv.hi(),
        a.n
    ))
}

/// Renders a [`infpdb_finite::plan::ChosenPlan`] as the `--explain`
/// plan tree: the
/// connective, one line per relation-disjoint component with its safety
/// verdict, chosen strategy, and cost estimate, and the ε budget split.
pub fn render_plan(
    compiled: &infpdb_logic::compile::CompiledQuery,
    plan: &infpdb_finite::plan::ChosenPlan,
    n_eval: usize,
) -> String {
    use infpdb_finite::plan::Strategy;
    use infpdb_logic::compile::Connective;
    let mut out = String::new();
    let conn = match plan.connective {
        Connective::Single => "single component",
        Connective::And => "independent-and",
        Connective::Or => "independent-or",
    };
    writeln!(
        out,
        "plan: {conn}, eps = {}, truncation eps = {}, evaluation prefix n = {n_eval}",
        plan.eps, plan.eps_trunc
    )
    .ok();
    for (i, (cp, comp)) in plan
        .components
        .iter()
        .zip(compiled.components())
        .enumerate()
    {
        let verdict = match (comp.is_safe(), comp.is_monotone()) {
            (true, true) => "safe, monotone",
            (true, false) => "safe",
            (false, true) => "unsafe, monotone",
            (false, false) => "unsafe",
        };
        let branch = if i + 1 == plan.components.len() {
            "└─"
        } else {
            "├─"
        };
        write!(
            out,
            "  {branch} component {i} [{verdict}] -> {}",
            cp.strategy.name()
        )
        .ok();
        match cp.strategy {
            Strategy::MonteCarlo { samples } => {
                write!(out, " ({samples} samples, seed {:#018x})", cp.seed).ok();
            }
            Strategy::KarpLuby {
                samples,
                max_clauses,
            } => {
                write!(
                    out,
                    " ({samples} samples, <= {max_clauses} clauses, seed {:#018x})",
                    cp.seed
                )
                .ok();
            }
            Strategy::Lifted | Strategy::Shannon => {}
        }
        writeln!(out, ", cost ~ {:.0}", cp.cost).ok();
    }
    let total: f64 = plan.components.iter().map(|c| c.cost).sum();
    writeln!(out, "total estimated cost ~ {total:.0} work units").ok();
    out
}

/// `query --explain`: derives and prints the cost-based plan for a
/// closed-world table without evaluating. The profile runs on the table
/// itself; with ε = 0 the sampling strategies are disqualified, so the
/// verdict is the exact-engine choice (lifted vs. Shannon).
pub fn cmd_query_explain(table_text: &str, query: &str) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let q = parse(query, table.schema()).map_err(lib_err)?;
    let knobs = PlanKnobs::default();
    let compiled = infpdb_logic::compile::CompiledQuery::compile(table.schema(), &q);
    let profile =
        PlanProfile::build(&compiled, &table, table.fingerprint(), &knobs).map_err(lib_err)?;
    let plan = profile.choose(0.0, table.len(), &knobs);
    Ok(render_plan(&compiled, &plan, table.len()))
}

/// `open --explain`: derives and prints the cost-based plan the
/// open-world evaluation would run at tolerance `eps`, without
/// evaluating it — the planner's verdict is a deterministic function of
/// (PDB, query, ε, knobs), so this is exactly the plan `open` executes.
pub fn cmd_open_explain(
    table_text: &str,
    query: &str,
    eps: f64,
    tail_mass: f64,
    tail_start: i64,
) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let q = parse(query, table.schema()).map_err(lib_err)?;
    let open = open_world_pdb(&table, tail_mass, tail_start)?;
    let (compiled, plan, n_eval) =
        planner::explain(&open, &q, eps, &PlanKnobs::default()).map_err(lib_err)?;
    Ok(render_plan(&compiled, &plan, n_eval))
}

/// `marginals` subcommand.
pub fn cmd_marginals(table_text: &str, query: &str) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let q = parse(query, table.schema()).map_err(lib_err)?;
    let answers =
        infpdb_finite::engine::answer_marginals(&q, &table, Engine::Auto).map_err(lib_err)?;
    let mut out = String::new();
    if answers.is_empty() {
        writeln!(out, "(no answers with positive probability)").ok();
    }
    for (tuple, p) in answers {
        let rendered: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
        writeln!(out, "({}) @ {p:.6}", rendered.join(", ")).ok();
    }
    Ok(out)
}

/// `sample` subcommand.
pub fn cmd_sample(table_text: &str, count: usize, seed: u64) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let mut rng = SplitMix64::new(seed);
    let mut out = String::new();
    for _ in 0..count {
        let world = table.sample(&mut rng);
        writeln!(out, "{}", world.display(table.schema(), table.interner())).ok();
    }
    Ok(out)
}

/// Completes a closed-world table with a geometric tail of fresh facts
/// over the first declared unary relation, integers from `tail_start`
/// upward — the open-world PDB behind `open`, `batch`, `serve`, and the
/// shell.
pub(crate) fn open_world_pdb(
    table: &TiTable,
    tail_mass: f64,
    tail_start: i64,
) -> Result<CountableTiPdb, CliError> {
    let (rel, _) = table
        .schema()
        .iter()
        .find(|(_, r)| r.arity() == 1)
        .ok_or_else(|| {
            CliError::Usage(
                "open-world evaluation needs a unary relation to attach the fresh-fact tail to"
                    .into(),
            )
        })?;
    let series = GeometricSeries::new(tail_mass / 2.0, 0.5).map_err(lib_err)?;
    let tail = FactSupply::from_fn(
        table.schema().clone(),
        move |i| Fact::new(rel, [Value::int(tail_start + i as i64)]),
        series,
    );
    complete_ti_table(table, tail).map_err(lib_err)
}

/// `open` subcommand: open-world evaluation with a geometric tail of fresh
/// facts over the first declared unary relation, integers from
/// `tail_start` upward.
pub fn cmd_open(
    table_text: &str,
    query: &str,
    eps: f64,
    tail_mass: f64,
    tail_start: i64,
) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let q = parse(query, table.schema()).map_err(lib_err)?;
    let open = open_world_pdb(&table, tail_mass, tail_start)?;
    let a = approx_prob_boolean(&open, &q, eps, Engine::Auto).map_err(lib_err)?;
    let iv = a.interval();
    Ok(format!(
        "P({query}) = {} ± {} (open world; truncated at n = {})\ncertified interval = [{}, {}]\n",
        a.estimate,
        a.eps,
        a.n,
        iv.lo(),
        iv.hi()
    ))
}

/// Tuning for the `batch` subcommand beyond its two required inputs;
/// mirrors the command-line flags one for one.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Requested additive tolerance per query (`--eps`).
    pub eps: f64,
    /// Worker threads in the service pool (`--threads`).
    pub threads: usize,
    /// Truncation-size budget per query (`--max-n`).
    pub max_n: Option<usize>,
    /// Per-query evaluation deadline (`--deadline-ms`); enforced at
    /// admission and cooperatively mid-truncation.
    pub deadline: Option<Duration>,
    /// Over-budget handling (`--policy widen|reject`).
    pub policy: DegradePolicy,
    /// Submission-queue capacity (`--queue-cap`); `None` is the service
    /// default of 8 × threads.
    pub queue_cap: Option<usize>,
    /// Queue-overflow handling (`--overflow block|reject|shed`).
    pub overflow: OverflowPolicy,
    /// Total probability mass of the fresh-fact tail (`--tail-mass`).
    pub tail_mass: f64,
    /// First integer the tail invents facts for (`--tail-start`).
    pub tail_start: i64,
    /// Intra-query thread budget per evaluation (`--parallelism`);
    /// independent of `threads`, which sizes the request pool.
    pub parallelism: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            eps: 0.01,
            threads: 4,
            max_n: None,
            deadline: None,
            policy: DegradePolicy::WidenEps,
            queue_cap: None,
            overflow: OverflowPolicy::Block,
            tail_mass: 0.5,
            tail_start: 1_000_000,
            parallelism: 1,
        }
    }
}

/// `batch` subcommand: evaluates one query per line of `queries_text`
/// through the concurrent [`infpdb_serve::QueryService`] over the
/// open-world completion of the table, printing one result line per query
/// (in input order) followed by the service's metrics dump. Every query
/// gets a line no matter how it resolved — success, rejection, deadline,
/// shed, or error.
pub fn cmd_batch(
    table_text: &str,
    queries_text: &str,
    opts: BatchOptions,
) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let open = open_world_pdb(&table, opts.tail_mass, opts.tail_start)?;
    let queries: Vec<&str> = queries_text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .collect();
    if queries.is_empty() {
        return Err(CliError::Usage(
            "batch: the queries file has no queries".into(),
        ));
    }
    let budget = CostBudget {
        max_n: opts.max_n,
        deadline: opts.deadline,
    };
    let requests = queries
        .iter()
        .map(|text| {
            let q = parse(text, open.schema()).map_err(lib_err)?;
            Ok(QueryRequest::new(q, opts.eps).with_budget(budget))
        })
        .collect::<Result<Vec<_>, CliError>>()?;

    let svc = QueryService::new(
        open,
        ServiceConfig {
            threads: opts.threads,
            policy: opts.policy,
            queue_cap: opts.queue_cap,
            overflow: opts.overflow,
            parallelism: opts.parallelism,
            ..ServiceConfig::default()
        },
    );
    let tickets = svc.submit_batch(requests);
    let mut out = String::new();
    for (text, ticket) in queries.iter().zip(tickets) {
        match ticket.wait() {
            Ok(r) => {
                let iv = r.interval();
                write!(
                    out,
                    "P({text}) = {} ± {} in [{}, {}] (n = {}",
                    r.approx.estimate,
                    r.approx.eps,
                    iv.lo(),
                    iv.hi(),
                    r.approx.n
                )
                .ok();
                if r.degraded {
                    write!(out, ", degraded from eps = {}", r.requested_eps).ok();
                }
                if r.cached {
                    write!(out, ", cached").ok();
                }
                writeln!(out, ")").ok();
            }
            Err(ServeError::Rejected {
                needed_n, max_n, ..
            }) => {
                writeln!(
                    out,
                    "P({text}): rejected (needs n = {needed_n}, budget allows n = {max_n})"
                )
                .ok();
            }
            Err(ServeError::DeadlineExceeded {
                facts_processed,
                partial,
            }) => {
                write!(
                    out,
                    "P({text}): deadline exceeded after {facts_processed} facts"
                )
                .ok();
                if let Some(p) = partial {
                    let iv = p.interval();
                    write!(
                        out,
                        "; partial = {} ± {} in [{}, {}]",
                        p.estimate,
                        p.eps,
                        iv.lo(),
                        iv.hi()
                    )
                    .ok();
                }
                writeln!(out).ok();
            }
            Err(ServeError::Overloaded { queue_cap }) => {
                writeln!(out, "P({text}): shed (queue full at {queue_cap})").ok();
            }
            Err(e) => {
                writeln!(out, "P({text}): error: {e}").ok();
            }
        }
    }
    writeln!(out, "-- metrics --").ok();
    out.push_str(&svc.metrics().dump());
    svc.join();
    Ok(out)
}

/// `store snapshot` subcommand: grounds the `n(ε)` prefix of the
/// open-world completion and persists it through the crash-safe
/// snapshot protocol. The manifest records the PDB fingerprint so a
/// later `serve --store` (or `store snapshot` over a different table)
/// cannot silently mix databases.
pub fn cmd_store_snapshot(
    table_text: &str,
    dir: &str,
    eps: f64,
    tail_mass: f64,
    tail_start: i64,
) -> Result<String, CliError> {
    let table = parse_table(table_text)?;
    let open = open_world_pdb(&table, tail_mass, tail_start)?;
    let fp = countable_pdb_fingerprint(&open);
    let prepared = PreparedPdb::new(open);
    let n = prepared.warm(eps).map_err(lib_err)?;
    let store = Store::open_dir(dir);
    let info = prepared.persist(&store, Some(fp), None).map_err(lib_err)?;
    if info.unchanged {
        return Ok(format!(
            "snapshot unchanged at epoch {} in {dir}: {} facts (warmed at eps = {eps}, n = {n}), \
             nothing written\n",
            info.epoch, info.facts
        ));
    }
    Ok(format!(
        "snapshot epoch {} written to {dir}: {} facts (warmed at eps = {eps}, n = {n}) \
         in {} shard(s) ({} reused), {} bytes\n",
        info.epoch, info.facts, info.shards_written, info.shards_skipped, info.bytes
    ))
}

/// `store verify` subcommand: offline fsck. Walks every segment the
/// manifest names, re-scans records against their CRC32C frames, and
/// recomputes fingerprints. Clean stores return `Ok`; any corruption
/// (torn tails, checksum failures, missing files, fingerprint
/// mismatches) returns the same report as an `Err`, so the binary
/// exits nonzero.
pub fn cmd_store_verify(dir: &str) -> Result<String, CliError> {
    let store = Store::open_dir(dir);
    let Some(report) = store.verify().map_err(lib_err)? else {
        return Ok(format!("{dir}: no snapshot (empty store)\n"));
    };
    let mut out = String::new();
    writeln!(
        out,
        "epoch {}: {} facts expected",
        report.epoch, report.facts_expected
    )
    .ok();
    for r in &report.relations {
        let verdict = if !r.readable {
            "MISSING"
        } else if r.checksum_failures > 0 || r.records_found < r.records_expected {
            "CORRUPT"
        } else if !r.fingerprint_ok {
            "FINGERPRINT MISMATCH"
        } else {
            "ok"
        };
        writeln!(
            out,
            "  {} shard {} ({}): {}/{} records, {} checksum failure(s), {} torn byte(s) — \
             {verdict}",
            r.name,
            r.shard,
            r.file,
            r.records_found,
            r.records_expected,
            r.checksum_failures,
            r.torn_bytes
        )
        .ok();
    }
    if report.clean() {
        writeln!(out, "clean").ok();
        Ok(out)
    } else {
        write!(out, "corruption detected").ok();
        Err(CliError::Library(out))
    }
}

/// `store info` subcommand: the manifest-only fast path. Prints the
/// manifest summary plus per-shard sizes from `stat(2)` — never reads a
/// shard's contents, so it is O(#shards) even on a 10⁷-fact store.
pub fn cmd_store_info(dir: &str) -> Result<String, CliError> {
    let store = Store::open_dir(dir);
    let Some(m) = store.read_manifest().map_err(lib_err)? else {
        return Ok(format!("{dir}: no snapshot (empty store)\n"));
    };
    let stat = store.stat().map_err(lib_err)?.expect("manifest just read");
    let mut out = String::new();
    writeln!(out, "epoch: {}", m.epoch).ok();
    writeln!(out, "facts: {}", m.facts).ok();
    writeln!(out, "shard capacity: {}", m.shard_capacity).ok();
    writeln!(out, "table fingerprint: {:016x}", m.table_fingerprint).ok();
    if let Some(fp) = m.pdb_fingerprint {
        writeln!(out, "pdb fingerprint: {fp:016x}").ok();
    }
    writeln!(out, "relations:").ok();
    for r in &m.relations {
        writeln!(out, "  {} / {}", r.name, r.arity).ok();
    }
    writeln!(
        out,
        "shards ({}, {} bytes total):",
        stat.shards.len(),
        stat.total_bytes
    )
    .ok();
    for s in &stat.shards {
        writeln!(
            out,
            "  {} shard {} ({}): {} record(s), {} bytes{}",
            s.name,
            s.shard,
            s.file,
            s.count,
            s.bytes,
            if s.present { "" } else { " — MISSING" }
        )
        .ok();
    }
    Ok(out)
}

/// `bench` subcommand: runs the reproducible perf harness
/// ([`infpdb_bench::harness`]) over the geometric and zeta fixtures and
/// writes the `BENCH_<iso-date>.json` artifact. The one subcommand that
/// performs file output itself (the artifact path is part of its
/// contract); everything printed goes through the usual return value.
pub fn cmd_bench(
    impl_name: &str,
    smoke: bool,
    out_path: Option<&str>,
    repeats: usize,
    threads: usize,
    scheduler: Option<SchedulerKind>,
) -> Result<String, CliError> {
    let impl_kind = ImplKind::parse(impl_name)
        .ok_or_else(|| CliError::Usage(format!("unknown --impl {impl_name:?} (tree|arena)")))?;
    let mut config = harness::BenchConfig::new(impl_kind, smoke);
    config.repeats = repeats;
    config.threads = threads.max(1);
    let mut report = harness::run(&config).map_err(CliError::Library)?;
    let mut sat_config = if smoke {
        SaturationConfig::smoke()
    } else {
        SaturationConfig::full()
    };
    sat_config.scheduler = scheduler;
    report.saturation = saturation::run(&sat_config).map_err(CliError::Library)?;
    report.planner =
        bench_planner::run(&bench_planner::PlannerConfig { smoke }).map_err(CliError::Library)?;
    let json = harness::to_json(&report);
    let path = out_path
        .map(str::to_string)
        .unwrap_or_else(|| format!("BENCH_{}.json", report.date));
    std::fs::write(&path, &json)
        .map_err(|e| CliError::Library(format!("cannot write {path}: {e}")))?;
    let mut out = harness::summary_table(&report);
    writeln!(out, "wrote {path}").ok();
    Ok(out)
}

/// `bench store` subcommand: the durable-store scale bench
/// ([`infpdb_bench::storebench`]). Grounds a multi-million-fact zeta
/// prefix, times full/incremental/no-op snapshots and the mmap reopen,
/// verifies bit-for-bit answers, and writes
/// `BENCH_<iso-date>_store.json`.
pub fn cmd_bench_store(
    smoke: bool,
    facts: Option<usize>,
    append: Option<usize>,
    shard_capacity: Option<u64>,
    dir: Option<&str>,
    out_path: Option<&str>,
) -> Result<String, CliError> {
    let mut config = if smoke {
        storebench::StoreBenchConfig::smoke()
    } else {
        storebench::StoreBenchConfig::full()
    };
    if let Some(f) = facts {
        config.facts = f;
    }
    if let Some(a) = append {
        config.append = a;
    }
    if let Some(c) = shard_capacity {
        if c == 0 {
            return Err(CliError::Usage("--shard-capacity must be positive".into()));
        }
        config.shard_capacity = c;
    }
    config.dir = dir.map(std::path::PathBuf::from);
    let report = storebench::run(&config).map_err(CliError::Library)?;
    let json = report.to_json();
    let path = out_path
        .map(str::to_string)
        .unwrap_or_else(|| format!("BENCH_{}_store.json", report.date));
    std::fs::write(&path, &json)
        .map_err(|e| CliError::Library(format!("cannot write {path}: {e}")))?;
    let mut out = report.summary_table();
    writeln!(out, "wrote {path}").ok();
    Ok(out)
}

/// Argument dispatch for the binary. `args` excludes the program name.
pub fn run(
    args: &[String],
    read_file: impl Fn(&str) -> std::io::Result<String>,
) -> Result<String, CliError> {
    let usage =
        "usage: infpdb <info|query|marginals|sample|open|batch|store|bench|netbench|serve|shell> <table-file> [...]";
    if args.is_empty() {
        return Err(CliError::Usage(usage.into()));
    }
    let read = |path: &str| -> Result<String, CliError> {
        read_file(path).map_err(|e| CliError::Usage(format!("cannot read {path}: {e}")))
    };
    let flag = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    match args[0].as_str() {
        "info" => {
            let table = read(args.get(1).ok_or(CliError::Usage(usage.into()))?)?;
            cmd_info(&table)
        }
        "query" => {
            let table = read(args.get(1).ok_or(CliError::Usage(usage.into()))?)?;
            let q = args
                .get(2)
                .ok_or(CliError::Usage("query: missing query string".into()))?;
            if args.iter().any(|a| a == "--explain") {
                return cmd_query_explain(&table, q);
            }
            let threads: usize = flag("--threads", "1")
                .parse()
                .map_err(|_| CliError::Usage("--threads must be a number".into()))?;
            cmd_query(&table, q, &flag("--engine", "auto"), threads)
        }
        "marginals" => {
            let table = read(args.get(1).ok_or(CliError::Usage(usage.into()))?)?;
            let q = args
                .get(2)
                .ok_or(CliError::Usage("marginals: missing query string".into()))?;
            cmd_marginals(&table, q)
        }
        "sample" => {
            let table = read(args.get(1).ok_or(CliError::Usage(usage.into()))?)?;
            let count: usize = flag("--count", "5")
                .parse()
                .map_err(|_| CliError::Usage("--count must be a number".into()))?;
            let seed: u64 = flag("--seed", "42")
                .parse()
                .map_err(|_| CliError::Usage("--seed must be a number".into()))?;
            cmd_sample(&table, count, seed)
        }
        "open" => {
            let table = read(args.get(1).ok_or(CliError::Usage(usage.into()))?)?;
            let q = args
                .get(2)
                .ok_or(CliError::Usage("open: missing query string".into()))?;
            let eps: f64 = flag("--eps", "0.01")
                .parse()
                .map_err(|_| CliError::Usage("--eps must be a number".into()))?;
            let tail_mass: f64 = flag("--tail-mass", "0.5")
                .parse()
                .map_err(|_| CliError::Usage("--tail-mass must be a number".into()))?;
            let tail_start: i64 = flag("--tail-start", "1000000")
                .parse()
                .map_err(|_| CliError::Usage("--tail-start must be a number".into()))?;
            if args.iter().any(|a| a == "--explain") {
                return cmd_open_explain(&table, q, eps, tail_mass, tail_start);
            }
            cmd_open(&table, q, eps, tail_mass, tail_start)
        }
        "batch" => {
            let table = read(args.get(1).ok_or(CliError::Usage(usage.into()))?)?;
            let queries = read(
                args.get(2)
                    .ok_or(CliError::Usage("batch: missing queries file".into()))?,
            )?;
            let eps: f64 = flag("--eps", "0.01")
                .parse()
                .map_err(|_| CliError::Usage("--eps must be a number".into()))?;
            let threads: usize = flag("--threads", "4")
                .parse()
                .map_err(|_| CliError::Usage("--threads must be a number".into()))?;
            let max_n = match flag("--max-n", "") {
                s if s.is_empty() => None,
                s => Some(
                    s.parse::<usize>()
                        .map_err(|_| CliError::Usage("--max-n must be a number".into()))?,
                ),
            };
            let deadline = match flag("--deadline-ms", "") {
                s if s.is_empty() => None,
                s => Some(Duration::from_millis(s.parse::<u64>().map_err(|_| {
                    CliError::Usage("--deadline-ms must be a number of milliseconds".into())
                })?)),
            };
            let policy = match flag("--policy", "widen").as_str() {
                "widen" => DegradePolicy::WidenEps,
                "reject" => DegradePolicy::Reject,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown policy {other:?} (widen|reject)"
                    )))
                }
            };
            let queue_cap = match flag("--queue-cap", "") {
                s if s.is_empty() => None,
                s => Some(
                    s.parse::<usize>()
                        .map_err(|_| CliError::Usage("--queue-cap must be a number".into()))?,
                ),
            };
            let overflow = match flag("--overflow", "block").as_str() {
                "block" => OverflowPolicy::Block,
                "reject" => OverflowPolicy::RejectNewest,
                "shed" => OverflowPolicy::ShedOldest,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown overflow policy {other:?} (block|reject|shed)"
                    )))
                }
            };
            let tail_mass: f64 = flag("--tail-mass", "0.5")
                .parse()
                .map_err(|_| CliError::Usage("--tail-mass must be a number".into()))?;
            let tail_start: i64 = flag("--tail-start", "1000000")
                .parse()
                .map_err(|_| CliError::Usage("--tail-start must be a number".into()))?;
            let parallelism: usize = flag("--parallelism", "1")
                .parse()
                .map_err(|_| CliError::Usage("--parallelism must be a number".into()))?;
            cmd_batch(
                &table,
                &queries,
                BatchOptions {
                    eps,
                    threads,
                    max_n,
                    deadline,
                    policy,
                    queue_cap,
                    overflow,
                    tail_mass,
                    tail_start,
                    parallelism,
                },
            )
        }
        "store" => {
            let store_usage = "usage: infpdb store <snapshot|verify|info> \
                 [<table-file>] --dir DIR [--eps E] [--tail-mass M] [--tail-start K]";
            let dir = match flag("--dir", "") {
                s if s.is_empty() => return Err(CliError::Usage(store_usage.into())),
                s => s,
            };
            match args.get(1).map(String::as_str) {
                Some("snapshot") => {
                    let table = read(
                        args.get(2)
                            .filter(|a| !a.starts_with("--"))
                            .ok_or(CliError::Usage(store_usage.into()))?,
                    )?;
                    let eps: f64 = flag("--eps", "0.01")
                        .parse()
                        .map_err(|_| CliError::Usage("--eps must be a number".into()))?;
                    let tail_mass: f64 = flag("--tail-mass", "0.5")
                        .parse()
                        .map_err(|_| CliError::Usage("--tail-mass must be a number".into()))?;
                    let tail_start: i64 = flag("--tail-start", "1000000")
                        .parse()
                        .map_err(|_| CliError::Usage("--tail-start must be a number".into()))?;
                    cmd_store_snapshot(&table, &dir, eps, tail_mass, tail_start)
                }
                Some("verify") => cmd_store_verify(&dir),
                Some("info") => cmd_store_info(&dir),
                _ => Err(CliError::Usage(store_usage.into())),
            }
        }
        "netbench" => {
            let table = read(args.get(1).ok_or(CliError::Usage(
                "netbench: missing table file (usage: infpdb netbench <table-file> [--smoke] [--connections 1,2,4,8] [--requests N] [--eps E] [--threads T] [--out PATH])".into(),
            ))?)?;
            let opts = crate::netcmd::parse_netbench_options(&args[2..])?;
            crate::netcmd::cmd_netbench(&table, &opts)
        }
        "bench" => {
            let smoke = args.iter().any(|a| a == "--smoke");
            if args.get(1).map(String::as_str) == Some("store") {
                let parse_num = |name: &str| -> Result<Option<usize>, CliError> {
                    match flag(name, "") {
                        s if s.is_empty() => Ok(None),
                        s => s
                            .parse()
                            .map(Some)
                            .map_err(|_| CliError::Usage(format!("{name} must be a number"))),
                    }
                };
                let facts = parse_num("--facts")?;
                let append = parse_num("--append")?;
                let shard_capacity = match flag("--shard-capacity", "") {
                    s if s.is_empty() => None,
                    s => Some(s.parse::<u64>().map_err(|_| {
                        CliError::Usage("--shard-capacity must be a number".into())
                    })?),
                };
                let dir = match flag("--dir", "") {
                    s if s.is_empty() => None,
                    s => Some(s),
                };
                let out = match flag("--out", "") {
                    s if s.is_empty() => None,
                    s => Some(s),
                };
                return cmd_bench_store(
                    smoke,
                    facts,
                    append,
                    shard_capacity,
                    dir.as_deref(),
                    out.as_deref(),
                );
            }
            let impl_name = flag("--impl", "arena");
            let out = match flag("--out", "") {
                s if s.is_empty() => None,
                s => Some(s),
            };
            let repeats: usize = flag("--repeats", &harness::DEFAULT_REPEATS.to_string())
                .parse()
                .map_err(|_| CliError::Usage("--repeats must be a number".into()))?;
            let threads: usize = flag("--threads", "1")
                .parse()
                .map_err(|_| CliError::Usage("--threads must be a number".into()))?;
            let scheduler = match flag("--scheduler", "").as_str() {
                "" => None,
                other => Some(SchedulerKind::parse(other).ok_or_else(|| {
                    CliError::Usage(format!(
                        "--scheduler must be fixed or stealing, got {other:?}"
                    ))
                })?),
            };
            cmd_bench(
                &impl_name,
                smoke,
                out.as_deref(),
                repeats,
                threads,
                scheduler,
            )
        }
        other => Err(CliError::Usage(format!(
            "unknown subcommand {other:?}; {usage}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = "\
# toy knowledge base
relation BornIn 2
relation Person 1

BornIn turing london @ 0.96
BornIn turing cambridge @ 0.07
Person turing @ 0.99
Person 42 @ 0.5
";

    #[test]
    fn parse_table_round_trip() {
        let t = parse_table(TABLE).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.schema().len(), 2);
        let born = t.schema().rel_id("BornIn").unwrap();
        let f = Fact::new(born, [Value::str("turing"), Value::str("london")]);
        assert!((t.marginal(&f) - 0.96).abs() < 1e-12);
        let person = t.schema().rel_id("Person").unwrap();
        assert!((t.marginal(&Fact::new(person, [Value::int(42)])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn render_parse_round_trip() {
        let t = parse_table(TABLE).unwrap();
        let rendered = render_table(&t);
        let t2 = parse_table(&rendered).unwrap();
        assert_eq!(t.len(), t2.len());
        for (_, fact, p) in t.iter() {
            assert!(
                (t2.marginal(fact) - p).abs() < 1e-12,
                "{} lost in round trip",
                fact.display(t.schema())
            );
        }
        // fixed-point values survive too
        let with_fixed = "relation Temp 1
Temp 20.3 @ 0.25
";
        let a = parse_table(with_fixed).unwrap();
        let b = parse_table(&render_table(&a)).unwrap();
        assert_eq!(a.len(), b.len());
        let f = Fact::new(a.schema().rel_id("Temp").unwrap(), [Value::fixed(203, 1)]);
        assert!((b.marginal(&f) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn parse_value_types() {
        assert_eq!(parse_value("42"), Value::int(42));
        assert_eq!(parse_value("-7"), Value::int(-7));
        assert_eq!(parse_value("20.3"), Value::fixed(203, 1));
        assert_eq!(parse_value("-0.25"), Value::fixed(-25, 2));
        assert_eq!(parse_value("london"), Value::str("london"));
        assert_eq!(parse_value("1.2.3"), Value::str("1.2.3"));
        assert_eq!(parse_value("3."), Value::str("3."));
    }

    #[test]
    fn table_errors_carry_line_numbers() {
        let bad = "relation R 1\nR 1 1 @ 0.5\n";
        match parse_table(bad) {
            Err(CliError::Table { line: 2, .. }) => {}
            other => panic!("{other:?}"),
        }
        let bad2 = "relation R one\n";
        assert!(matches!(
            parse_table(bad2),
            Err(CliError::Table { line: 1, .. })
        ));
        let bad3 = "relation R 1\nR 1 0.5\n"; // missing @
        assert!(matches!(
            parse_table(bad3),
            Err(CliError::Table { line: 2, .. })
        ));
        let bad4 = "Q 1 @ 0.5\n"; // undeclared relation
        assert!(matches!(
            parse_table(bad4),
            Err(CliError::Table { line: 1, .. })
        ));
    }

    #[test]
    fn facts_may_precede_declarations_on_later_lines() {
        // two-pass parsing: declaration order within the file is free
        let t = parse_table("R 1 @ 0.5\nrelation R 1\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn info_command() {
        let out = cmd_info(TABLE).unwrap();
        assert!(out.contains("BornIn / 2"));
        assert!(out.contains("facts: 4"));
        assert!(out.contains("expected instance size: 2.52"));
    }

    #[test]
    fn query_command_all_engines() {
        for engine in ["auto", "lifted", "lineage", "brute"] {
            let out = cmd_query(TABLE, "exists x. BornIn('turing', x)", engine, 1).unwrap();
            let p: f64 = out
                .lines()
                .next()
                .unwrap()
                .rsplit('=')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let truth = 1.0 - 0.04 * 0.93;
            assert!((p - truth).abs() < 1e-9, "{engine}: {p}");
        }
        assert!(cmd_query(TABLE, "exists x. BornIn('turing', x)", "warp", 1).is_err());
    }

    #[test]
    fn query_command_reports_certified_interval_and_n() {
        let out = cmd_query(TABLE, "Person(42)", "auto", 1).unwrap();
        // exact closed-world answer: degenerate interval at p = 0.5,
        // over all n = 4 declared facts
        assert!(out.contains("P(Person(42)) = 0.5"), "{out}");
        assert!(out.contains("certified interval = [0.5, 0.5]"), "{out}");
        assert!(out.contains("n = 4 facts"), "{out}");
    }

    #[test]
    fn marginals_command() {
        let out = cmd_marginals(TABLE, "BornIn('turing', x)").unwrap();
        assert!(out.contains("\"london\"") && out.contains("0.96"));
        assert!(out.contains("\"cambridge\""));
        let none = cmd_marginals(TABLE, "BornIn('goedel', x)").unwrap();
        assert!(none.contains("no answers"));
    }

    #[test]
    fn sample_command_is_deterministic_per_seed() {
        let a = cmd_sample(TABLE, 3, 7).unwrap();
        let b = cmd_sample(TABLE, 3, 7).unwrap();
        assert_eq!(a, b);
        let c = cmd_sample(TABLE, 3, 8).unwrap();
        assert_eq!(a.lines().count(), 3);
        // overwhelmingly likely to differ
        assert_ne!(a, c);
    }

    #[test]
    fn open_command_answers_beyond_the_closed_world() {
        // Person(1000000) is impossible closed-world, possible open-world
        let closed = cmd_query(TABLE, "Person(1000000)", "auto", 1).unwrap();
        assert!(closed.contains("= 0"));
        let open = cmd_open(TABLE, "Person(1000000)", 0.01, 0.5, 1_000_000).unwrap();
        let p: f64 = open
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(p > 0.2, "open-world probability {p}");
        // the certified enclosure [p − ε, p + ε] is printed alongside
        let interval_line = open
            .lines()
            .find(|l| l.starts_with("certified interval"))
            .expect("open output carries the interval line");
        let nums: Vec<f64> = interval_line
            .trim_start_matches("certified interval = [")
            .trim_end_matches(']')
            .split(", ")
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(nums.len(), 2);
        assert!(nums[0] <= p && p <= nums[1]);
        assert!(
            (nums[1] - nums[0] - 0.02).abs() < 1e-12,
            "width 2ε: {nums:?}"
        );
        assert!(open.contains("truncated at n = "));
    }

    #[test]
    fn query_explain_prints_the_plan_tree_without_evaluating() {
        let out = cmd_query_explain(TABLE, "exists x. BornIn('turing', x)").unwrap();
        assert!(out.starts_with("plan: "), "{out}");
        assert!(out.contains("component 0"), "{out}");
        assert!(out.contains("cost ~"), "{out}");
        // a safe single-atom query at ε = 0 must pick an exact strategy
        assert!(
            out.contains("-> lifted") || out.contains("-> shannon"),
            "{out}"
        );
        assert!(!out.contains("-> mc") && !out.contains("-> kl"), "{out}");
        // dispatched through `run` with the flag in any position
        let files = |_: &str| Ok(TABLE.to_string());
        let args: Vec<String> = ["query", "kb.pdb", "Person(42)", "--explain"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let via_run = run(&args, files).unwrap();
        assert!(via_run.starts_with("plan: "), "{via_run}");
    }

    #[test]
    fn open_explain_matches_the_executed_plan_and_is_deterministic() {
        let out = cmd_open_explain(TABLE, "Person(1000000)", 0.01, 0.5, 1_000_000).unwrap();
        assert!(out.contains("evaluation prefix n = "), "{out}");
        assert!(out.contains("truncation eps = "), "{out}");
        // planning is a pure function of (PDB, query, ε, knobs)
        let again = cmd_open_explain(TABLE, "Person(1000000)", 0.01, 0.5, 1_000_000).unwrap();
        assert_eq!(out, again);
        // and the rendered tree names exactly one strategy per component
        let strategies = out
            .lines()
            .filter(|l| l.contains("component"))
            .filter(|l| l.contains(" -> "))
            .count();
        assert!(strategies >= 1, "{out}");
    }

    const QUERIES: &str = "\
# one query per line; duplicates exercise the result cache
Person(42)
Person(1000000)
Person(42)
exists x. BornIn('turing', x)
Person(42) /\\ Person('turing')
Person(1000000)
";

    #[test]
    fn batch_command_matches_sequential_open_world_evaluation() {
        // single worker: execution order (and therefore which requests hit
        // the cache) is deterministic
        let out = cmd_batch(
            TABLE,
            QUERIES,
            BatchOptions {
                threads: 1,
                ..BatchOptions::default()
            },
        )
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // one result line per query, in input order
        assert_eq!(lines.iter().filter(|l| l.starts_with("P(")).count(), 6);
        assert!(lines[0].starts_with("P(Person(42)) = "));
        assert!(lines[1].starts_with("P(Person(1000000)) = "));
        // the repeated queries are served from the cache
        assert!(lines[2].contains(", cached)"), "{}", lines[2]);
        assert!(lines[5].contains(", cached)"), "{}", lines[5]);
        // batch answers agree exactly with the sequential evaluation path
        let table = parse_table(TABLE).unwrap();
        let open = open_world_pdb(&table, 0.5, 1_000_000).unwrap();
        let q = parse("Person(1000000)", open.schema()).unwrap();
        let expected = approx_prob_boolean(&open, &q, 0.01, Engine::Auto).unwrap();
        assert!(
            lines[1].contains(&format!("= {} ±", expected.estimate)),
            "batch {} vs sequential {}",
            lines[1],
            expected.estimate
        );
        // the metrics dump follows the results
        assert!(out.contains("-- metrics --"));
        assert!(out.contains("serve_requests_completed_total 6"));
        assert!(out.contains("serve_cache_misses_total 4"));
        assert!(out.contains("serve_cache_hits_total 2"));
    }

    #[test]
    fn batch_command_degrades_or_rejects_under_budget() {
        let widened = cmd_batch(
            TABLE,
            "Person(42)\n",
            BatchOptions {
                eps: 0.000001,
                threads: 1,
                max_n: Some(6),
                ..BatchOptions::default()
            },
        )
        .unwrap();
        assert!(
            widened.contains("degraded from eps = 0.000001"),
            "{widened}"
        );
        assert!(widened.contains("serve_degraded_answers_total 1"));
        let rejected = cmd_batch(
            TABLE,
            "Person(42)\n",
            BatchOptions {
                eps: 0.000001,
                threads: 1,
                max_n: Some(6),
                policy: DegradePolicy::Reject,
                ..BatchOptions::default()
            },
        )
        .unwrap();
        assert!(rejected.contains("rejected (needs n = "), "{rejected}");
        assert!(rejected.contains("budget allows n = 6"));
        assert!(rejected.contains("serve_rejected_total 1"));
    }

    #[test]
    fn batch_command_rejects_empty_query_files() {
        let out = cmd_batch(TABLE, "# nothing here\n\n", BatchOptions::default());
        assert!(matches!(out, Err(CliError::Usage(_))));
    }

    #[test]
    fn batch_command_with_generous_deadline_still_answers_everything() {
        let out = cmd_batch(
            TABLE,
            QUERIES,
            BatchOptions {
                threads: 1,
                deadline: Some(Duration::from_secs(30)),
                ..BatchOptions::default()
            },
        )
        .unwrap();
        // every query resolves to a full answer well within the deadline
        assert_eq!(
            out.lines().filter(|l| l.starts_with("P(")).count(),
            6,
            "{out}"
        );
        assert!(out.contains("serve_requests_completed_total 6"), "{out}");
        assert!(out.contains("serve_deadline_exceeded_total 0"), "{out}");
    }

    #[test]
    fn batch_command_bounded_queue_resolves_every_ticket() {
        // a 1-slot queue with shed-oldest under a 1-thread pool: whatever
        // mix of answers and sheds happens, every query gets a line
        let out = cmd_batch(
            TABLE,
            QUERIES,
            BatchOptions {
                threads: 1,
                queue_cap: Some(1),
                overflow: OverflowPolicy::ShedOldest,
                ..BatchOptions::default()
            },
        )
        .unwrap();
        let result_lines = out.lines().filter(|l| l.starts_with("P(")).count();
        assert_eq!(result_lines, 6, "{out}");
        // the dump accounts for every submission: completed + shed = 6
        assert!(out.contains("serve_requests_submitted_total 6"), "{out}");
    }

    #[test]
    fn run_dispatch() {
        let files = |path: &str| -> std::io::Result<String> {
            if path == "kb.pdb" {
                Ok(TABLE.to_string())
            } else {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, "nope"))
            }
        };
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert!(run(&args(&["info", "kb.pdb"]), files)
            .unwrap()
            .contains("facts: 4"));
        assert!(run(&args(&["query", "kb.pdb", "Person('turing')"]), files)
            .unwrap()
            .contains("0.99"));
        assert!(
            run(
                &args(&["sample", "kb.pdb", "--count", "2", "--seed", "1"]),
                files
            )
            .unwrap()
            .lines()
            .count()
                == 2
        );
        assert!(matches!(run(&args(&[]), files), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&args(&["info", "missing.pdb"]), files),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&args(&["frobnicate", "kb.pdb"]), files),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn batch_resilience_flags_parse_and_validate() {
        let files = |path: &str| -> std::io::Result<String> {
            match path {
                "kb.pdb" => Ok(TABLE.to_string()),
                "q.txt" => Ok("Person(42)\nPerson(1000000)\n".to_string()),
                _ => Err(std::io::Error::new(std::io::ErrorKind::NotFound, "nope")),
            }
        };
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        let out = run(
            &args(&[
                "batch",
                "kb.pdb",
                "q.txt",
                "--threads",
                "1",
                "--deadline-ms",
                "30000",
                "--queue-cap",
                "4",
                "--overflow",
                "reject",
            ]),
            files,
        )
        .unwrap();
        assert!(out.contains("-- metrics --"), "{out}");
        assert_eq!(out.lines().filter(|l| l.starts_with("P(")).count(), 2);
        for bad in [
            ["--deadline-ms", "soon"],
            ["--queue-cap", "many"],
            ["--overflow", "warp"],
        ] {
            let mut a = args(&["batch", "kb.pdb", "q.txt"]);
            a.extend(bad.iter().map(|s| s.to_string()));
            assert!(
                matches!(run(&a, files), Err(CliError::Usage(_))),
                "{bad:?} must be a usage error"
            );
        }
    }

    #[test]
    fn bench_rejects_unknown_impl() {
        let files = |_: &str| -> std::io::Result<String> {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "nope"))
        };
        let a: Vec<String> = ["bench", "--impl", "btree"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        // fails before measuring anything or touching the filesystem
        assert!(matches!(run(&a, files), Err(CliError::Usage(_))));
        // malformed --repeats is a usage error too
        let b: Vec<String> = ["bench", "--repeats", "several"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&b, files), Err(CliError::Usage(_))));
        let c: Vec<String> = ["bench", "--scheduler", "magic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(matches!(run(&c, files), Err(CliError::Usage(_))));
    }

    #[test]
    fn bench_store_rejects_malformed_flags() {
        let files = |_: &str| -> std::io::Result<String> {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "nope"))
        };
        let argv =
            |parts: &[&str]| -> Vec<String> { parts.iter().map(|s| s.to_string()).collect() };
        for bad in [
            &["bench", "store", "--facts", "many"][..],
            &["bench", "store", "--append", "-3"],
            &["bench", "store", "--shard-capacity", "big"],
            &["bench", "store", "--shard-capacity", "0"],
        ] {
            assert!(
                matches!(run(&argv(bad), files), Err(CliError::Usage(_))),
                "{bad:?} must be a usage error"
            );
        }
        // degenerate geometry is refused by the bench itself, before any
        // grounding work starts
        let a = argv(&["bench", "store", "--facts", "10", "--append", "10"]);
        assert!(matches!(run(&a, files), Err(CliError::Library(_))));
    }

    #[test]
    fn bench_store_smoke_writes_artifact_and_reports_identity() {
        let tmp =
            std::env::temp_dir().join(format!("infpdb-cli-storebench-{}", std::process::id()));
        std::fs::create_dir_all(&tmp).unwrap();
        let out = tmp.join("store.json");
        let dir = tmp.join("store-dir");
        let files = |_: &str| -> std::io::Result<String> {
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "nope"))
        };
        let a: Vec<String> = [
            "bench",
            "store",
            "--smoke",
            "--facts",
            "600",
            "--append",
            "100",
            "--shard-capacity",
            "128",
            "--dir",
            dir.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let table = run(&a, files).expect("bench store --smoke succeeds");
        assert!(table.contains("bit-for-bit identical"), "{table}");
        assert!(table.contains("wrote "), "{table}");
        let artifact = std::fs::read_to_string(&out).unwrap();
        assert!(artifact.contains("infpdb-store-bench/v1"), "{artifact}");
        std::fs::remove_dir_all(&tmp).ok();
    }
}

//! The `infpdb` binary: see `infpdb::cli` for the table format and
//! subcommands.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match infpdb::cli::run(&args, |path| std::fs::read_to_string(path)) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("infpdb: {e}");
            std::process::exit(1);
        }
    }
}

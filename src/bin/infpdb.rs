//! The `infpdb` binary: see `infpdb::cli` for the table format and
//! subcommands. The long-running `serve` and interactive `shell`
//! subcommands are handled here (they own stdin/stdout for their
//! lifetime); everything else dispatches through `cli::run`.

use std::io::IsTerminal;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => {
            let Some(table_path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!(
                    "infpdb: usage: infpdb serve <table-file> [--bind ADDR] [--threads N] \
                     [--parallelism P] [--eps E] [--quota-rps R] [--quota-burst B] \
                     [--arena-stats] [--tail-mass M] [--tail-start K] \
                     [--store DIR] [--snapshot-every SECS]"
                );
                std::process::exit(1);
            };
            let run = std::fs::read_to_string(table_path)
                .map_err(|e| infpdb::cli::CliError::Usage(format!("cannot read {table_path}: {e}")))
                .and_then(|table| {
                    let opts = infpdb::netcmd::parse_serve_options(&args[2..])?;
                    infpdb::netcmd::cmd_serve(&table, &opts, std::io::stdout())
                });
            if let Err(e) = run {
                eprintln!("infpdb: {e}");
                std::process::exit(1);
            }
        }
        Some("shell") => {
            let connect = args
                .iter()
                .position(|a| a == "--connect")
                .and_then(|i| args.get(i + 1))
                .cloned();
            let stdin = std::io::stdin();
            let interactive = stdin.is_terminal();
            if let Err(e) = infpdb::shell::repl(
                stdin.lock(),
                std::io::stdout(),
                connect.as_deref(),
                interactive,
            ) {
                eprintln!("infpdb: {e}");
                std::process::exit(1);
            }
        }
        _ => match infpdb::cli::run(&args, |path| std::fs::read_to_string(path)) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("infpdb: {e}");
                std::process::exit(1);
            }
        },
    }
}

//! `infpdb shell` — an interactive REPL over the prepared-query
//! service.
//!
//! The shell drives either a **local** [`QueryService`] (built from a
//! table file with `load`, completed to an open world exactly like
//! `infpdb open`) or a **remote** front door (`connect
//! http://host:port`, or `infpdb shell --connect URL`), with the same
//! commands against both. The core is [`Shell::handle_line`], a pure
//! line → output function, so regression tests can drive the REPL over
//! a pipe.
//!
//! ```text
//! infpdb> load examples/kb.pdb
//! loaded examples/kb.pdb: 2 relations, 4 facts (open world; threads 4)
//! infpdb> eps 1e-3
//! eps = 0.001
//! infpdb> query Person(1000000)
//! P(Person(1000000)) = 0.2499999999999999 ± 0.0009765625 in [0.24902…, 0.25097…] (n = 9)
//! infpdb> prepare alive exists x. Person(x)
//! prepared alive
//! infpdb> run alive
//! ...
//! infpdb> trace
//! shannon: 4 expansions, 0 memo hits, 1 decompositions
//! ...
//! ```

use crate::cli::{self, CliError};
use infpdb_core::json::Json;
use infpdb_finite::engine::EvalTrace;
use infpdb_logic::parse;
use infpdb_net::client::{self, BaseUrl};
use infpdb_serve::{CostBudget, QueryRequest, QueryService, ServiceConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Tail defaults shared with `infpdb open`/`batch` so the shell's
/// answers are bit-identical to theirs.
const TAIL_MASS: f64 = 0.5;
const TAIL_START: i64 = 1_000_000;

/// What `handle_line` asks the driving loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep reading lines.
    Continue,
    /// Exit the REPL.
    Quit,
}

enum Backend {
    /// Nothing loaded yet.
    Empty,
    /// An in-process service over a loaded table.
    Local {
        service: QueryService,
        table_text: String,
        path: String,
    },
    /// A remote front door.
    Remote { base: BaseUrl, url: String },
}

/// Injected file reader so tests can run hermetically.
pub type FileReader = Box<dyn Fn(&str) -> std::io::Result<String>>;

/// REPL state: backend, settings, prepared queries, last trace.
pub struct Shell {
    backend: Backend,
    eps: f64,
    threads: usize,
    parallelism: usize,
    deadline: Option<Duration>,
    prepared: BTreeMap<String, String>,
    last_trace: Option<EvalTrace>,
    read_file: FileReader,
}

impl Shell {
    /// A fresh shell with no backend; `read_file` injects file I/O so
    /// tests can run hermetically.
    pub fn new(read_file: impl Fn(&str) -> std::io::Result<String> + 'static) -> Self {
        Shell {
            backend: Backend::Empty,
            eps: 0.01,
            threads: 4,
            parallelism: 1,
            deadline: None,
            prepared: BTreeMap::new(),
            last_trace: None,
            read_file: Box::new(read_file),
        }
    }

    /// Connects to a remote front door (the `--connect` flag).
    pub fn connect(&mut self, url: &str) -> Result<String, String> {
        let base = BaseUrl::parse(url)?;
        // probe /healthz so a bad URL fails at connect time, not on the
        // first query
        let health = client::request(&base, "GET", "/healthz", &[], b"", Duration::from_secs(10))?;
        if health.status != 200 {
            return Err(format!("{url}/healthz answered {}", health.status));
        }
        let doc = Json::parse(health.body_utf8().map_err(|e| e.to_string())?)
            .map_err(|e| format!("healthz body: {e}"))?;
        let status = doc
            .get("status")
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        self.backend = Backend::Remote {
            base,
            url: url.to_string(),
        };
        Ok(format!("connected to {url} (status: {status})"))
    }

    fn rebuild_local(&mut self) -> Result<(), String> {
        if let Backend::Local {
            table_text, path, ..
        } = &self.backend
        {
            let (text, path) = (table_text.clone(), path.clone());
            self.backend = Backend::Empty;
            self.load(&path, Some(text))?;
        }
        Ok(())
    }

    fn load(&mut self, path: &str, preread: Option<String>) -> Result<String, String> {
        let text = match preread {
            Some(t) => t,
            None => (self.read_file)(path).map_err(|e| format!("cannot read {path}: {e}"))?,
        };
        let table = cli::parse_table(&text).map_err(|e| e.to_string())?;
        let relations = table.schema().len();
        let facts = table.len();
        let open = cli::open_world_pdb(&table, TAIL_MASS, TAIL_START).map_err(|e| e.to_string())?;
        let service = QueryService::new(
            open,
            ServiceConfig {
                threads: self.threads,
                parallelism: self.parallelism,
                ..ServiceConfig::default()
            },
        );
        self.backend = Backend::Local {
            service,
            table_text: text,
            path: path.to_string(),
        };
        Ok(format!(
            "loaded {path}: {relations} relations, {facts} facts (open world; threads {}, parallelism {})",
            self.threads, self.parallelism
        ))
    }

    fn evaluate(&mut self, query: &str) -> Result<String, String> {
        match &self.backend {
            Backend::Empty => {
                Err("no backend: `load <table-file>` or `connect <url>` first".to_string())
            }
            Backend::Local { service, .. } => {
                let q = parse(query, service.pdb().schema()).map_err(|e| e.to_string())?;
                let budget = CostBudget {
                    max_n: None,
                    deadline: self.deadline,
                };
                let resp = service
                    .evaluate(QueryRequest::new(q, self.eps).with_budget(budget))
                    .map_err(|e| e.to_string())?;
                self.last_trace = Some(resp.trace);
                let iv = resp.approx.interval();
                let mut out = format!(
                    "P({query}) = {} ± {} in [{}, {}] (n = {}",
                    resp.approx.estimate,
                    resp.approx.eps,
                    iv.lo(),
                    iv.hi(),
                    resp.approx.n
                );
                if resp.degraded {
                    write!(out, ", degraded from eps = {}", resp.requested_eps).ok();
                }
                if resp.cached {
                    out.push_str(", cached");
                }
                out.push(')');
                Ok(out)
            }
            Backend::Remote { base, .. } => {
                let mut body = vec![
                    ("query".to_string(), Json::str(query)),
                    ("eps".to_string(), Json::Float(self.eps)),
                ];
                if let Some(d) = self.deadline {
                    body.push(("deadline_ms".to_string(), Json::Int(d.as_millis() as i64)));
                }
                let resp = client::request(
                    base,
                    "POST",
                    "/query",
                    &[("content-type", "application/json")],
                    Json::Object(body).encode().as_bytes(),
                    Duration::from_secs(300),
                )?;
                let doc = Json::parse(resp.body_utf8().map_err(|e| e.to_string())?)
                    .map_err(|e| format!("response body: {e}"))?;
                if resp.status != 200 {
                    let code = doc
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str)
                        .unwrap_or("error");
                    let message = doc
                        .get("error")
                        .and_then(|e| e.get("message"))
                        .and_then(Json::as_str)
                        .unwrap_or("");
                    return Err(format!("{} {code}: {message}", resp.status));
                }
                self.last_trace = None; // remote traces are read from the JSON
                let estimate = doc
                    .get("estimate")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN);
                let eps = doc.get("eps").and_then(Json::as_f64).unwrap_or(f64::NAN);
                let n = doc.get("n").and_then(Json::as_i64).unwrap_or(0);
                let lo = doc
                    .get("interval")
                    .and_then(|iv| iv.get("lo"))
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN);
                let hi = doc
                    .get("interval")
                    .and_then(|iv| iv.get("hi"))
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN);
                let mut out = format!("P({query}) = {estimate} ± {eps} in [{lo}, {hi}] (n = {n}");
                if doc.get("degraded").and_then(Json::as_bool) == Some(true) {
                    let req = doc
                        .get("requested_eps")
                        .and_then(Json::as_f64)
                        .unwrap_or(f64::NAN);
                    write!(out, ", degraded from eps = {req}").ok();
                }
                if doc.get("cached").and_then(Json::as_bool) == Some(true) {
                    out.push_str(", cached");
                }
                out.push(')');
                if let Some(trace) = doc.get("trace") {
                    if !matches!(trace, Json::Null) {
                        self.last_trace = trace_from_json(trace);
                    }
                }
                Ok(out)
            }
        }
    }

    /// `explain <q>`: prints the plan the cost-based optimizer would
    /// run at the current ε without evaluating anything. Local-only —
    /// the plan is derived from the loaded table; a remote server keeps
    /// its planner private.
    fn explain(&self, query: &str) -> Result<String, String> {
        match &self.backend {
            Backend::Empty => {
                Err("no backend: `load <table-file>` or `connect <url>` first".to_string())
            }
            Backend::Remote { .. } => Err(
                "explain requires a local table (`load <table-file>`); the per-request strategy \
                 of a remote server is reported in `trace` after a query"
                    .to_string(),
            ),
            Backend::Local { service, .. } => {
                let q = parse(query, service.pdb().schema()).map_err(|e| e.to_string())?;
                let knobs = infpdb_query::planner::PlanKnobs::default();
                let (compiled, plan, n_eval) =
                    infpdb_query::planner::explain(service.pdb(), &q, self.eps, &knobs)
                        .map_err(|e| e.to_string())?;
                Ok(cli::render_plan(&compiled, &plan, n_eval)
                    .trim_end()
                    .to_string())
            }
        }
    }

    fn show_trace(&self) -> String {
        let Some(t) = self.last_trace else {
            return "no trace yet: run a query first".to_string();
        };
        let mut out = String::new();
        match t.shannon {
            Some(s) => writeln!(
                out,
                "shannon: {} expansions, {} memo hits, {} decompositions",
                s.expansions, s.cache_hits, s.decompositions
            )
            .ok(),
            None => writeln!(out, "shannon: (not traced)").ok(),
        };
        match t.arena {
            Some(a) => writeln!(
                out,
                "arena: {} interned nodes, {} intern hits",
                a.nodes, a.intern_hits
            )
            .ok(),
            None => writeln!(out, "arena: (not traced)").ok(),
        };
        match t.parallel {
            Some(p) => writeln!(
                out,
                "parallel: {} tasks{}",
                p.tasks,
                if p.fallback_seq {
                    " (fell back to sequential)"
                } else {
                    ""
                }
            )
            .ok(),
            None => writeln!(out, "parallel: (sequential evaluation)").ok(),
        };
        match t.plan {
            Some(p) => writeln!(
                out,
                "plan: {} ({} lifted, {} shannon, {} mc, {} kl; cost ~ {:.0})",
                p.label(),
                p.lifted,
                p.shannon,
                p.monte_carlo,
                p.karp_luby,
                f64::from_bits(p.cost_bits)
            )
            .ok(),
            None => writeln!(out, "plan: (static engine)").ok(),
        };
        out.trim_end().to_string()
    }

    fn show_metrics(&self) -> Result<String, String> {
        match &self.backend {
            Backend::Empty => Err("no backend loaded".to_string()),
            Backend::Local { service, .. } => Ok(service.metrics_dump()),
            Backend::Remote { base, .. } => {
                let resp =
                    client::request(base, "GET", "/metrics", &[], b"", Duration::from_secs(30))?;
                resp.body_utf8()
                    .map(str::to_string)
                    .map_err(|e| e.to_string())
            }
        }
    }

    fn settings(&self) -> String {
        let deadline = match self.deadline {
            None => "off".to_string(),
            Some(d) => format!("{} ms", d.as_millis()),
        };
        let backend = match &self.backend {
            Backend::Empty => "(none)".to_string(),
            Backend::Local { path, .. } => format!("local: {path}"),
            Backend::Remote { url, .. } => format!("remote: {url}"),
        };
        format!(
            "backend = {backend}\neps = {}\nthreads = {}\nparallelism = {}\ndeadline = {deadline}",
            self.eps, self.threads, self.parallelism
        )
    }

    /// Handles one input line, returning the output to print and
    /// whether to keep going. Never panics on malformed input.
    pub fn handle_line(&mut self, line: &str) -> (String, Control) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return (String::new(), Control::Continue);
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let result: Result<String, String> = match cmd {
            "help" | "?" => Ok(HELP.trim_end().to_string()),
            "quit" | "exit" => return ("bye".to_string(), Control::Quit),
            "load" => {
                if rest.is_empty() {
                    Err("usage: load <table-file>".to_string())
                } else {
                    self.load(rest, None)
                }
            }
            "connect" => {
                if rest.is_empty() {
                    Err("usage: connect http://host:port".to_string())
                } else {
                    self.connect(rest)
                }
            }
            "eps" => match rest.parse::<f64>() {
                Ok(e) if e > 0.0 && e.is_finite() => {
                    self.eps = e;
                    Ok(format!("eps = {e}"))
                }
                _ => Err("usage: eps <positive number>".to_string()),
            },
            "threads" => match rest.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    self.threads = n;
                    self.rebuild_local()
                        .map(|_| format!("threads = {n} (service rebuilt)"))
                }
                _ => Err("usage: threads <n >= 1>".to_string()),
            },
            "parallelism" => match rest.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    self.parallelism = n;
                    self.rebuild_local()
                        .map(|_| format!("parallelism = {n} (service rebuilt)"))
                }
                _ => Err("usage: parallelism <n >= 1>".to_string()),
            },
            "deadline" => match rest {
                "off" | "none" => {
                    self.deadline = None;
                    Ok("deadline = off".to_string())
                }
                ms => match ms.parse::<u64>() {
                    Ok(v) if v > 0 => {
                        self.deadline = Some(Duration::from_millis(v));
                        Ok(format!("deadline = {v} ms"))
                    }
                    _ => Err("usage: deadline <ms|off>".to_string()),
                },
            },
            "prepare" => match rest.split_once(char::is_whitespace) {
                Some((name, query)) if !query.trim().is_empty() => {
                    self.prepared
                        .insert(name.to_string(), query.trim().to_string());
                    Ok(format!("prepared {name}"))
                }
                _ => Err("usage: prepare <name> <query>".to_string()),
            },
            "list" => {
                if self.prepared.is_empty() {
                    Ok("(no prepared queries)".to_string())
                } else {
                    Ok(self
                        .prepared
                        .iter()
                        .map(|(name, q)| format!("{name}: {q}"))
                        .collect::<Vec<_>>()
                        .join("\n"))
                }
            }
            "run" => match self.prepared.get(rest).cloned() {
                Some(q) => self.evaluate(&q),
                None => Err(format!(
                    "no prepared query {rest:?} (see `list`, add with `prepare`)"
                )),
            },
            "query" => {
                if rest.is_empty() {
                    Err("usage: query <first-order query>".to_string())
                } else {
                    self.evaluate(rest)
                }
            }
            "explain" => {
                if rest.is_empty() {
                    Err("usage: explain <first-order query>".to_string())
                } else {
                    self.explain(rest)
                }
            }
            "trace" => Ok(self.show_trace()),
            "metrics" | "counters" => self.show_metrics(),
            "settings" | "show" => Ok(self.settings()),
            "warm" => match rest.parse::<f64>() {
                Ok(e) if e > 0.0 => match &self.backend {
                    Backend::Empty => Err("no backend loaded".to_string()),
                    Backend::Local { service, .. } => service
                        .warm(e)
                        .map(|n| format!("materialized {n} facts"))
                        .map_err(|e| e.to_string()),
                    Backend::Remote { base, .. } => {
                        let body = Json::obj([("eps", Json::Float(e))]).encode();
                        client::request(
                            base,
                            "POST",
                            "/warm",
                            &[("content-type", "application/json")],
                            body.as_bytes(),
                            Duration::from_secs(300),
                        )
                        .and_then(|r| {
                            if r.status == 200 {
                                Ok(r.body_utf8().unwrap_or("").trim().to_string())
                            } else {
                                Err(format!("warm answered {}", r.status))
                            }
                        })
                    }
                },
                _ => Err("usage: warm <eps>".to_string()),
            },
            other => Err(format!("unknown command {other:?} (try `help`)")),
        };
        match result {
            Ok(out) => (out, Control::Continue),
            Err(e) => (format!("error: {e}"), Control::Continue),
        }
    }
}

/// Reconstructs an [`EvalTrace`] from the wire JSON (remote backend).
fn trace_from_json(trace: &Json) -> Option<EvalTrace> {
    let shannon = trace.get("shannon").and_then(|s| {
        Some(infpdb_finite::shannon::Stats {
            expansions: s.get("expansions")?.as_i64()? as usize,
            cache_hits: s.get("cache_hits")?.as_i64()? as usize,
            decompositions: s.get("decompositions")?.as_i64()? as usize,
        })
    });
    let arena = trace.get("arena").and_then(|a| {
        Some(infpdb_finite::arena::ArenaStats {
            nodes: a.get("nodes")?.as_i64()? as usize,
            intern_hits: a.get("intern_hits")?.as_i64()? as usize,
        })
    });
    let parallel = trace.get("parallel").and_then(|p| {
        Some(infpdb_finite::shannon::ParReport {
            tasks: p.get("tasks")?.as_i64()? as usize,
            fallback_seq: p.get("fallback_seq")?.as_bool()?,
        })
    });
    let plan = trace.get("plan").and_then(|p| {
        Some(infpdb_finite::plan::PlanSummary {
            lifted: p.get("lifted")?.as_i64()? as u32,
            shannon: p.get("shannon")?.as_i64()? as u32,
            monte_carlo: p.get("mc")?.as_i64()? as u32,
            karp_luby: p.get("kl")?.as_i64()? as u32,
            cost_bits: p.get("cost_bits")?.as_i64()? as u64,
        })
    });
    Some(EvalTrace {
        shannon,
        arena,
        parallel,
        plan,
    })
}

const HELP: &str = "\
commands:
  load <table-file>        load a PDB table, open-world completed
  connect <url>            talk to a remote `infpdb serve` instead
  query <q>                evaluate a first-order query
  explain <q>              show the cost-based plan at the current eps
  prepare <name> <q>       name a query for reuse
  run <name>               evaluate a prepared query
  list                     list prepared queries
  eps <e>                  set the additive tolerance
  threads <n>              set service worker threads (rebuilds)
  parallelism <n>          set intra-query threads (rebuilds)
  deadline <ms|off>        per-query deadline
  warm <eps>               eagerly ground the n(eps) prefix
  trace                    show the last evaluation's trace
  metrics                  show service counters
  settings                 show current settings
  quit                     leave
";

/// Runs the interactive loop over arbitrary reader/writer (stdin and
/// stdout in the binary; pipes in tests). Returns an error only on
/// I/O failure — command errors are printed and the loop continues.
pub fn repl(
    input: impl std::io::BufRead,
    mut output: impl std::io::Write,
    connect: Option<&str>,
    interactive: bool,
) -> Result<(), CliError> {
    let mut shell = Shell::new(|path| std::fs::read_to_string(path));
    if let Some(url) = connect {
        match shell.connect(url) {
            Ok(msg) => writeln!(output, "{msg}").map_err(|e| CliError::Library(e.to_string()))?,
            Err(e) => return Err(CliError::Usage(format!("--connect {url}: {e}"))),
        }
    }
    if interactive {
        write!(output, "infpdb> ").ok();
        output.flush().ok();
    }
    for line in input.lines() {
        let line = line.map_err(|e| CliError::Library(e.to_string()))?;
        let (out, control) = shell.handle_line(&line);
        if !out.is_empty() {
            writeln!(output, "{out}").map_err(|e| CliError::Library(e.to_string()))?;
        }
        if control == Control::Quit {
            return Ok(());
        }
        if interactive {
            write!(output, "infpdb> ").ok();
            output.flush().ok();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE: &str = "\
relation BornIn 2
relation Person 1
BornIn turing london @ 0.96
Person turing @ 0.99
Person 42 @ 0.5
";

    fn shell() -> Shell {
        Shell::new(|path| {
            if path == "kb.pdb" {
                Ok(TABLE.to_string())
            } else {
                Err(std::io::Error::new(std::io::ErrorKind::NotFound, "nope"))
            }
        })
    }

    #[test]
    fn load_then_query_reports_certified_interval() {
        let mut sh = shell();
        let (out, c) = sh.handle_line("load kb.pdb");
        assert_eq!(c, Control::Continue);
        assert!(out.contains("2 relations, 3 facts"), "{out}");
        let (out, _) = sh.handle_line("query Person(42)");
        assert!(out.starts_with("P(Person(42)) = "), "{out}");
        assert!(out.contains(" in ["), "{out}");
        // and the trace from that evaluation is inspectable
        let (trace, _) = sh.handle_line("trace");
        assert!(
            trace.contains("shannon") || trace.contains("arena"),
            "{trace}"
        );
    }

    #[test]
    fn shell_matches_the_open_subcommand() {
        // the regression contract: identical estimates to `infpdb open`
        let mut sh = shell();
        sh.handle_line("load kb.pdb");
        for eps in ["0.01", "0.001"] {
            sh.handle_line(&format!("eps {eps}"));
            let (out, _) = sh.handle_line("query Person(1000000)");
            let expected = cli::cmd_open(
                TABLE,
                "Person(1000000)",
                eps.parse().unwrap(),
                0.5,
                1_000_000,
            )
            .unwrap();
            let shell_est = out
                .split('=')
                .nth(1)
                .unwrap()
                .trim()
                .split(' ')
                .next()
                .unwrap();
            let open_est = expected
                .split('=')
                .nth(1)
                .unwrap()
                .trim()
                .split(' ')
                .next()
                .unwrap();
            assert_eq!(shell_est, open_est, "eps {eps}: {out} vs {expected}");
        }
    }

    #[test]
    fn explain_prints_the_plan_and_matches_the_cli() {
        let mut sh = shell();
        // before a backend is loaded, explain is a clean error
        let (out, _) = sh.handle_line("explain Person(42)");
        assert!(out.starts_with("error: no backend"), "{out}");
        sh.handle_line("load kb.pdb");
        let (out, _) = sh.handle_line("explain Person(1000000)");
        assert!(out.starts_with("plan: "), "{out}");
        assert!(out.contains("component 0"), "{out}");
        assert!(out.contains("cost ~"), "{out}");
        // same plan as `infpdb open --explain` at the same ε and tail
        let via_cli =
            cli::cmd_open_explain(TABLE, "Person(1000000)", 0.01, 0.5, 1_000_000).unwrap();
        assert_eq!(out, via_cli.trim_end());
        // after a query, the trace reports the executed plan summary
        sh.handle_line("query Person(1000000)");
        let (trace, _) = sh.handle_line("trace");
        assert!(trace.contains("plan: "), "{trace}");
    }

    #[test]
    fn prepare_list_run_cycle() {
        let mut sh = shell();
        sh.handle_line("load kb.pdb");
        let (out, _) = sh.handle_line("prepare anyone exists x. Person(x)");
        assert_eq!(out, "prepared anyone");
        let (out, _) = sh.handle_line("list");
        assert_eq!(out, "anyone: exists x. Person(x)");
        let (out, _) = sh.handle_line("run anyone");
        assert!(out.starts_with("P(exists x. Person(x)) = "), "{out}");
        let (out, _) = sh.handle_line("run missing");
        assert!(out.contains("no prepared query"), "{out}");
    }

    #[test]
    fn settings_and_rebuild() {
        let mut sh = shell();
        sh.handle_line("load kb.pdb");
        let (out, _) = sh.handle_line("threads 2");
        assert!(out.contains("threads = 2"), "{out}");
        let (out, _) = sh.handle_line("parallelism 2");
        assert!(out.contains("parallelism = 2"), "{out}");
        let (out, _) = sh.handle_line("deadline 5000");
        assert!(out.contains("deadline = 5000 ms"), "{out}");
        let (out, _) = sh.handle_line("settings");
        assert!(out.contains("threads = 2"), "{out}");
        assert!(out.contains("local: kb.pdb"), "{out}");
        // rebuilt service still answers, bit-identically at any
        // parallelism
        let (a, _) = sh.handle_line("query Person(42)");
        sh.handle_line("parallelism 1");
        let (b, _) = sh.handle_line("query Person(42)");
        let est = |s: &str| {
            s.split('=')
                .nth(1)
                .unwrap()
                .trim()
                .split(' ')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(est(&a), est(&b));
    }

    #[test]
    fn errors_do_not_kill_the_shell() {
        let mut sh = shell();
        let (out, c) = sh.handle_line("query Person(42)");
        assert_eq!(c, Control::Continue);
        assert!(out.starts_with("error: no backend"), "{out}");
        let (out, _) = sh.handle_line("load missing.pdb");
        assert!(out.starts_with("error: cannot read"), "{out}");
        sh.handle_line("load kb.pdb");
        let (out, _) = sh.handle_line("query Nope(1)");
        assert!(out.starts_with("error:"), "{out}");
        let (out, _) = sh.handle_line("eps minus-one");
        assert!(out.starts_with("error: usage"), "{out}");
        let (out, _) = sh.handle_line("frobnicate");
        assert!(out.contains("unknown command"), "{out}");
        // still alive
        let (out, _) = sh.handle_line("query Person(42)");
        assert!(out.starts_with("P("), "{out}");
        let (out, c) = sh.handle_line("quit");
        assert_eq!(out, "bye");
        assert_eq!(c, Control::Quit);
    }

    #[test]
    fn metrics_and_warm_work_locally() {
        let mut sh = shell();
        sh.handle_line("load kb.pdb");
        let (out, _) = sh.handle_line("warm 0.01");
        assert!(out.starts_with("materialized "), "{out}");
        sh.handle_line("query Person(42)");
        let (out, _) = sh.handle_line("metrics");
        assert!(out.contains("serve_requests_completed_total"), "{out}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut sh = shell();
        assert_eq!(sh.handle_line(""), (String::new(), Control::Continue));
        assert_eq!(
            sh.handle_line("# a comment"),
            (String::new(), Control::Continue)
        );
    }
}

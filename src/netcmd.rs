//! The network subcommands: `infpdb serve` (long-running HTTP front
//! door) and `infpdb netbench` (end-to-end load bench against an
//! in-process server).
//!
//! Both build the same open-world completion as `infpdb open`/`batch`
//! (geometric tail over the first declared unary relation), so answers
//! over the wire are bit-identical to the offline subcommands.

use crate::cli::{self, CliError};
use infpdb_bench::harness;
use infpdb_net::loadbench::{self, NetBenchConfig};
use infpdb_net::server::{HttpServer, ServerConfig};
use infpdb_net::{signal, QuotaConfig};
use infpdb_serve::{QueryService, SchedulerKind, ServiceConfig};
use std::fmt::Write as _;
use std::time::Duration;

/// Tail defaults shared with `open`/`batch`/shell.
const TAIL_MASS: f64 = 0.5;
const TAIL_START: i64 = 1_000_000;

/// Tuning for `serve`, mirroring its command-line flags.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`--bind`), e.g. `127.0.0.1:7117`; port 0 picks an
    /// ephemeral port (printed at startup).
    pub bind: String,
    /// Service worker threads (`--threads`).
    pub threads: usize,
    /// Intra-query thread budget (`--parallelism`).
    pub parallelism: usize,
    /// Intra-request subtask scheduling (`--scheduler fixed|stealing`).
    pub scheduler: SchedulerKind,
    /// Default tolerance for requests that omit `eps` (`--eps`).
    pub default_eps: f64,
    /// Per-client quota: sustained requests/second (`--quota-rps`);
    /// unset disables quotas.
    pub quota_rps: Option<f64>,
    /// Per-client quota burst capacity (`--quota-burst`).
    pub quota_burst: f64,
    /// Include arena statistics in `/metrics` (`--arena-stats`).
    pub arena_stats: bool,
    /// Fresh-fact tail mass (`--tail-mass`).
    pub tail_mass: f64,
    /// First integer the tail invents facts for (`--tail-start`).
    pub tail_start: i64,
    /// Durable store directory (`--store`); unset disables durability.
    /// When set, the service recovers the persisted prefix on startup,
    /// warms to the default ε, and snapshots after the warm, then
    /// periodically and once more on graceful shutdown.
    pub store_dir: Option<String>,
    /// Facts per durable-store shard file (`--shard-capacity`); unset
    /// uses the store's default (2²⁰). Only meaningful with `store_dir`.
    pub store_shard_capacity: Option<u64>,
    /// Interval between periodic snapshots (`--snapshot-every`, in
    /// seconds); only meaningful with `store_dir`.
    pub snapshot_every: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            bind: "127.0.0.1:7117".to_string(),
            threads: 4,
            parallelism: 1,
            scheduler: SchedulerKind::Fixed,
            default_eps: 0.01,
            quota_rps: None,
            quota_burst: 32.0,
            arena_stats: false,
            tail_mass: TAIL_MASS,
            tail_start: TAIL_START,
            store_dir: None,
            store_shard_capacity: None,
            snapshot_every: Duration::from_secs(30),
        }
    }
}

fn build_service(table_text: &str, opts: &ServeOptions) -> Result<QueryService, CliError> {
    let table = cli::parse_table(table_text)?;
    let open = cli::open_world_pdb(&table, opts.tail_mass, opts.tail_start)?;
    Ok(QueryService::new(
        open,
        ServiceConfig {
            threads: opts.threads,
            parallelism: opts.parallelism,
            scheduler: opts.scheduler,
            arena_stats: opts.arena_stats,
            store_dir: opts.store_dir.as_ref().map(std::path::PathBuf::from),
            store_shard_capacity: opts.store_shard_capacity,
            ..ServiceConfig::default()
        },
    ))
}

fn server_config(opts: &ServeOptions) -> Result<ServerConfig, CliError> {
    let quota = match opts.quota_rps {
        None => None,
        Some(rps) => Some(QuotaConfig::new(rps, opts.quota_burst).map_err(CliError::Usage)?),
    };
    Ok(ServerConfig {
        default_eps: opts.default_eps,
        quota,
        arena_stats: opts.arena_stats,
        ..ServerConfig::default()
    })
}

/// Starts the front door over a table file. Returns the running server
/// so the caller (binary or test) owns the serve loop.
pub fn start_server(table_text: &str, opts: &ServeOptions) -> Result<HttpServer, CliError> {
    let service = build_service(table_text, opts)?;
    let config = server_config(opts)?;
    HttpServer::start(service, config, &opts.bind)
        .map_err(|e| CliError::Library(format!("cannot bind {}: {e}", opts.bind)))
}

/// The `serve` subcommand: binds, prints `listening on <addr>`, and
/// blocks until SIGTERM/SIGINT, then drains gracefully (in-flight
/// queries finish with their partial certificates; new submissions are
/// refused with `503 shutting_down`).
pub fn cmd_serve(
    table_text: &str,
    opts: &ServeOptions,
    mut status: impl std::io::Write,
) -> Result<(), CliError> {
    signal::install_termination_handler();
    let server = start_server(table_text, opts)?;
    writeln!(status, "listening on {}", server.addr())
        .map_err(|e| CliError::Library(e.to_string()))?;
    let durable = server.service().store_status().is_some();
    if durable {
        if let Some(s) = server.service().store_status() {
            writeln!(status, "store: {}", s.label()).ok();
        }
        // ground the default-ε prefix up front, then snapshot it so a
        // crash right after startup already has something to recover
        match server.service().warm(opts.default_eps) {
            Ok(n) => {
                writeln!(status, "warmed n = {n} facts at eps = {}", opts.default_eps).ok();
            }
            Err(e) => {
                writeln!(status, "warm failed: {e}").ok();
            }
        }
        match server.service().snapshot() {
            Ok(Some(info)) => {
                writeln!(
                    status,
                    "snapshot epoch {} ({} facts)",
                    info.epoch, info.facts
                )
                .ok();
            }
            Ok(None) => {}
            Err(e) => {
                writeln!(status, "snapshot failed: {e}").ok();
            }
        }
    }
    status.flush().ok();
    let mut last_snapshot = std::time::Instant::now();
    while !signal::termination_requested() {
        std::thread::sleep(Duration::from_millis(50));
        if durable && last_snapshot.elapsed() >= opts.snapshot_every {
            if let Err(e) = server.service().snapshot() {
                writeln!(status, "snapshot failed: {e}").ok();
                status.flush().ok();
            }
            last_snapshot = std::time::Instant::now();
        }
    }
    writeln!(
        status,
        "draining: in-flight queries finishing, new submissions refused"
    )
    .ok();
    status.flush().ok();
    if durable {
        // one final snapshot so a graceful stop never loses the prefix
        if let Err(e) = server.service().snapshot() {
            writeln!(status, "final snapshot failed: {e}").ok();
        }
    }
    server.shutdown();
    writeln!(status, "drained; bye").ok();
    Ok(())
}

/// Tuning for `netbench`.
#[derive(Debug, Clone)]
pub struct NetBenchOptions {
    /// Connection levels to sweep (`--connections`, comma-separated).
    pub connection_levels: Vec<usize>,
    /// Requests per connection (`--requests`).
    pub requests_per_connection: usize,
    /// Tolerance (`--eps`).
    pub eps: f64,
    /// Artifact path (`--out`); default `BENCH_<date>_net.json`.
    pub out_path: Option<String>,
    /// Smoke mode (`--smoke`): the small CI sweep.
    pub smoke: bool,
    /// Service worker threads (`--threads`).
    pub threads: usize,
    /// Intra-query thread budget (`--parallelism`).
    pub parallelism: usize,
    /// Intra-request subtask scheduling (`--scheduler fixed|stealing`).
    pub scheduler: SchedulerKind,
}

impl Default for NetBenchOptions {
    fn default() -> Self {
        NetBenchOptions {
            connection_levels: vec![1, 2, 4, 8],
            requests_per_connection: 200,
            eps: 1e-3,
            out_path: None,
            smoke: false,
            threads: 4,
            parallelism: 1,
            scheduler: SchedulerKind::Fixed,
        }
    }
}

/// The query matrix the bench sweeps: mixes a ground atom, an
/// existential, a self-join with disequality, and an open-world atom
/// beyond the closed table.
pub fn bench_queries(tail_start: i64) -> Vec<String> {
    vec![
        "Person(42)".to_string(),
        "exists x. Person(x)".to_string(),
        "exists x, y. Person(x) /\\ Person(y) /\\ x != y".to_string(),
        format!("Person({tail_start})"),
    ]
}

/// The `netbench` subcommand: starts an in-process server over the
/// table, sweeps the connection levels, verifies bit-for-bit identity
/// of every response against direct library calls, and writes the
/// `BENCH_<date>_net.json` artifact.
pub fn cmd_netbench(table_text: &str, opts: &NetBenchOptions) -> Result<String, CliError> {
    let serve_opts = ServeOptions {
        bind: "127.0.0.1:0".to_string(),
        threads: opts.threads,
        parallelism: opts.parallelism,
        scheduler: opts.scheduler,
        ..ServeOptions::default()
    };
    let server = start_server(table_text, &serve_opts)?;
    let config = if opts.smoke {
        let mut c = NetBenchConfig::smoke(bench_queries(TAIL_START), opts.eps);
        c.connection_levels = opts.connection_levels.clone();
        c
    } else {
        NetBenchConfig {
            connection_levels: opts.connection_levels.clone(),
            requests_per_connection: opts.requests_per_connection,
            queries: bench_queries(TAIL_START),
            eps: opts.eps,
        }
    };
    let report = loadbench::run(&server, &config).map_err(CliError::Library)?;
    server.shutdown();
    let date = harness::iso_date_utc();
    let json = report.to_json(&date, opts.smoke);
    let path = opts
        .out_path
        .clone()
        .unwrap_or_else(|| format!("BENCH_{date}_net.json"));
    std::fs::write(&path, &json)
        .map_err(|e| CliError::Library(format!("cannot write {path}: {e}")))?;
    let mut out = report.summary_table();
    writeln!(out, "wrote {path}").ok();
    if report.total_failed > 0 || report.total_mismatched > 0 {
        return Err(CliError::Library(format!(
            "netbench: {} failed requests, {} bitwise mismatches\n{out}",
            report.total_failed, report.total_mismatched
        )));
    }
    Ok(out)
}

/// Parses `serve` flags from `args` (everything after the table path).
pub fn parse_serve_options(args: &[String]) -> Result<ServeOptions, CliError> {
    let flag = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let num = |name: &str, default: &str| -> Result<f64, CliError> {
        flag(name, default)
            .parse()
            .map_err(|_| CliError::Usage(format!("{name} must be a number")))
    };
    let scheduler = parse_scheduler(&flag("--scheduler", "fixed"))?;
    let mut opts = ServeOptions {
        bind: flag("--bind", "127.0.0.1:7117"),
        threads: num("--threads", "4")? as usize,
        parallelism: num("--parallelism", "1")? as usize,
        scheduler,
        default_eps: num("--eps", "0.01")?,
        quota_rps: None,
        quota_burst: num("--quota-burst", "32")?,
        arena_stats: args.iter().any(|a| a == "--arena-stats"),
        tail_mass: num("--tail-mass", "0.5")?,
        tail_start: num("--tail-start", "1000000")? as i64,
        store_dir: match flag("--store", "") {
            s if s.is_empty() => None,
            s => Some(s),
        },
        store_shard_capacity: match flag("--shard-capacity", "") {
            s if s.is_empty() => None,
            s => match s.parse::<u64>() {
                Ok(c) if c > 0 => Some(c),
                _ => {
                    return Err(CliError::Usage(
                        "--shard-capacity must be a positive integer".into(),
                    ))
                }
            },
        },
        snapshot_every: Duration::from_secs_f64(num("--snapshot-every", "30")?.max(0.05)),
    };
    if opts.threads < 1 {
        return Err(CliError::Usage("--threads must be at least 1".into()));
    }
    let rps = flag("--quota-rps", "");
    if !rps.is_empty() {
        opts.quota_rps = Some(
            rps.parse()
                .map_err(|_| CliError::Usage("--quota-rps must be a number".into()))?,
        );
    }
    Ok(opts)
}

fn parse_scheduler(s: &str) -> Result<SchedulerKind, CliError> {
    SchedulerKind::parse(s)
        .ok_or_else(|| CliError::Usage(format!("--scheduler must be fixed or stealing, got {s:?}")))
}

/// Parses `netbench` flags from `args` (everything after the table path).
pub fn parse_netbench_options(args: &[String]) -> Result<NetBenchOptions, CliError> {
    let flag = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let smoke = args.iter().any(|a| a == "--smoke");
    let connections = flag("--connections", "1,2,4,8");
    let connection_levels = connections
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|_| CliError::Usage(format!("bad --connections entry {s:?}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if connection_levels.is_empty() || connection_levels.contains(&0) {
        return Err(CliError::Usage(
            "--connections needs positive, comma-separated counts".into(),
        ));
    }
    let requests: usize = flag("--requests", if smoke { "25" } else { "200" })
        .parse()
        .map_err(|_| CliError::Usage("--requests must be a number".into()))?;
    let eps: f64 = flag("--eps", "0.001")
        .parse()
        .map_err(|_| CliError::Usage("--eps must be a number".into()))?;
    let threads: usize = flag("--threads", "4")
        .parse()
        .map_err(|_| CliError::Usage("--threads must be a number".into()))?;
    let parallelism: usize = flag("--parallelism", "1")
        .parse()
        .map_err(|_| CliError::Usage("--parallelism must be a number".into()))?;
    let scheduler = parse_scheduler(&flag("--scheduler", "fixed"))?;
    let out_path = match flag("--out", "") {
        s if s.is_empty() => None,
        s => Some(s),
    };
    Ok(NetBenchOptions {
        connection_levels,
        requests_per_connection: requests,
        eps,
        out_path,
        smoke,
        threads,
        parallelism,
        scheduler,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use infpdb_core::json::Json;
    use infpdb_net::client::{self, BaseUrl};

    const TABLE: &str = "\
relation Person 1
Person turing @ 0.99
Person 42 @ 0.5
";

    #[test]
    fn start_server_answers_over_http_like_cmd_open() {
        let opts = ServeOptions {
            bind: "127.0.0.1:0".to_string(),
            threads: 1,
            ..ServeOptions::default()
        };
        let server = start_server(TABLE, &opts).unwrap();
        let base = BaseUrl::parse(&format!("http://{}", server.addr())).unwrap();
        let body = Json::obj([
            ("query", Json::str("Person(1000000)")),
            ("eps", Json::Float(0.01)),
        ])
        .encode();
        let resp = client::request(
            &base,
            "POST",
            "/query",
            &[("content-type", "application/json")],
            body.as_bytes(),
            Duration::from_secs(30),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        let doc = Json::parse(resp.body_utf8().unwrap()).unwrap();
        let wire = doc.get("estimate").and_then(Json::as_f64).unwrap();
        // same number the offline `open` subcommand prints
        let offline = cli::cmd_open(TABLE, "Person(1000000)", 0.01, 0.5, 1_000_000).unwrap();
        assert!(
            offline.contains(&format!("= {wire} ±")),
            "wire {wire} vs offline {offline}"
        );
        server.shutdown();
    }

    #[test]
    fn netbench_smoke_writes_a_clean_artifact() {
        let dir = std::env::temp_dir().join(format!("infpdb_netbench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_net.json");
        let opts = NetBenchOptions {
            connection_levels: vec![1, 2],
            requests_per_connection: 3,
            eps: 1e-2,
            out_path: Some(path.to_string_lossy().to_string()),
            smoke: true,
            threads: 2,
            parallelism: 2,
            scheduler: SchedulerKind::Stealing,
        };
        let out = cmd_netbench(TABLE, &opts).unwrap();
        assert!(out.contains("bitwise mismatches: 0"), "{out}");
        let artifact = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&artifact).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("infpdb-net-bench/v2")
        );
        assert_eq!(doc.get("total_failed").and_then(Json::as_i64), Some(0));
        assert_eq!(doc.get("total_mismatched").and_then(Json::as_i64), Some(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flag_parsing_for_serve_and_netbench() {
        let a = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        let opts = parse_serve_options(&a(&[
            "--bind",
            "0.0.0.0:9000",
            "--threads",
            "8",
            "--quota-rps",
            "50",
            "--arena-stats",
        ]))
        .unwrap();
        assert_eq!(opts.bind, "0.0.0.0:9000");
        assert_eq!(opts.threads, 8);
        assert_eq!(opts.quota_rps, Some(50.0));
        assert!(opts.arena_stats);
        assert!(parse_serve_options(&a(&["--threads", "zero"])).is_err());
        assert!(parse_serve_options(&a(&["--quota-rps", "lots"])).is_err());
        assert_eq!(
            parse_serve_options(&a(&["--shard-capacity", "4096"]))
                .unwrap()
                .store_shard_capacity,
            Some(4096)
        );
        assert_eq!(
            parse_serve_options(&a(&[])).unwrap().store_shard_capacity,
            None
        );
        assert!(parse_serve_options(&a(&["--shard-capacity", "0"])).is_err());

        let nb = parse_netbench_options(&a(&[
            "--connections",
            "1,4,16",
            "--smoke",
            "--scheduler",
            "stealing",
        ]))
        .unwrap();
        assert_eq!(nb.connection_levels, vec![1, 4, 16]);
        assert!(nb.smoke);
        assert_eq!(nb.requests_per_connection, 25);
        assert_eq!(nb.scheduler, SchedulerKind::Stealing);
        assert_eq!(
            parse_serve_options(&a(&["--scheduler", "stealing"]))
                .unwrap()
                .scheduler,
            SchedulerKind::Stealing
        );
        assert!(parse_serve_options(&a(&["--scheduler", "magic"])).is_err());
        assert!(parse_netbench_options(&a(&["--connections", "1,zero"])).is_err());
        assert!(parse_netbench_options(&a(&["--connections", "0"])).is_err());
    }
}

#![warn(missing_docs)]
//! # infpdb — Probabilistic Databases with an Infinite Open-World Assumption
//!
//! A Rust implementation of the framework of Grohe & Lindner,
//! *Probabilistic Databases with an Infinite Open-World Assumption*
//! (PODS 2019, arXiv:1807.00607): probabilistic databases over countably
//! infinite universes, tuple-independent and block-independent-disjoint
//! constructions, open-world completions of finite PDBs, and additive-ε
//! approximate query evaluation.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names; see each subsystem's documentation for details:
//!
//! * [`math`] — convergent series, infinite products, certified intervals.
//! * [`core`] — universes, schemas, facts, instances, probability spaces.
//! * [`logic`] — first-order queries and views, evaluation, safe plans.
//! * [`finite`] — the finite (closed-world) PDB engine: lineage, exact and
//!   Monte-Carlo inference.
//! * [`ti`] — countably infinite tuple-independent and b.i.d. PDBs.
//! * [`openworld`] — completions: the infinite open-world assumption.
//! * [`query`] — approximate query evaluation on infinite PDBs (Prop 6.1).
//! * [`serve`] — concurrent query service: thread pool, result cache,
//!   admission control with ε-degradation, metrics.
//! * [`net`] — the network front door: std-only HTTP/1.1 server and
//!   client over the query service, Prometheus metrics, quotas.
//! * [`tm`] — Turing-machine-represented PDBs (Prop 6.2).
//!
//! A command-line interface over the library lives in [`cli`] (binary:
//! `cargo run --bin infpdb`); the long-running `serve` subcommand and
//! the interactive `shell` REPL live in [`netcmd`] and [`shell`].

pub mod cli;
pub mod netcmd;
pub mod shell;

pub use infpdb_core as core;
pub use infpdb_finite as finite;
pub use infpdb_logic as logic;
pub use infpdb_math as math;
pub use infpdb_net as net;
pub use infpdb_openworld as openworld;
pub use infpdb_query as query;
pub use infpdb_serve as serve;
pub use infpdb_ti as ti;
pub use infpdb_tm as tm;
